//! The distributed-NIDS deployment of §I/§VI: four devices share raw
//! traffic, KiNETGAN synthetic traffic, or nothing, and we compare global
//! detection quality against what left each device.
//!
//! ```sh
//! cargo run --release --example distributed_sharing
//! ```

use kinet_nids::{DistributedConfig, DistributedSim, ModelKind, SharingPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("distributed NIDS: 4 devices, one aggregator\n");
    for policy in [
        SharingPolicy::Raw,
        SharingPolicy::Synthetic(ModelKind::KinetGan),
        SharingPolicy::LocalOnly,
    ] {
        let sim = DistributedSim::new(DistributedConfig {
            n_devices: 4,
            records_per_device: 500,
            test_records: 800,
            policy,
            seed: 11,
            ..DistributedConfig::default()
        });
        let report = sim.run().map_err(std::io::Error::other)?;
        println!("{report}");
    }
    println!(
        "\nreading guide: synthetic sharing should approach raw-sharing accuracy\n\
         while never placing a raw record on the wire; local-only shows the\n\
         penalty of not collaborating at all."
    );
    Ok(())
}
