//! Privacy audit of a KiNETGAN release: the three attacks of §V-C run
//! against one fitted model (Figures 5–7 scenario).
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use kinet_data::synth::TabularSynthesizer;
use kinet_data::Table;
use kinet_datasets::lab::{LabSimConfig, LabSimulator};
use kinet_eval::privacy::{
    attribute_inference_attack, membership_inference_attack, reidentification_attack,
};
use kinetgan::{KinetGan, KinetGanConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = LabSimulator::new(LabSimConfig::small(2400, 9)).generate()?;
    let mut rng = StdRng::seed_from_u64(0);
    let (train, holdout) = data.train_test_split(0.33, &mut rng);

    let mut model = KinetGan::new(
        KinetGanConfig::fast_demo().with_epochs(20),
        LabSimulator::knowledge_graph(),
    );
    model.fit(&train)?;
    let release = model.sample(train.n_rows(), 17)?;
    println!("auditing a {}-row synthetic release\n", release.n_rows());

    println!("re-identification (Figure 5):");
    for overlap in [0.3, 0.6, 0.9] {
        let acc = reidentification_attack(&train, &release, overlap, 200, 7);
        println!(
            "  attacker knows {:>2.0}% of originals -> linkage accuracy {acc:.3}",
            overlap * 100.0
        );
    }

    println!("\nattribute inference (Figure 6):");
    let acc = attribute_inference_attack(&train, &release, "event", 200)?;
    println!("  inferring the event class from quasi-identifiers -> {acc:.3}");

    println!("\nmembership inference (Figure 7):");
    let n = 200.min(train.n_rows()).min(holdout.n_rows());
    let idx: Vec<usize> = (0..n).collect();
    let members = train.select_rows(&idx);
    let non_members = holdout.select_rows(&idx);
    let mut probe = Table::empty(members.schema().clone());
    probe.append(&members)?;
    probe.append(&non_members)?;
    let critic = model.critic_scores(&probe);
    let mi = membership_inference_attack(&members, &non_members, &release, critic.as_deref());
    println!("  white-box  (WB)  accuracy {:.3}", mi.white_box);
    println!("  black-box  (FBB) accuracy {:.3}", mi.full_black_box);
    println!("\n(0.5 = the attacker learns nothing)");
    Ok(())
}
