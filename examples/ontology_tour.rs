//! A tour of the NetworkKG ontology (paper §IV-A, Figure 2): entities,
//! constraint rules, and live reasoner queries.
//!
//! ```sh
//! cargo run --release --example ontology_tour
//! ```

use kinet_kg::ontology::vocab;
use kinet_kg::{Assignment, AttrValue, Iri, NetworkKg};

fn main() {
    let kg = NetworkKg::lab_default();
    println!("NetworkKG {:?}\n", kg);

    println!("devices (instances of {}):", vocab::DEVICE);
    for d in kg.store().instances_of(&Iri::new(vocab::DEVICE)) {
        let ip = kg
            .store()
            .object(&d, &Iri::new(vocab::HAS_IP))
            .map(|t| t.to_string())
            .unwrap_or_default();
        println!("  {d} -> {ip}");
    }

    println!("\nattack classes (instances of {}):", vocab::ATTACK);
    for a in kg.store().instances_of(&Iri::new(vocab::ATTACK)) {
        let cve = kg
            .store()
            .object(&a, &Iri::new(vocab::HAS_CVE))
            .map(|t| format!(" ({t})"))
            .unwrap_or_default();
        println!("  {a}{cve}");
    }

    println!("\ncompiled validity rules:");
    for rule in kg.reasoner().rules().iter() {
        println!("  {rule}");
    }

    println!("\nreasoner queries:");
    println!(
        "  valid protocols for cve_1999_0003: {:?}",
        kg.reasoner().valid_values("cve_1999_0003", "protocol")
    );
    println!(
        "  valid dst_port range for cve_1999_0003: {:?}",
        kg.reasoner().valid_range("cve_1999_0003", "dst_port")
    );

    let good = Assignment::new()
        .with("event", "cve_1999_0003".into())
        .with("protocol", "udp".into())
        .with("dst_port", AttrValue::num(33000.0));
    let bad = Assignment::new()
        .with("event", "cve_1999_0003".into())
        .with("protocol", "tcp".into())
        .with("dst_port", AttrValue::num(80.0));
    println!(
        "  Q({good}) -> {:?}",
        kg.reasoner().is_valid(&good).is_valid()
    );
    let verdict = kg.reasoner().is_valid(&bad);
    println!("  Q({bad}) -> {:?}", verdict.is_valid());
    for v in verdict.violations() {
        println!("      violation: {v}");
    }
}
