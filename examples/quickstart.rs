//! Quickstart: simulate lab IoT traffic, train KiNETGAN, sample synthetic
//! records, and check fidelity + knowledge-graph validity.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kinet_data::synth::TabularSynthesizer;
use kinet_datasets::lab::{LabSimConfig, LabSimulator};
use kinet_eval::metrics;
use kinetgan::{KinetGan, KinetGanConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Real data: the simulated lab capture (paper §IV-B-1).
    let data = LabSimulator::new(LabSimConfig::small(2000, 1)).generate()?;
    println!(
        "real data: {} rows × {} columns",
        data.n_rows(),
        data.n_cols()
    );

    // 2. The knowledge graph the generator will obey (§IV-A, Figure 2).
    let kg = LabSimulator::knowledge_graph();
    println!("knowledge graph: {kg:?}");

    // 3. Train KiNETGAN (§III).
    let config = KinetGanConfig::fast_demo()
        .with_epochs(15)
        .with_rejection_rounds(2);
    let mut model = KinetGan::new(config, kg);
    model.fit(&data)?;
    let report = model.report().expect("fit stores a report");
    println!(
        "trained {} epochs; final D loss {:.3}, G loss {:.3}",
        report.d_loss.len(),
        report.d_loss.last().unwrap(),
        report.g_loss.last().unwrap()
    );

    // 4. Sample a synthetic release and inspect it.
    let synthetic = model.sample(1000, 42)?;
    println!("synthetic data: {} rows", synthetic.n_rows());
    for r in 0..3 {
        let row: Vec<String> = synthetic.row(r).iter().map(|v| v.to_string()).collect();
        println!("  sample row {r}: [{}]", row.join(", "));
    }

    // 5. How close is it, and how *valid* is it?
    let fidelity = metrics::fidelity(&data, &synthetic);
    println!(
        "fidelity: EMD {:.3}, combined distance {:.3}",
        fidelity.emd, fidelity.combined
    );
    println!(
        "KG validity rate: {:.1}%",
        model.validity_rate(&synthetic) * 100.0
    );
    Ok(())
}
