//! Head-to-head on the UNSW-NB15-shaped dataset: KiNETGAN vs. CTGAN on
//! fidelity and downstream NIDS utility (Table I / Figure 4 scenario).
//!
//! ```sh
//! cargo run --release --example unsw_benchmark
//! ```

use kinet_baselines::{common::BaselineConfig, CtGan};
use kinet_data::synth::TabularSynthesizer;
use kinet_datasets::unsw::{UnswSimConfig, UnswSimulator};
use kinet_eval::{metrics, utility::evaluate_tstr};
use kinetgan::{KinetGan, KinetGanConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = UnswSimulator::new(UnswSimConfig::small(3000, 2)).generate()?;
    let view = UnswSimulator::modeling_view(&full)?;
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = view.train_test_split(0.3, &mut rng);
    println!(
        "UNSW-NB15 view: {} train rows, {} columns (full schema: {})",
        train.n_rows(),
        train.n_cols(),
        full.n_cols()
    );

    let mut kinetgan = KinetGan::new(
        KinetGanConfig::fast_demo().with_epochs(20),
        UnswSimulator::knowledge_graph(),
    );
    kinetgan.fit(&train)?;
    let kin_release = kinetgan.sample(train.n_rows(), 3)?;

    let mut ctgan = CtGan::new(BaselineConfig::fast_demo().with_epochs(20));
    ctgan.fit(&train)?;
    let ct_release = ctgan.sample(train.n_rows(), 3)?;

    println!(
        "\n{:<10} {:>8} {:>10} {:>10}",
        "Model", "EMD", "Combined", "NIDS acc"
    );
    for (name, release) in [("KiNETGAN", &kin_release), ("CTGAN", &ct_release)] {
        let fid = metrics::fidelity(&train, release);
        let utility = evaluate_tstr(name, release, &test, &train, "attack_cat")?;
        println!(
            "{:<10} {:>8.3} {:>10.3} {:>10.3}",
            name, fid.emd, fid.combined, utility.mean_accuracy
        );
    }
    let baseline = evaluate_tstr("Baseline", &train, &test, &train, "attack_cat")?;
    println!(
        "{:<10} {:>8} {:>10} {:>10.3}",
        "Baseline", "-", "-", baseline.mean_accuracy
    );
    Ok(())
}
