//! The paper's headline workload: can a NIDS trained purely on KiNETGAN
//! synthetic data detect attacks in real lab traffic? (Figure 3 scenario.)
//!
//! ```sh
//! cargo run --release --example iot_lab_nids
//! ```

use kinet_data::synth::TabularSynthesizer;
use kinet_datasets::lab::{LabSimConfig, LabSimulator};
use kinet_eval::utility::evaluate_tstr;
use kinetgan::{KinetGan, KinetGanConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = LabSimulator::new(LabSimConfig::small(3000, 5)).generate()?;
    let mut rng = StdRng::seed_from_u64(0);
    let (train, test) = data.train_test_split(0.3, &mut rng);
    println!(
        "lab capture: {} train rows / {} test rows",
        train.n_rows(),
        test.n_rows()
    );

    // Baseline: classifiers trained on the real data.
    let baseline = evaluate_tstr("Baseline", &train, &test, &train, "event")?;
    println!("\ntrain-on-REAL  (baseline):");
    for (name, acc) in &baseline.per_classifier {
        println!("  {name:<20} {acc:.3}");
    }
    println!("  {:<20} {:.3}", "mean", baseline.mean_accuracy);

    // KiNETGAN: train on synthetic only, test on the same real test split.
    let mut model = KinetGan::new(
        KinetGanConfig::fast_demo().with_epochs(25),
        LabSimulator::knowledge_graph(),
    );
    model.fit(&train)?;
    let synthetic = model.sample(train.n_rows(), 7)?;
    let tstr = evaluate_tstr("KiNETGAN", &synthetic, &test, &train, "event")?;
    println!("\ntrain-on-SYNTHETIC (KiNETGAN):");
    for (name, acc) in &tstr.per_classifier {
        println!("  {name:<20} {acc:.3}");
    }
    println!("  {:<20} {:.3}", "mean", tstr.mean_accuracy);

    println!(
        "\naccuracy retained: {:.1}% of baseline",
        100.0 * tstr.mean_accuracy / baseline.mean_accuracy.max(1e-9)
    );
    Ok(())
}
