//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. Parses the item's token stream directly (no
//! syn/quote available offline) and emits impls of the shim traits.
//!
//! Supported shapes — exactly what the workspace contains:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants. Serialization follows serde's default
//! externally-tagged representation. Generic types are rejected with a
//! compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `Serialize` trait (JSON value construction).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => object_literal(fields, "self."),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => tuple_array_literal(*n, "self."),
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => enum_match(&item.name, variants),
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_json_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}",
        item.name
    )
    .parse()
    .expect("serde_derive generated invalid Rust")
}

/// Derives the shim `Deserialize` trait: reconstruction from a parsed
/// JSON [`serde::value::Value`], mirroring the representation the
/// `Serialize` derive emits (field objects, tuple arrays, externally
/// tagged enums).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => de_named_struct(fields),
        Shape::TupleStruct(1) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_json_value(__v)?))"
                .to_string()
        }
        Shape::TupleStruct(n) => de_tuple_struct(*n),
        Shape::UnitStruct => "::core::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => de_enum(&item.name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {} {{\n\
             fn from_json_value(__v: &::serde::value::Value) \
                 -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}",
        item.name
    )
    .parse()
    .expect("serde_derive generated invalid Rust")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---- codegen ----

fn object_literal(fields: &[String], accessor: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_json_value(&{accessor}{f}))",
                json_name(f)
            )
        })
        .collect();
    format!(
        "::serde::value::Value::Object(vec![{}])",
        entries.join(", ")
    )
}

fn tuple_array_literal(n: usize, accessor: &str) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("::serde::Serialize::to_json_value(&{accessor}{i})"))
        .collect();
    format!("::serde::value::Value::Array(vec![{}])", entries.join(", "))
}

fn enum_match(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let tag = json_name(vname);
        let arm = match &v.fields {
            VariantFields::Unit => {
                format!("{name}::{vname} => ::serde::value::Value::String({tag:?}.to_string())")
            }
            VariantFields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_json_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                        .collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{vname}({}) => ::serde::value::Value::Object(vec![({tag:?}.to_string(), {inner})])",
                    binders.join(", ")
                )
            }
            VariantFields::Named(fields) => {
                let inner = object_literal(fields, "");
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(vec![({tag:?}.to_string(), {inner})])",
                    fields.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(",\n"))
}

fn json_name(ident: &str) -> &str {
    ident.strip_prefix("r#").unwrap_or(ident)
}

// ---- deserialize codegen ----

fn de_named_struct(fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field(__v, {:?})?", json_name(f)))
        .collect();
    format!(
        "::core::result::Result::Ok(Self {{ {} }})",
        inits.join(", ")
    )
}

fn de_tuple_struct(n: usize) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::de::element(__items, {i})?"))
        .collect();
    format!(
        "let __items = ::serde::de::tuple(__v, {n})?;\n\
         ::core::result::Result::Ok(Self({}))",
        elems.join(", ")
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    // Unit variants deserialize from a bare tag string; payload variants
    // from a single-entry `{tag: payload}` object — serde's externally
    // tagged representation, matching the Serialize derive above.
    let mut unit_arms = Vec::new();
    let mut payload_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let tag = json_name(vname);
        match &v.fields {
            VariantFields::Unit => unit_arms.push(format!(
                "{tag:?} => ::core::result::Result::Ok({name}::{vname})"
            )),
            VariantFields::Tuple(1) => payload_arms.push(format!(
                "{tag:?} => ::core::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_json_value(__inner)\
                         .map_err(|e| ::serde::de::Error::in_variant({tag:?}, e))?))"
            )),
            VariantFields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de::element(__items, {i})?"))
                    .collect();
                payload_arms.push(format!(
                    "{tag:?} => {{\n\
                         let __items = ::serde::de::tuple(__inner, {n})?;\n\
                         ::core::result::Result::Ok({name}::{vname}({}))\n\
                     }}",
                    elems.join(", ")
                ));
            }
            VariantFields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(__inner, {:?})?", json_name(f)))
                    .collect();
                payload_arms.push(format!(
                    "{tag:?} => ::core::result::Result::Ok({name}::{vname} {{ {} }})",
                    inits.join(", ")
                ));
            }
        }
    }
    unit_arms.push(format!(
        "__other => ::core::result::Result::Err(\
             ::serde::de::Error::unknown_variant({name:?}, __other))"
    ));
    payload_arms.push(format!(
        "__other => ::core::result::Result::Err(\
             ::serde::de::Error::unknown_variant({name:?}, __other))"
    ));
    format!(
        "match __v {{\n\
             ::serde::value::Value::String(__tag) => match __tag.as_str() {{\n{}\n}},\n\
             ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n{}\n}}\n\
             }}\n\
             __other => ::core::result::Result::Err(::serde::de::Error::invalid_type(\
                 \"externally tagged enum\", __other)),\n\
         }}",
        unit_arms.join(",\n"),
        payload_arms.join(",\n")
    )
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types (deriving {name})");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &mut Peekable) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Parses `ident: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&mut tokens);
    }
    fields
}

/// Counts fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut tokens);
    }
    count
}

/// Skips a type expression up to (and over) the next top-level `,`,
/// tracking `<...>` nesting so commas in generic arguments don't split.
fn skip_type(tokens: &mut Peekable) {
    let mut angle_depth = 0usize;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(f)
            }
            _ => VariantFields::Unit,
        };
        // Skip to the next variant: discriminants (`= expr`) and the comma.
        skip_type(&mut tokens);
        variants.push(Variant { name, fields });
    }
    variants
}
