//! Offline substitute for the `proptest` surface this workspace uses.
//!
//! Each `proptest!` test derives a deterministic RNG seed from its own
//! name, draws `ProptestConfig::cases` inputs from the declared
//! strategies, and runs the body as a `Result`-returning case (so
//! `prop_assert!` failures and explicit `return Ok(())` rejections both
//! work). On failure the driver **greedily shrinks** the input — each
//! strategy proposes smaller candidates ([`Strategy::shrink`]) and the
//! first candidate that still fails becomes the new input, until no
//! candidate fails — then panics with the case number, seed, and the
//! minimized input. Runs are reproducible by construction.

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{Arbitrary, BoxedStrategy, Strategy};

use rand::SeedableRng;

/// The RNG driving value generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Generates values of `T`'s canonical strategy (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Derives a stable seed for a named test: deterministic across runs,
/// machines, and test orderings (FNV-1a over the test path).
#[doc(hidden)]
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the RNG for a named test from [`seed_for_test`].
#[doc(hidden)]
pub fn rng_for_test(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for_test(name))
}

/// Upper bound on accepted shrink steps — a backstop against pathological
/// candidate chains, far above anything a real minimization needs.
const MAX_SHRINK_STEPS: usize = 1024;

/// Ties a case closure's parameter type to a strategy's value type, so
/// the `proptest!` expansion never needs a written-out type.
#[doc(hidden)]
pub fn bind_case<S, F>(_: &S, f: F) -> F
where
    S: Strategy + ?Sized,
    F: FnMut(S::Value) -> Result<(), String>,
{
    f
}

/// Greedily minimizes a failing input: repeatedly asks `strategy` for
/// smaller candidates and moves to the first one on which `run` still
/// fails. Returns the minimized value, its failure message, and the number
/// of accepted shrink steps.
#[doc(hidden)]
pub fn shrink_failure<S: Strategy + ?Sized>(
    strategy: &S,
    mut value: S::Value,
    mut message: String,
    run: &mut dyn FnMut(S::Value) -> Result<(), String>,
) -> (S::Value, String, usize)
where
    S::Value: Clone,
{
    let mut steps = 0;
    'minimize: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&value) {
            if let Err(m) = run(candidate.clone()) {
                value = candidate;
                message = m;
                steps += 1;
                continue 'minimize;
            }
        }
        break;
    }
    (value, message, steps)
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn it_holds(x in 0usize..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])+
         fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ( $( $strategy, )+ );
                let mut run = $crate::bind_case(&strategies, move |__value| {
                    let ( $($pat,)+ ) = __value;
                    // Inner closure so `return Ok(())` / prop_assert! early
                    // exits leave only the case, not the whole test.
                    (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })()
                });
                for case in 0..config.cases {
                    let value = $crate::Strategy::sample(&strategies, &mut rng);
                    if let Err(message) = run(::std::clone::Clone::clone(&value)) {
                        let (min_value, min_message, steps) =
                            $crate::shrink_failure(&strategies, value, message, &mut run);
                        panic!(
                            "proptest case {case}/{total} of {name} (seed {seed:#018x}) failed: {min_message}\n  minimized input ({steps} shrink steps): {min_value:?}",
                            case = case + 1,
                            total = config.cases,
                            name = stringify!($name),
                            seed = $crate::seed_for_test(concat!(
                                module_path!(),
                                "::",
                                stringify!($name)
                            )),
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {left:?} != {right:?}",
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {left:?} != {right:?}: {}",
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne! failed: both sides are {left:?}",
            ));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strategy) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn shrink_minimizes_a_range_failure() {
        // Known-failing predicate: everything >= 17 fails. Greedy shrinking
        // from any failing start must land exactly on the boundary.
        let strategy = 0usize..1000;
        let run = |v: usize| -> Result<(), String> {
            if v >= 17 {
                Err(format!("{v} too big"))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) =
            shrink_failure(&strategy, 999, "999 too big".into(), &mut |v| run(v));
        assert_eq!(min, 17, "greedy shrink reaches the minimal failing input");
        assert!(
            msg.contains("17"),
            "message reflects the minimized case: {msg}"
        );
        assert!(steps > 0);
    }

    #[test]
    fn shrink_minimizes_vec_structure_and_elements() {
        let strategy = crate::collection::vec(0u32..100, 0..8);
        let run = |v: Vec<u32>| -> Result<(), String> {
            if v.iter().any(|&x| x >= 5) {
                Err("contains a big element".into())
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(
            &strategy,
            vec![80, 3, 9, 40],
            "contains a big element".into(),
            &mut |v| run(v),
        );
        assert_eq!(min, vec![5], "one element, shrunk to the failing boundary");
    }

    #[test]
    fn shrink_survives_signed_ranges_wider_than_the_positive_half() {
        // -100..100 spans 200 > i8::MAX: the midpoint must widen instead
        // of overflowing `v - lo`.
        let strategy = -100i8..100;
        let (min, _, _) = shrink_failure(&strategy, 100, "big".into(), &mut |v| {
            if v >= 17 {
                Err("big".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(min, 17);
        let full = i8::MIN..=i8::MAX;
        let candidates = crate::Strategy::shrink(&full, &i8::MAX);
        assert!(candidates.iter().all(|&c| c < i8::MAX));
    }

    #[test]
    fn shrink_stops_at_unshrinkable_values() {
        let strategy = crate::strategy::Just(41usize);
        let (min, _, steps) =
            shrink_failure(&strategy, 41, "nope".into(), &mut |_| Err("nope".into()));
        assert_eq!(min, 41);
        assert_eq!(steps, 0, "Just has no smaller candidates");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn passing_properties_still_pass(x in 0usize..50, v in prop::collection::vec(0u32..9, 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]
        #[test]
        #[should_panic(expected = "minimized input")]
        fn failing_property_reports_minimized_input(x in 1usize..1000) {
            prop_assert!(x < 1, "x={x}");
        }
    }
}
