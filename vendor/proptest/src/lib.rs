//! Offline substitute for the `proptest` surface this workspace uses.
//!
//! Random testing without shrinking: each `proptest!` test derives a
//! deterministic RNG seed from its own name, draws `ProptestConfig::cases`
//! inputs from the declared strategies, and runs the body as a
//! `Result`-returning case (so `prop_assert!` failures and explicit
//! `return Ok(())` rejections both work). Failures panic with the case
//! number and seed so a run is reproducible by construction.

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{Arbitrary, BoxedStrategy, Strategy};

use rand::SeedableRng;

/// The RNG driving value generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Generates values of `T`'s canonical strategy (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Derives a stable seed for a named test: deterministic across runs,
/// machines, and test orderings (FNV-1a over the test path).
#[doc(hidden)]
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the RNG for a named test from [`seed_for_test`].
#[doc(hidden)]
pub fn rng_for_test(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for_test(name))
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn it_holds(x in 0usize..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( #[$meta:meta]
         fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            #[$meta]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ( $($pat,)+ ) = (
                        $( $crate::Strategy::sample(&($strategy), &mut rng), )+
                    );
                    let mut run = move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    if let Err(message) = run() {
                        panic!(
                            "proptest case {case}/{total} of {name} (seed {seed:#018x}) failed: {message}",
                            case = case + 1,
                            total = config.cases,
                            name = stringify!($name),
                            seed = $crate::seed_for_test(concat!(
                                module_path!(),
                                "::",
                                stringify!($name)
                            )),
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {left:?} != {right:?}",
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {left:?} != {right:?}: {}",
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne! failed: both sides are {left:?}",
            ));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strategy) ),+
        ])
    };
}
