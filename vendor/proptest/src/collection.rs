//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::RngExt;
use std::collections::BTreeSet;

/// Size specification for collection strategies: a fixed length or a
/// (half-open / inclusive) range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max)
    }

    fn min(&self) -> usize {
        self.min
    }
}

/// Vectors of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Structural shrinks first (never below the strategy's minimum
        // length): drop the whole tail beyond the minimum, then drop one
        // element at a time.
        if value.len() > self.size.min() {
            out.push(value[..self.size.min()].to_vec());
            let half = self.size.min().max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut cand = value.clone();
                cand.remove(i);
                out.push(cand);
            }
        }
        // Then element-wise shrinks, one position at a time.
        for (i, v) in value.iter().enumerate() {
            for smaller in self.element.shrink(v) {
                let mut cand = value.clone();
                cand[i] = smaller;
                out.push(cand);
            }
        }
        out
    }
}

/// Ordered sets of values from `element`, sized within `size` where the
/// element domain allows (duplicates are redrawn a bounded number of
/// times, then accepted as a smaller set).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Clone,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        if value.len() <= self.size.min() {
            return Vec::new();
        }
        // Drop one element at a time (sets may legitimately end up smaller
        // than the sampled target, so only the configured minimum binds).
        value
            .iter()
            .map(|drop| value.iter().filter(|v| *v != drop).cloned().collect())
            .collect()
    }
}
