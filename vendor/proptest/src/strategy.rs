//! The strategy trait and combinators.

use crate::TestRng;
use rand::RngExt;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Greedy shrink candidates for a failing `value`, most aggressive
    /// first. The driver re-runs the failing case on each candidate and
    /// recurses on the first that still fails; strategies with no notion
    /// of "smaller" return nothing (the default) and shrinking stops
    /// there. Candidates must stay within the strategy's domain and must
    /// strictly decrease some well-founded measure so shrinking
    /// terminates.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Generates a value, then generates from a strategy built from it.
    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, make }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.make)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among type-erased strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.random_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // The generating arm is unknown; every arm may propose candidates
        // (a candidate only survives if it still fails the property).
        self.arms.iter().flat_map(|a| a.shrink(value)).collect()
    }
}

/// Always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *value);
                if v <= lo {
                    return Vec::new();
                }
                // Toward the range start: the start itself, the midpoint
                // (widened so signed ranges wider than the type's positive
                // half cannot overflow), one step down — all strictly
                // closer to `lo` than `v`.
                let mid = lo + ((v as i128 - lo as i128) / 2) as $t;
                let mut out = vec![lo, mid, v - 1];
                out.dedup();
                out.retain(|&c| c < v);
                out
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (*self.start(), *value);
                if v <= lo {
                    return Vec::new();
                }
                let mid = lo + ((v as i128 - lo as i128) / 2) as $t;
                let mut out = vec![lo, mid, v - 1];
                out.dedup();
                out.retain(|&c| c < v);
                out
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *value);
                if v.is_nan() || v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo, lo + (v - lo) / 2.0];
                out.retain(|&c| c.is_finite() && c >= lo && c < v);
                out.dedup();
                out
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (*self.start(), *value);
                if v.is_nan() || v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo, lo + (v - lo) / 2.0];
                out.retain(|&c| c.is_finite() && c >= lo && c < v);
                out.dedup();
                out
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Tuple strategies shrink one component at a time, holding the rest
/// fixed — hence the `Clone` bounds on component values.
macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for $v in self.$i.shrink(&value.$i) {
                        let mut cand = value.clone();
                        cand.$i = $v;
                        out.push(cand);
                    }
                )+
                out
            }
        }
    )*};
}
tuple_strategy! {
    (A / a / 0)
    (A / a / 0, B / b / 1)
    (A / a / 0, B / b / 1, C / c / 2)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4)
}

/// Types with a canonical strategy, usable via [`crate::any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive (the [`Arbitrary`] canonical form).
pub struct FullRange<T>(pub core::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random::<$t>()
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                // Toward zero: zero itself, halving, one step toward 0.
                let step = if v > 0 { v - 1 } else { v + 1 };
                let mut out = vec![0, v / 2, step];
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(core::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(core::marker::PhantomData)
    }
}

impl Strategy for FullRange<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Unit interval: finite, well-behaved, and what tests want
        // from `any::<f64>()` in practice.
        rng.random::<f64>()
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        if v == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0, v / 2.0];
        out.retain(|&c| c.is_finite() && c.abs() < v.abs());
        out
    }
}

impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;

    fn arbitrary() -> Self::Strategy {
        FullRange(core::marker::PhantomData)
    }
}
