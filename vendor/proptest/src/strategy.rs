//! The strategy trait and combinators.

use crate::TestRng;
use rand::RngExt;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Generates a value, then generates from a strategy built from it.
    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, make }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.make)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among type-erased strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.random_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}

/// Always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical strategy, usable via [`crate::any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive (the [`Arbitrary`] canonical form).
pub struct FullRange<T>(pub core::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(core::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Strategy for FullRange<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Unit interval: finite, well-behaved, and what tests want
        // from `any::<f64>()` in practice.
        rng.random::<f64>()
    }
}

impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;

    fn arbitrary() -> Self::Strategy {
        FullRange(core::marker::PhantomData)
    }
}
