//! Sampling strategies: choosing from fixed sets and index generation.

use crate::strategy::{Arbitrary, FullRange, Strategy};
use crate::TestRng;
use rand::RngExt;

/// Uniformly chooses one of the given options (cloned per case).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.random_range(0..self.options.len())].clone()
    }
}

/// An index into a collection whose length is only known at use time:
/// generate an `Index` with `any`, then project with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Strategy for FullRange<Index> {
    type Value = Index;

    fn sample(&self, rng: &mut TestRng) -> Index {
        Index(rng.random::<usize>())
    }
}

impl Arbitrary for Index {
    type Strategy = FullRange<Index>;

    fn arbitrary() -> Self::Strategy {
        FullRange(core::marker::PhantomData)
    }
}
