//! Offline, deterministic substitute for the `rand` crate surface this
//! workspace uses.
//!
//! Everything here is a pure function of the seed: there is no OS entropy
//! source, which is exactly what the workspace's fixed-seed
//! reproducibility contract wants. `StdRng` is xoshiro256++ seeded via
//! splitmix64; `SmallRng` is the same generator under the upstream name.

pub mod rngs;
pub mod seq;

/// Core random source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value from the type's standard distribution
    /// (unit interval for floats, full range for integers).
    fn random<T: StandardDist>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`RngExt::random`].
pub trait StandardDist: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`RngExt::random_range`]. The output type is the
/// range's element type, which lets integer/float literal fallback
/// resolve unannotated ranges like `0.0..0.05`.
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as StandardDist>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let unit = <$t as StandardDist>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
