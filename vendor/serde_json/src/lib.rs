//! Offline substitute for the `serde_json` surface this workspace uses:
//! rendering any [`serde::Serialize`] type to a JSON string, and parsing
//! JSON text back into [`serde::Deserialize`] types (reloading persisted
//! reports and configs).

pub use serde::value::Value;

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the shim's value model; kept for upstream signature
/// compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string())
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails with the shim's value model; kept for upstream signature
/// compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string_pretty())
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] naming the byte offset of a syntax error or the
/// field path of a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_json_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] naming the byte offset of the first syntax error.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

/// Nesting depth cap: a malformed or adversarial input cannot blow the
/// parser's stack (our own reports nest a handful of levels deep).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        // kinet-lint: allow(transitive-allocation) — cold JSON parse path; on the tape hot cone only via the `.value()` name-collision edge
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            // kinet-lint: allow(transitive-allocation) — cold JSON parse path; on the tape hot cone only via the `.value()` name-collision edge
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and sign characters are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            // kinet-lint: allow(transitive-allocation) — cold JSON parse path; on the tape hot cone only via the `.value()` name-collision edge
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        // kinet-lint: allow(transitive-allocation) — cold JSON parse path; on the tape hot cone only via the `.value()` name-collision edge
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        // kinet-lint: allow(transitive-allocation) — cold JSON parse path; on the tape hot cone only via the `.value()` name-collision edge
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        // kinet-lint: allow(transitive-allocation) — cold JSON parse path; on the tape hot cone only via the `.value()` name-collision edge
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_value("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse_value(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures_with_whitespace() {
        let v = parse_value(" {\n  \"a\": [1, 2, {\"b\": null}],\n  \"c\": \"x\"\n} ").unwrap();
        let Value::Object(entries) = v else {
            panic!("expected object");
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in ["a\"b\\c\n\r\t", "unicode: \u{1F980} é", "ctrl \u{0001} end"] {
            let printed = Value::String(s.to_string()).to_json_string();
            assert_eq!(
                parse_value(&printed).unwrap(),
                Value::String(s.to_string()),
                "{printed}"
            );
        }
        assert_eq!(
            parse_value(r#""🦀""#).unwrap(),
            Value::String("\u{1F980}".to_string())
        );
    }

    #[test]
    fn value_roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("n".into(), Value::Number(1.25)),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(false), Value::Null]),
            ),
            ("s".into(), Value::String("line\nbreak".into())),
            ("empty".into(), Value::Array(vec![])),
            ("obj".into(), Value::Object(vec![])),
        ]);
        assert_eq!(parse_value(&v.to_json_string()).unwrap(), v);
        assert_eq!(parse_value(&v.to_json_string_pretty()).unwrap(), v);
    }

    #[test]
    fn syntax_errors_name_the_position() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            let err = parse_value(bad).unwrap_err().to_string();
            assert!(
                err.contains("byte") || err.contains("number"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn from_str_typed() {
        let xs: Vec<f64> = from_str("[1, 2.5, -3]").unwrap();
        assert_eq!(xs, vec![1.0, 2.5, -3.0]);
        let pair: (String, usize) = from_str(r#"["port_scan", 30]"#).unwrap();
        assert_eq!(pair, ("port_scan".to_string(), 30));
        let opt: Option<bool> = from_str("null").unwrap();
        assert_eq!(opt, None);
        assert!(from_str::<usize>("3.5").is_err());
        assert!(from_str::<Vec<f64>>("{}").is_err());
    }
}
