//! Offline substitute for the `serde_json` surface this workspace uses:
//! rendering any [`serde::Serialize`] type to a JSON string.

pub use serde::value::Value;

/// Serialization error. The shim's value model is total (every
/// `Serialize` impl produces a value), so this currently never occurs,
/// but the `Result` shape matches upstream call sites.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization failed: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the shim's value model; kept for upstream signature
/// compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string())
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails with the shim's value model; kept for upstream signature
/// compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string_pretty())
}
