//! The owned JSON value tree and its printers.

use std::fmt::Write as _;

/// A JSON value. Object entries keep insertion order (field order for
/// derived structs), which keeps output diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values print as `null` like serde_json.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with ordered entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Compact single-line rendering.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.iter(),
                    |out, item, d| {
                        item.write(out, indent, d);
                    },
                );
            }
            Value::Object(entries) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    entries.iter(),
                    |out, (k, v), d| {
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, d);
                    },
                );
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("k".into(), Value::String("v".into()))]);
        assert_eq!(v.to_json_string_pretty(), "{\n  \"k\": \"v\"\n}");
    }

    #[test]
    fn escapes_and_nonfinite() {
        let v = Value::Array(vec![
            Value::String("a\"b\\c\n".into()),
            Value::Number(f64::NAN),
        ]);
        assert_eq!(v.to_json_string(), r#"["a\"b\\c\n",null]"#);
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(Value::Number(3.0).to_json_string(), "3");
        assert_eq!(Value::Number(3.5).to_json_string(), "3.5");
    }
}
