//! Deserialization support: the error type and the lookup helpers the
//! derive macro's generated code calls.
//!
//! The shim deserializes in two stages: `serde_json` parses text into a
//! [`Value`] tree, then [`crate::Deserialize::from_json_value`] walks the
//! tree into the target type. Helpers here keep the generated code small
//! and give errors a breadcrumb trail (`field "epochs": expected integer,
//! found string`).

use crate::value::Value;
use crate::Deserialize;
use std::fmt;

/// A deserialization failure with a human-readable path description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// `expected X, found Y` for a value of the wrong shape.
    pub fn invalid_type(expected: &str, found: &Value) -> Self {
        Error(format!("expected {expected}, found {}", kind_name(found)))
    }

    /// An enum tag that names no variant of the target type.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error(format!("unknown variant {tag:?} of enum {ty}"))
    }

    /// Wraps an error with the field it occurred under.
    pub fn in_field(name: &str, inner: Error) -> Self {
        Error(format!("field {name:?}: {}", inner.0))
    }

    /// Wraps an error with the enum variant it occurred under.
    pub fn in_variant(variant: &str, inner: Error) -> Self {
        Error(format!("variant {variant:?}: {}", inner.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// The JSON kind of a value, for error messages.
pub fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Looks up `name` in an object value and deserializes it. A missing key
/// takes the type's [`Deserialize::from_missing_field`] path: `Option`
/// fields tolerate absence, every other type fails with an error naming
/// the field (an explicit `null` is different — it still flows through
/// `from_json_value`, so nullable representations like non-finite floats
/// keep round-tripping).
///
/// # Errors
///
/// Returns an error when `v` is not an object or the field is missing or
/// fails to deserialize.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let Value::Object(entries) = v else {
        return Err(Error::invalid_type("object", v));
    };
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, fv)| T::from_json_value(fv))
        .unwrap_or_else(T::from_missing_field)
        .map_err(|e| Error::in_field(name, e))
}

/// Views `v` as an array of exactly `len` elements (a serialized tuple or
/// tuple struct).
///
/// # Errors
///
/// Returns an error on any other shape or length.
pub fn tuple(v: &Value, len: usize) -> Result<&[Value], Error> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected array of {len} elements, found {}",
            items.len()
        ))),
        other => Err(Error::invalid_type("array", other)),
    }
}

/// Deserializes element `idx` of a tuple slice produced by [`tuple`].
///
/// # Errors
///
/// Propagates element failures, tagged with the index.
pub fn element<T: Deserialize>(items: &[Value], idx: usize) -> Result<T, Error> {
    T::from_json_value(&items[idx]).map_err(|e| Error::custom(format!("element {idx}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_and_missing_key() {
        let v = Value::Object(vec![("a".into(), Value::Number(3.0))]);
        let a: u32 = field(&v, "a").unwrap();
        assert_eq!(a, 3);
        let missing: Option<u32> = field(&v, "b").unwrap();
        assert_eq!(missing, None);
        let err = field::<u32>(&v, "b").unwrap_err();
        assert!(err.to_string().contains("\"b\""), "{err}");
    }

    #[test]
    fn missing_float_field_errors_but_explicit_null_reads_nan() {
        // A truncated/older-schema snapshot must fail loudly, not fill
        // required floats with NaN; explicit null (the printer's rendering
        // of non-finite floats) still round-trips.
        let v = Value::Object(vec![("present".into(), Value::Null)]);
        let nan: f64 = field(&v, "present").unwrap();
        assert!(nan.is_nan());
        let err = field::<f64>(&v, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
        let opt: Option<f64> = field(&v, "absent").unwrap();
        assert!(opt.is_none());
    }

    #[test]
    fn tuple_checks_shape() {
        let v = Value::Array(vec![Value::Number(1.0), Value::Bool(true)]);
        assert!(tuple(&v, 2).is_ok());
        assert!(tuple(&v, 3).is_err());
        assert!(tuple(&Value::Null, 2).is_err());
    }
}
