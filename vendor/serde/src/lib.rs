//! Offline substitute for the `serde` surface this workspace uses.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] converts
//! directly into an owned JSON [`value::Value`]; `serde_json` pretty-prints
//! that. [`Deserialize`] is a marker trait — nothing in the workspace
//! deserializes yet — kept so `#[derive(Deserialize)]` stays meaningful
//! and the signature matches upstream call sites.

pub mod value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// Types convertible to a JSON value.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Marker for types reconstructible from serialized form (derive target
/// only; no deserializer exists in the workspace yet).
pub trait Deserialize {}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Deserialize for bool {}
impl Deserialize for String {}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
