//! Offline substitute for the `serde` surface this workspace uses.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] converts
//! directly into an owned JSON [`value::Value`]; `serde_json` pretty-prints
//! that. [`Deserialize`] is the inverse: it reconstructs a type from a
//! parsed [`value::Value`] tree (see [`de`] for the error type and the
//! helpers the derive macro emits calls to). Both directions round-trip
//! every derived type in the workspace, with two documented losses mirrored
//! from the printer: non-finite floats serialize as `null` (and `null`
//! deserializes back to `NaN` for bare floats, `None` for `Option`s), and
//! integers survive only up to `f64` precision (2^53).

pub mod de;
pub mod value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// Types convertible to a JSON value.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a JSON value tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] describing the first shape or type mismatch.
    fn from_json_value(v: &Value) -> Result<Self, de::Error>;

    /// The value for an object field that is **absent** (as opposed to an
    /// explicit `null`). Errors for every type except `Option`, so a
    /// truncated or older-schema snapshot fails loudly instead of filling
    /// required fields with defaults (floats would otherwise read as NaN
    /// through the explicit-null path).
    ///
    /// # Errors
    ///
    /// Returns a "missing field" [`de::Error`] by default.
    fn from_missing_field() -> Result<Self, de::Error> {
        Err(de::Error::custom("missing field"))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::invalid_type("bool", other)),
        }
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(n)
                        if n.fract() == 0.0
                            && *n >= <$t>::MIN as f64
                            && *n <= <$t>::MAX as f64 =>
                    {
                        Ok(*n as $t)
                    }
                    other => Err(de::Error::invalid_type("integer", other)),
                }
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    // The printer renders non-finite floats as null; read
                    // them back as NaN so reports round-trip structurally.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(de::Error::invalid_type("number", other)),
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn from_missing_field() -> Result<Self, de::Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    T::from_json_value(item)
                        .map_err(|e| de::Error::custom(format!("element {i}: {e}")))
                })
                .collect(),
            other => Err(de::Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        let items = de::tuple(v, N)?;
        let vec: Vec<T> = (0..N)
            .map(|i| de::element(items, i))
            .collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| de::Error::custom("array length changed"))
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, de::Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let items = de::tuple(v, LEN)?;
                Ok(($(de::element::<$t>(items, $n)?,)+))
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        map_entries(v)?
            .map(|(k, fv)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| de::Error::custom(format!("unparsable map key {k:?}")))?;
                let value = V::from_json_value(fv).map_err(|e| de::Error::in_field(k, e))?;
                Ok((key, value))
            })
            .collect()
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        map_entries(v)?
            .map(|(k, fv)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| de::Error::custom(format!("unparsable map key {k:?}")))?;
                let value = V::from_json_value(fv).map_err(|e| de::Error::in_field(k, e))?;
                Ok((key, value))
            })
            .collect()
    }
}

fn map_entries(v: &Value) -> Result<std::slice::Iter<'_, (String, Value)>, de::Error> {
    match v {
        Value::Object(entries) => Ok(entries.iter()),
        other => Err(de::Error::invalid_type("object", other)),
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    T::from_json_value(item)
                        .map_err(|e| de::Error::custom(format!("element {i}: {e}")))
                })
                .collect(),
            other => Err(de::Error::invalid_type("array", other)),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
