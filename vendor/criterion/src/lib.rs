//! Offline substitute for the `criterion` benchmarking surface this
//! workspace uses. Measures wall-clock time with a warmup pass and a
//! fixed sample count, reporting min/median/mean per benchmark — enough
//! to compare hot paths release-to-release without the real crate.
//!
//! Scale knob: `KINET_BENCH_SAMPLES` overrides the per-benchmark sample
//! count (default 20; `Criterion::sample_size` and
//! `BenchmarkGroup::sample_size` also apply).

use std::time::{Duration, Instant};

/// Opaque hint that `value` is used, preventing dead-code elimination.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("KINET_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Self {
            sample_size: samples.max(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (report-only in the shim).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming both function and parameter.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, recording one sample per call from the driver.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup (also sizes iterations so fast routines get stable timings).
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);
    let per_iter = warm.samples.first().copied().unwrap_or_default();
    let iters_per_sample = if per_iter < Duration::from_micros(50) {
        // Target ~1ms per sample for very fast routines.
        (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u32
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name}: min {} | median {} | mean {} ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len(),
        iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(name, target_a, target_b)` and the configured form
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
        });
        c.bench_function("counts", |b| {
            runs += 1;
            b.iter(|| ());
        });
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
