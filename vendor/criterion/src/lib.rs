//! Offline substitute for the `criterion` benchmarking surface this
//! workspace uses. Measures wall-clock time with a warmup pass and a
//! fixed sample count, reporting min/median/mean per benchmark — enough
//! to compare hot paths release-to-release without the real crate.
//!
//! Scale knob: `KINET_BENCH_SAMPLES` overrides the per-benchmark sample
//! count (default 20; `Criterion::sample_size` and
//! `BenchmarkGroup::sample_size` also apply).
//!
//! Persistence: `criterion_main!` writes every benchmark's summary to
//! `target/experiments/BENCH_<bench>.json` (override the directory with
//! `KINET_EXPERIMENTS_DIR`), so runs can be diffed across commits and
//! archived as CI artifacts.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark's timing summary, collected for JSON persistence.
struct BenchRecord {
    name: String,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
    samples: usize,
    iters_per_sample: u32,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Writes all benchmark summaries recorded so far to
/// `<dir>/BENCH_<bench>.json`, where `<dir>` is `KINET_EXPERIMENTS_DIR` or
/// `target/experiments`, and `<bench>` is derived from the bench binary
/// name (`bench_tensor-<hash>` → `tensor`). Called by `criterion_main!`;
/// errors are reported to stderr but never fail the bench run.
pub fn persist_results() {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let bench = bench_binary_name();
    let dir = std::env::var("KINET_EXPERIMENTS_DIR").unwrap_or_else(|_| default_experiments_dir());
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n", escape(&bench)));
    json.push_str(&format!(
        "  \"unix_time\": {},\n",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \
             \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            escape(&r.name),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = format!("{dir}/BENCH_{bench}.json");
    let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json));
    match write {
        Ok(()) => println!("bench summary written to {path}"),
        Err(e) => eprintln!("could not persist bench summary to {path}: {e}"),
    }
}

/// `<workspace>/target/experiments`, located by walking up from the bench
/// executable (which cargo always places under `target/`). Bench binaries
/// run with the *package* directory as cwd, so a relative path would land
/// in the wrong place for workspace members.
fn default_experiments_dir() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(|t| t.join("experiments").to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "target/experiments".to_string())
}

/// The bench's logical name from `argv[0]`: file stem, minus the trailing
/// `-<hash>` cargo appends, minus a `bench_` prefix.
fn bench_binary_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    let stem = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.chars().all(|c| c.is_ascii_hexdigit()) => base,
        _ => stem,
    };
    stem.strip_prefix("bench_").unwrap_or(stem).to_string()
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Opaque hint that `value` is used, preventing dead-code elimination.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("KINET_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Self {
            sample_size: samples.max(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (report-only in the shim).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming both function and parameter.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, recording one sample per call from the driver.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup (also sizes iterations so fast routines get stable timings).
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);
    let per_iter = warm.samples.first().copied().unwrap_or_default();
    let iters_per_sample = if per_iter < Duration::from_micros(50) {
        // Target ~1ms per sample for very fast routines.
        (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u32
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchRecord {
            name: name.to_string(),
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
            samples: samples.len(),
            iters_per_sample,
        });
    println!(
        "{name}: min {} | median {} | mean {} ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len(),
        iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(name, target_a, target_b)` and the configured form
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups, then persists
/// the collected summaries as JSON (see [`persist_results`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::persist_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
        });
        c.bench_function("counts", |b| {
            runs += 1;
            b.iter(|| ());
        });
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn samples_are_recorded_for_persistence() {
        let before = RESULTS.lock().unwrap().len();
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("record-me", |b| b.iter(|| black_box(1)));
        let results = RESULTS.lock().unwrap();
        assert!(results.len() > before);
        assert!(results.iter().any(|r| r.name == "record-me"));
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
