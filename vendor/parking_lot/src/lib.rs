//! Offline substitute for `parking_lot`: std locks with the
//! parking_lot calling convention (no poisoning, guards returned
//! directly from `read`/`write`/`lock`).

use std::sync;

/// Reader–writer lock; panics on poisoning instead of returning `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// Mutual-exclusion lock; panics on poisoning instead of returning `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
