//! Offline substitute for the `crossbeam` channel surface this
//! workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels with the crossbeam naming convention.

    pub use std::sync::mpsc::{IntoIter, Iter, Receiver, RecvError, SendError, Sender, TryIter};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = super::unbounded::<usize>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
