//! Offline substitute for the `crossbeam` channel and scoped-thread
//! surface this workspace uses, backed by `std::sync::mpsc` and
//! `std::thread::scope`.

pub use thread::scope;

pub mod thread {
    //! Scoped threads with the crossbeam naming convention.
    //!
    //! Backed by `std::thread::scope`, so spawned threads may borrow from
    //! the enclosing stack frame and are always joined before `scope`
    //! returns. One deviation from the real crate: a panic in an unjoined
    //! spawned thread propagates as a panic out of `scope` (std semantics)
    //! instead of surfacing through the returned `Result`.

    pub use std::thread::ScopedJoinHandle;

    /// A scope for spawning borrowing threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn nested siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope whose spawned threads are all joined before the call
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1usize, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<usize>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_handle() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7usize).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}

pub mod channel {
    //! Multi-producer channels with the crossbeam naming convention.

    pub use std::sync::mpsc::{IntoIter, Iter, Receiver, RecvError, SendError, Sender, TryIter};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = super::unbounded::<usize>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
