//! Property tests for the packed GEMM kernel: every product variant must be
//! *bit-identical* to a naive single-accumulator reference on random
//! rectangular shapes, and the result must not depend on the worker-thread
//! count. Exact `==` (not approximate) is intentional — it is the kernel's
//! determinism contract: packing, tiling and row partitioning may never
//! change the per-element summation order.

use kinet_tensor::{with_threads, Matrix, MatrixRandomExt};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Reference product: one accumulator per element, ascending `k`.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        let mut acc = 0.0f32;
        for p in 0..a.cols() {
            acc += a[(i, p)] * b[(p, j)];
        }
        acc
    })
}

fn naive_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows());
    Matrix::from_fn(a.cols(), b.cols(), |i, j| {
        let mut acc = 0.0f32;
        for p in 0..a.rows() {
            acc += a[(p, i)] * b[(p, j)];
        }
        acc
    })
}

fn naive_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols());
    Matrix::from_fn(a.rows(), b.rows(), |i, j| {
        let mut acc = 0.0f32;
        for p in 0..a.cols() {
            acc += a[(i, p)] * b[(j, p)];
        }
        acc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Shapes up to 48 straddle the kernel's small-product cutoff, the
    // MR/NR tile edges, and rectangular aspect ratios in both directions.
    #[test]
    fn products_are_bit_identical_to_naive_reference(
        n in 1usize..48,
        k in 1usize..48,
        m in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::randn(n, k, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(k, m, 0.0, 1.0, &mut rng);
        prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));

        let at = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
        prop_assert_eq!(at.matmul_tn(&b), naive_matmul_tn(&at, &b));

        let bt = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
        prop_assert_eq!(a.matmul_nt(&bt), naive_matmul_nt(&a, &bt));
    }

    #[test]
    fn fused_accumulate_equals_product_then_add(
        n in 1usize..32,
        k in 1usize..32,
        m in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Matrix::randn(n, m, 0.0, 1.0, &mut rng);
        let a = Matrix::randn(n, k, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(k, m, 0.0, 1.0, &mut rng);
        let mut acc = base.clone();
        acc.matmul_acc(&a, &b);
        prop_assert_eq!(&acc, &base.add(&naive_matmul(&a, &b)));

        let g = Matrix::randn(n, m, 0.0, 1.0, &mut rng);
        let mut acc = Matrix::randn(k, m, 0.0, 1.0, &mut rng);
        let expected = acc.add(&naive_matmul_tn(&a, &g));
        acc.matmul_tn_acc(&a, &g);
        prop_assert_eq!(&acc, &expected);

        let mut acc = Matrix::randn(n, k, 0.0, 1.0, &mut rng);
        let expected = acc.add(&naive_matmul_nt(&g, &b));
        acc.matmul_nt_acc(&g, &b);
        prop_assert_eq!(&acc, &expected);
    }

    // KINET_THREADS=1 vs >1 must be bit-identical: workers own disjoint
    // output rows and never change any element's summation order.
    #[test]
    fn thread_count_never_changes_bits(
        n in 1usize..64,
        k in 1usize..48,
        m in 1usize..48,
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::randn(n, k, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(k, m, 0.0, 1.0, &mut rng);
        let bt = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
        let serial = with_threads(1, || (a.matmul(&b), a.matmul_nt(&bt)));
        let parallel = with_threads(threads, || (a.matmul(&b), a.matmul_nt(&bt)));
        prop_assert_eq!(serial.0, parallel.0);
        prop_assert_eq!(serial.1, parallel.1);
    }
}
