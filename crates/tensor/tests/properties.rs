//! Property-based tests for the matrix algebra: algebraic identities that
//! must hold for arbitrary well-formed inputs.

use kinet_tensor::Matrix;
use proptest::prelude::*;

const DIM: std::ops::RangeInclusive<usize> = 1..=8;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn arb_square_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    DIM.prop_flat_map(|n| (arb_matrix(n, n), arb_matrix(n, n)))
}

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn add_commutes((a, b) in arb_square_pair()) {
        prop_assert!(close(&a.add(&b), &b.add(&a), 1e-6));
    }

    #[test]
    fn sub_is_add_of_negation((a, b) in arb_square_pair()) {
        prop_assert!(close(&a.sub(&b), &a.add(&b.scale(-1.0)), 1e-6));
    }

    #[test]
    fn matmul_identity_is_noop(n in DIM, seed in any::<u64>()) {
        use kinet_tensor::MatrixRandomExt;
        use rand::{SeedableRng, rngs::StdRng};
        let a = Matrix::randn(n, n, 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
        prop_assert!(close(&a.matmul(&Matrix::eye(n)), &a, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_add((a, b) in arb_square_pair()) {
        let c = Matrix::eye(a.rows()).scale(0.5);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn transpose_reverses_matmul((a, b) in arb_square_pair()) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_tn_equals_explicit((a, b) in arb_square_pair()) {
        prop_assert!(close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4));
        prop_assert!(close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4));
    }

    #[test]
    fn hstack_then_slice_roundtrips((a, b) in arb_square_pair()) {
        let h = Matrix::hstack(&[&a, &b]);
        prop_assert_eq!(h.slice_cols(0, a.cols()), a.clone());
        prop_assert_eq!(h.slice_cols(a.cols(), h.cols()), b);
    }

    #[test]
    fn vstack_then_slice_roundtrips((a, b) in arb_square_pair()) {
        let v = Matrix::vstack(&[&a, &b]);
        prop_assert_eq!(v.slice_rows(0, a.rows()), a.clone());
        prop_assert_eq!(v.slice_rows(a.rows(), v.rows()), b);
    }

    #[test]
    fn sum_rows_matches_total(rows in DIM, cols in DIM, seed in any::<u64>()) {
        use kinet_tensor::MatrixRandomExt;
        use rand::{SeedableRng, rngs::StdRng};
        let m = Matrix::rand_uniform(rows, cols, -1.0, 1.0, &mut StdRng::seed_from_u64(seed));
        let total: f32 = m.sum_rows().as_slice().iter().sum();
        prop_assert!((total - m.sum()).abs() < 1e-3);
    }

    #[test]
    fn argmax_points_at_max(rows in DIM, cols in DIM, seed in any::<u64>()) {
        use kinet_tensor::MatrixRandomExt;
        use rand::{SeedableRng, rngs::StdRng};
        let m = Matrix::rand_uniform(rows, cols, 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
        for (r, am) in m.argmax_rows().into_iter().enumerate() {
            let row = m.row(r);
            for &v in row {
                prop_assert!(row[am] >= v);
            }
        }
    }

    #[test]
    fn scale_then_unscale_roundtrips(rows in DIM, cols in DIM, s in 0.25f32..4.0) {
        let m = Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
        prop_assert!(close(&m.scale(s).scale(1.0 / s), &m, 1e-4));
    }
}
