//! Dense, row-major, CPU matrix algebra for the KiNETGAN reproduction.
//!
//! This crate is the lowest layer of the workspace: a deliberately small,
//! BLAS-free `f32` matrix type with the operations the neural-network stack
//! ([`kinet-nn`]) and the statistical tooling need. It favours clarity and
//! determinism (all randomness flows through explicit [`rand`] generators)
//! over peak throughput, while still using a cache-blocked matmul that is
//! fast enough to train the paper's GANs on a laptop-class CPU.
//!
//! # Quick start
//!
//! ```
//! use kinet_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! assert_eq!(c.sum(), 10.0);
//! ```
//!
//! [`kinet-nn`]: https://example.org/kinetgan-rs

mod matrix;
mod ops;
mod random;
mod stats;

pub use matrix::Matrix;
pub use random::{gaussian_pair, MatrixRandomExt};

/// Numerical tolerance used by the crate's own tests and recommended for
/// comparisons of values produced by iterative routines.
pub const EPSILON: f32 = 1e-5;

/// Returns `true` when two floats are within `tol` of each other, treating
/// NaNs as never close.
///
/// ```
/// assert!(kinet_tensor::approx_eq(1.0, 1.0 + 1e-7, 1e-5));
/// assert!(!kinet_tensor::approx_eq(1.0, 1.1, 1e-5));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol
}
