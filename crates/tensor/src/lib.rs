//! Dense, row-major, CPU matrix algebra for the KiNETGAN reproduction.
//!
//! This crate is the lowest layer of the workspace: a deliberately small,
//! BLAS-free `f32` matrix type with the operations the neural-network stack
//! ([`kinet-nn`]) and the statistical tooling need. All randomness flows
//! through explicit [`rand`] generators, and the matrix products run on a
//! packed, cache-tiled, register-blocked kernel (see [`kernel` layout notes
//! in DESIGN.md]) that parallelizes over disjoint output-row ranges — the
//! `KINET_THREADS` environment variable caps the worker count — while
//! keeping results bit-for-bit identical for every thread count.
//!
//! [`kernel` layout notes in DESIGN.md]: https://example.org/kinetgan-rs
//!
//! # Quick start
//!
//! ```
//! use kinet_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! assert_eq!(c.sum(), 10.0);
//! ```
//!
//! [`kinet-nn`]: https://example.org/kinetgan-rs

mod kernel;
mod matrix;
mod ops;
pub mod pool;
mod random;
mod stats;

pub use matrix::Matrix;
pub use pool::with_threads;
pub use random::{gaussian_pair, MatrixRandomExt};

/// Numerical tolerance used by the crate's own tests and recommended for
/// comparisons of values produced by iterative routines.
pub const EPSILON: f32 = 1e-5;

/// Returns `true` when two floats are within `tol` of each other, treating
/// NaNs as never close.
///
/// ```
/// assert!(kinet_tensor::approx_eq(1.0, 1.0 + 1e-7, 1e-5));
/// assert!(!kinet_tensor::approx_eq(1.0, 1.1, 1e-5));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol
}
