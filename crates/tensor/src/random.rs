//! Deterministic random initialization for matrices.
//!
//! Every routine takes an explicit `&mut impl Rng` so experiments are
//! reproducible from a single seed.

use crate::Matrix;
use rand::{Rng, RngExt};

/// Draws a pair of independent standard-normal samples with the Box–Muller
/// transform.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (a, b) = kinet_tensor::gaussian_pair(&mut rng);
/// assert!(a.is_finite() && b.is_finite());
/// ```
pub fn gaussian_pair(rng: &mut impl Rng) -> (f32, f32) {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Random-construction extension methods for [`Matrix`].
///
/// Implemented as an extension trait so the core type stays independent of
/// the `rand` API surface.
pub trait MatrixRandomExt: Sized {
    /// Matrix with elements drawn uniformly from `[lo, hi)`.
    fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Self;

    /// Matrix with i.i.d. `N(mean, std²)` elements.
    fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self;

    /// Glorot/Xavier-uniform initialization for a layer mapping
    /// `fan_in -> fan_out` (shape `fan_in × fan_out`).
    fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self;

    /// Kaiming/He-normal initialization, appropriate before ReLU-family
    /// activations (shape `fan_in × fan_out`).
    fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self;

    /// Bernoulli 0/1 mask with `P(1) = keep_prob`, scaled by
    /// `1 / keep_prob` (inverted dropout convention).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep_prob <= 1`.
    fn dropout_mask(rows: usize, cols: usize, keep_prob: f32, rng: &mut impl Rng) -> Self;

    /// Matrix of standard Gumbel(0, 1) noise, used by Gumbel-Softmax heads.
    fn gumbel(rows: usize, cols: usize, rng: &mut impl Rng) -> Self;
}

impl MatrixRandomExt for Matrix {
    fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
    }

    fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() + 1 < n {
            let (a, b) = gaussian_pair(rng);
            data.push(mean + std * a);
            data.push(mean + std * b);
        }
        if data.len() < n {
            let (a, _) = gaussian_pair(rng);
            data.push(mean + std * a);
        }
        Matrix::from_vec(rows, cols, data)
    }

    fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / fan_in as f32).sqrt();
        Self::randn(fan_in, fan_out, 0.0, std, rng)
    }

    fn dropout_mask(rows: usize, cols: usize, keep_prob: f32, rng: &mut impl Rng) -> Self {
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "keep_prob must be in (0, 1], got {keep_prob}"
        );
        let scale = 1.0 / keep_prob;
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.random::<f32>() < keep_prob {
                scale
            } else {
                0.0
            }
        })
    }

    fn gumbel(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| {
            // Clamp *both* tails: `random::<f32>()` can return exactly 0,
            // and `u = 1` would make `-ln(-ln(u)) = +inf` — one infinite
            // Gumbel draw poisons the softmax downstream and NaNs the
            // whole training step (observed roughly once per ~10⁷ draws).
            let u: f32 = (1.0f32 - rng.random::<f32>()).clamp(1e-12, 1.0 - 1e-7);
            -(-u.ln()).ln()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::rand_uniform(50, 50, -0.5, 0.5, &mut rng);
        assert!(m.max() < 0.5 && m.min() >= -0.5);
    }

    #[test]
    fn randn_moments_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Matrix::randn(200, 200, 1.0, 2.0, &mut rng);
        assert!((m.mean() - 1.0).abs() < 0.05, "mean {}", m.mean());
        assert!(
            (m.variance().sqrt() - 2.0).abs() < 0.05,
            "std {}",
            m.variance().sqrt()
        );
    }

    #[test]
    fn randn_odd_element_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::randn(3, 3, 0.0, 1.0, &mut rng);
        assert_eq!(m.len(), 9);
        assert!(!m.has_non_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Matrix::randn(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        let b = Matrix::randn(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Matrix::glorot_uniform(100, 100, &mut rng);
        let limit = (6.0f32 / 200.0).sqrt();
        assert!(m.max() <= limit && m.min() >= -limit);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::kaiming_normal(512, 64, &mut rng);
        let expected = (2.0f32 / 512.0).sqrt();
        assert!((m.variance().sqrt() - expected).abs() < 0.01);
    }

    #[test]
    fn dropout_mask_values() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = Matrix::dropout_mask(100, 100, 0.8, &mut rng);
        let scale = 1.0 / 0.8;
        for &v in m.as_slice() {
            assert!(v == 0.0 || (v - scale).abs() < 1e-6);
        }
        let keep_frac = m.as_slice().iter().filter(|&&v| v > 0.0).count() as f32 / 10_000.0;
        assert!((keep_frac - 0.8).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "keep_prob")]
    fn dropout_rejects_zero_keep() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = Matrix::dropout_mask(1, 1, 0.0, &mut rng);
    }

    #[test]
    fn gumbel_finite_and_centered() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Matrix::gumbel(100, 100, &mut rng);
        assert!(!m.has_non_finite());
        // Gumbel(0,1) mean is the Euler–Mascheroni constant ≈ 0.5772.
        assert!((m.mean() - 0.5772).abs() < 0.05, "mean {}", m.mean());
    }

    /// An Rng that replays fixed 64-bit words (degenerate-uniform probe).
    struct FixedBits(Vec<u64>, usize);
    impl rand::Rng for FixedBits {
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
    }

    #[test]
    fn gumbel_finite_at_uniform_extremes() {
        // All-zero and all-one bit patterns drive `random::<f32>()` to its
        // extreme outputs; both tails of `-ln(-ln(u))` must stay finite.
        for bits in [0u64, u64::MAX] {
            let mut rng = FixedBits(vec![bits], 0);
            let m = Matrix::gumbel(4, 4, &mut rng);
            assert!(
                !m.has_non_finite(),
                "gumbel({bits:#x}) produced a non-finite value: {:?}",
                m.as_slice()
            );
        }
    }
}
