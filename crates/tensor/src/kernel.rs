//! The packed, cache-tiled GEMM kernel shared by every matrix product.
//!
//! All three public products (`matmul`, `matmul_tn`, `matmul_nt`) and their
//! fused accumulate variants funnel into [`gemm`]: operands are packed into
//! tile-contiguous buffers (absorbing any transpose during the O(n²) pack
//! instead of the O(n³) compute), and an `MR × NR` register-blocked
//! micro-kernel with an explicit 8-wide inner loop does the arithmetic. The
//! compiler auto-vectorizes the fixed-size inner loops; there is no
//! platform-specific intrinsic code.
//!
//! # Determinism contract
//!
//! Every output element is produced by exactly one accumulator updated in
//! strictly ascending `k` order, at `f32` precision throughout. The result
//! is therefore bit-identical to the naive single-accumulator dot product
//! — independent of tile sizes, of how rows are partitioned across worker
//! threads (each worker owns a disjoint range of output rows), and of the
//! `KINET_THREADS` setting.

use crate::pool;
use std::cell::RefCell;

thread_local! {
    /// Reusable pack buffers, one pair per thread. `pack_b` runs once per
    /// call on the calling thread and `pack_a` runs per row-chunk on
    /// whichever thread owns the chunk; routing both through a thread-local
    /// arena means repeated matmuls on a long-lived thread (the serial
    /// training loop, `KINET_THREADS=1`) stop re-allocating pack buffers
    /// entirely. Workers spawned per call start with an empty arena and
    /// allocate once, exactly as before. Buffers are zero-filled on every
    /// borrow, so reuse is bit-identical to a fresh `vec![0.0; len]`.
    static PACK_B_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_A_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Borrows a thread-local scratch buffer, zero-filled to `len`, for the
/// duration of `f`. Nested borrows of the same slot would observe an empty
/// buffer (the slot is taken, not shared) — the kernel never nests.
fn with_scratch<R>(
    slot: &'static std::thread::LocalKey<RefCell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut Vec<f32>) -> R,
) -> R {
    slot.with(|cell| {
        let mut buf = cell.take();
        buf.clear();
        buf.resize(len, 0.0);
        let out = f(&mut buf);
        cell.replace(buf);
        out
    })
}

/// Rows of the micro-kernel register block. With `NR = 8` the accumulator
/// tile is eight 8-wide rows — on AVX2 (see `.cargo/config.toml`) that is
/// 8 of the 16 YMM registers, leaving room for the packed operand loads.
pub(crate) const MR: usize = 8;

/// Columns of the micro-kernel register block: the explicit 8-wide inner
/// loop the compiler turns into vector FMAs/mul-adds.
pub(crate) const NR: usize = 8;

/// Below this many multiply-adds the packed path's setup costs more than it
/// saves; a plain ascending-`k` dot-product loop (same summation order, so
/// bit-identical results) handles tiny products.
const SMALL_FLOP_CUTOFF: usize = 16 * 1024;

/// Minimum multiply-adds a worker must own before fanning out: scoped
/// threads are spawned per call (tens of microseconds each), so products
/// are kept serial until each worker's share clearly amortizes that.
/// Thread count never changes results, only throughput.
const MIN_FLOPS_PER_THREAD: usize = 256 * 1024;

/// Whether an operand is used as stored or logically transposed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the operand's transpose.
    Yes,
}

/// Computes `out = op(a) · op(b)` (or `out += …` when `accumulate` is set).
///
/// `out` is the row-major `n × m` destination; the shared dimension is `k`.
/// `a` is stored `n × k` when `ta == Trans::No`, else `k × n`; `b` is
/// stored `k × m` when `tb == Trans::No`, else `m × k`. Shape checks are
/// the caller's job (the `Matrix` wrappers assert before calling).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    out: &mut [f32],
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    accumulate: bool,
) {
    debug_assert_eq!(out.len(), n * m);
    debug_assert_eq!(a.len(), n * k);
    debug_assert_eq!(b.len(), k * m);
    if n == 0 || m == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    if n * m * k < SMALL_FLOP_CUTOFF {
        gemm_small(out, n, m, k, a, ta, b, tb, accumulate);
        return;
    }

    // Pack all of B once: NR-wide column panels, k-major inside each panel.
    // Workers share it read-only while owning disjoint row ranges of `out`.
    // The buffer comes from the calling thread's scratch arena so repeated
    // products skip the allocation.
    with_scratch(&PACK_B_SCRATCH, m.div_ceil(NR) * k * NR, |packed_b| {
        pack_b(packed_b, b, k, m, tb);

        // Honor a scoped `with_threads` override exactly (tests compare
        // thread counts on small shapes); otherwise cap the ambient worker
        // count so each worker owns enough flops to amortize its spawn.
        let threads = pool::workers_for(n * m * k, MIN_FLOPS_PER_THREAD);
        pool::parallel_rows(out, n, m, MR, threads, &|row0, chunk| {
            gemm_rows(chunk, row0, m, k, a, ta, packed_b, accumulate);
        });
    });
}

/// Computes the row range `[row0, row0 + chunk_rows)` of the product into
/// `chunk` (the corresponding rows of the output buffer).
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    chunk: &mut [f32],
    row0: usize,
    m: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    packed_b: &[f32],
    accumulate: bool,
) {
    let rows = chunk.len() / m;
    let n_panels = m.div_ceil(NR);
    // Scratch for one MR-row packed panel of A, reused across the row range
    // (and across calls on long-lived threads via the arena).
    with_scratch(&PACK_A_SCRATCH, k * MR, |packed_a| {
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            pack_a_panel(packed_a, a, ta, row0 + i, mr, k);
            for pj in 0..n_panels {
                let j0 = pj * NR;
                let nr = NR.min(m - j0);
                let b_panel = &packed_b[pj * k * NR..(pj + 1) * k * NR];
                let acc = microkernel(packed_a, b_panel);
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let orow = &mut chunk[(i + r) * m + j0..(i + r) * m + j0 + nr];
                    if accumulate {
                        for (o, &v) in orow.iter_mut().zip(acc_row) {
                            *o += v;
                        }
                    } else {
                        orow.copy_from_slice(&acc_row[..nr]);
                    }
                }
            }
            i += mr;
        }
    });
}

/// The register-blocked inner loop: `acc[r][c] += a[p][r] * b[p][c]` over
/// the full packed depth. The accumulator tile is a by-value local and the
/// operands are fixed-size array views, so the compiler keeps the tile in
/// registers and vectorizes the explicit 8-wide loop.
#[inline(always)]
fn microkernel(packed_a: &[f32], packed_b: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in packed_a.chunks_exact(MR).zip(packed_b.chunks_exact(NR)) {
        let ap: &[f32; MR] = ap.try_into().expect("MR-sized chunk");
        let bp: &[f32; NR] = bp.try_into().expect("NR-sized chunk");
        for r in 0..MR {
            let av = ap[r];
            for c in 0..NR {
                acc[r][c] += av * bp[c];
            }
        }
    }
    acc
}

/// Packs `mr` rows of `op(A)` starting at logical row `i0` into `dst`:
/// k-major, `MR` interleaved (`dst[p * MR + r] = opA[i0 + r][p]`), rows
/// beyond `mr` zero-padded so the micro-kernel needs no edge cases.
fn pack_a_panel(dst: &mut [f32], a: &[f32], ta: Trans, i0: usize, mr: usize, k: usize) {
    if mr < MR {
        dst.fill(0.0);
    }
    match ta {
        Trans::No => {
            // A stored n × k: row i0+r is contiguous.
            for r in 0..mr {
                let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (p, &v) in arow.iter().enumerate() {
                    dst[p * MR + r] = v;
                }
            }
        }
        Trans::Yes => {
            // A stored k × n: logical row i0+r is column i0+r of storage.
            let n = a.len() / k;
            for (p, dchunk) in dst.chunks_exact_mut(MR).enumerate().take(k) {
                let srow = &a[p * n + i0..p * n + i0 + mr];
                dchunk[..mr].copy_from_slice(srow);
            }
        }
    }
}

/// Packs all of `op(B)` (logical `k × m`) into NR-wide column panels:
/// `packed[panel * k * NR + p * NR + c] = opB[p][panel * NR + c]`, with the
/// last panel zero-padded to `NR` columns. `packed` must arrive zero-filled
/// at `m.div_ceil(NR) * k * NR` elements (the scratch arena guarantees it).
fn pack_b(packed: &mut [f32], b: &[f32], k: usize, m: usize, tb: Trans) {
    debug_assert_eq!(packed.len(), m.div_ceil(NR) * k * NR);
    match tb {
        Trans::No => {
            // B stored k × m: row p contiguous; copy NR-wide slivers.
            for (pj, panel) in packed.chunks_exact_mut(k * NR).enumerate() {
                let j0 = pj * NR;
                let nr = NR.min(m - j0);
                for (p, dchunk) in panel.chunks_exact_mut(NR).enumerate() {
                    dchunk[..nr].copy_from_slice(&b[p * m + j0..p * m + j0 + nr]);
                }
            }
        }
        Trans::Yes => {
            // B stored m × k: logical column j is storage row j, contiguous.
            for (pj, panel) in packed.chunks_exact_mut(k * NR).enumerate() {
                let j0 = pj * NR;
                let nr = NR.min(m - j0);
                for c in 0..nr {
                    let srow = &b[(j0 + c) * k..(j0 + c + 1) * k];
                    for (p, &v) in srow.iter().enumerate() {
                        panel[p * NR + c] = v;
                    }
                }
            }
        }
    }
}

/// Unpacked fallback for tiny products: one accumulator per output element,
/// ascending `k` — the same summation order as the packed path, so the two
/// are bit-identical.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    out: &mut [f32],
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    accumulate: bool,
) {
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0.0f32;
            match (ta, tb) {
                (Trans::No, Trans::No) => {
                    let arow = &a[i * k..(i + 1) * k];
                    for (p, &av) in arow.iter().enumerate() {
                        acc += av * b[p * m + j];
                    }
                }
                (Trans::No, Trans::Yes) => {
                    let arow = &a[i * k..(i + 1) * k];
                    let brow = &b[j * k..(j + 1) * k];
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                }
                (Trans::Yes, Trans::No) => {
                    for p in 0..k {
                        acc += a[p * n + i] * b[p * m + j];
                    }
                }
                (Trans::Yes, Trans::Yes) => {
                    let brow = &b[j * k..(j + 1) * k];
                    for (p, &bv) in brow.iter().enumerate() {
                        acc += a[p * n + i] * bv;
                    }
                }
            }
            if accumulate {
                out[i * m + j] += acc;
            } else {
                out[i * m + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(n: usize, m: usize, k: usize, a: &[f32], ta: Trans, b: &[f32], tb: Trans) -> Vec<f32> {
        let av = |i: usize, p: usize| match ta {
            Trans::No => a[i * k + p],
            Trans::Yes => a[p * n + i],
        };
        let bv = |p: usize, j: usize| match tb {
            Trans::No => b[p * m + j],
            Trans::Yes => b[j * k + p],
        };
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += av(i, p) * bv(p, j);
                }
                out[i * m + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Cheap deterministic pseudo-random values with varied magnitudes.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn packed_path_is_bit_identical_to_naive_for_all_layouts() {
        // Shapes straddle the MR/NR edges and the small-product cutoff.
        for &(n, m, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 3),
            (17, 23, 31),
            (33, 40, 64),
            (64, 64, 64),
        ] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    let a = fill(n * k, (n * 31 + k) as u32);
                    let b = fill(k * m, (k * 17 + m) as u32);
                    let expected = naive(n, m, k, &a, ta, &b, tb);
                    let mut out = vec![0.0f32; n * m];
                    gemm(&mut out, n, m, k, &a, ta, &b, tb, false);
                    assert_eq!(out, expected, "n={n} m={m} k={k} {ta:?} {tb:?}");
                }
            }
        }
    }

    #[test]
    fn accumulate_adds_onto_existing_output() {
        let (n, m, k) = (6, 10, 12);
        let a = fill(n * k, 3);
        let b = fill(k * m, 4);
        let base = fill(n * m, 5);
        let product = naive(n, m, k, &a, Trans::No, &b, Trans::No);
        let mut out = base.clone();
        gemm(&mut out, n, m, k, &a, Trans::No, &b, Trans::No, true);
        for ((&got, &c0), &p) in out.iter().zip(&base).zip(&product) {
            assert_eq!(got, c0 + p);
        }
    }

    #[test]
    fn zero_k_clears_or_preserves() {
        let mut out = vec![1.0f32; 4];
        gemm(&mut out, 2, 2, 0, &[], Trans::No, &[], Trans::No, false);
        assert_eq!(out, vec![0.0; 4]);
        let mut out = vec![1.0f32; 4];
        gemm(&mut out, 2, 2, 0, &[], Trans::No, &[], Trans::No, true);
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn scratch_reuse_across_shapes_is_bit_identical() {
        // Exercise the pack arena: a large product, a differently-shaped
        // smaller one, then the first again — every call must match the
        // naive reference exactly, including the calls that reuse (and
        // re-zero) a previously grown scratch buffer.
        for &(n, m, k) in &[(40, 36, 64), (17, 9, 80), (40, 36, 64), (33, 70, 33)] {
            let a = fill(n * k, (n + k) as u32);
            let b = fill(k * m, (m * 3 + k) as u32);
            let expected = naive(n, m, k, &a, Trans::No, &b, Trans::Yes);
            let mut out = vec![0.0f32; n * m];
            gemm(&mut out, n, m, k, &a, Trans::No, &b, Trans::Yes, false);
            assert_eq!(out, expected, "n={n} m={m} k={k}");
        }
    }

    #[test]
    fn thread_partitioning_is_bit_identical() {
        let (n, m, k) = (37, 29, 41);
        let a = fill(n * k, 7);
        let b = fill(k * m, 8);
        let serial = pool::with_threads(1, || {
            let mut out = vec![0.0f32; n * m];
            gemm(&mut out, n, m, k, &a, Trans::No, &b, Trans::No, false);
            out
        });
        for t in [2, 3, 8] {
            let parallel = pool::with_threads(t, || {
                let mut out = vec![0.0f32; n * m];
                gemm(&mut out, n, m, k, &a, Trans::No, &b, Trans::No, false);
                out
            });
            assert_eq!(serial, parallel, "threads={t}");
        }
    }
}
