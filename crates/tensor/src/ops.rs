//! Element-wise arithmetic, broadcasting helpers and the matrix products.
//!
//! The three matrix products and their fused `C += …` accumulate variants
//! all delegate to the packed, cache-tiled, multi-threaded kernel in
//! [`crate::kernel`]; see that module for the layout and the bit-for-bit
//! determinism contract.

use crate::kernel::{self, Trans};
use crate::Matrix;

impl Matrix {
    /// Element-wise sum of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise quotient.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Matrix {
        self.map(|v| v + s)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Combines two equally-shaped matrices element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Accumulates `other * s` into `self` (axpy), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign_scaled(&mut self, other: &Matrix, s: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_scaled shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b * s;
        }
    }

    /// Accumulates `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// Accumulates `f(x, y)` element-wise into `self` — the fused
    /// `zip_map`-then-accumulate used by the autodiff backward pass.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign_zip_map(&mut self, x: &Matrix, y: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(
            self.shape(),
            x.shape(),
            "add_assign_zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            x.shape()
        );
        assert_eq!(
            self.shape(),
            y.shape(),
            "add_assign_zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            y.shape()
        );
        for ((a, &xv), &yv) in self
            .as_mut_slice()
            .iter_mut()
            .zip(x.as_slice())
            .zip(y.as_slice())
        {
            *a += f(xv, yv);
        }
    }

    /// Accumulates `f(x, y, z)` element-wise into `self` (three-operand
    /// variant of [`Matrix::add_assign_zip_map`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign_zip3_map(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        z: &Matrix,
        f: impl Fn(f32, f32, f32) -> f32,
    ) {
        assert_eq!(
            self.shape(),
            x.shape(),
            "add_assign_zip3_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            x.shape()
        );
        assert_eq!(x.shape(), y.shape(), "add_assign_zip3_map operand mismatch");
        assert_eq!(x.shape(), z.shape(), "add_assign_zip3_map operand mismatch");
        for (((a, &xv), &yv), &zv) in self
            .as_mut_slice()
            .iter_mut()
            .zip(x.as_slice())
            .zip(y.as_slice())
            .zip(z.as_slice())
        {
            *a += f(xv, yv, zv);
        }
    }

    /// Adds the `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a + b)
    }

    /// Subtracts the `1 × cols` row vector from every row.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn sub_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a - b)
    }

    /// Multiplies every row element-wise by the `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a * b)
    }

    /// Divides every row element-wise by the `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn div_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a / b)
    }

    fn broadcast_row(&self, row: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            row.rows(),
            1,
            "broadcast operand must be a row vector, got {:?}",
            row.shape()
        );
        assert_eq!(
            self.cols(),
            row.cols(),
            "broadcast column mismatch: {} vs {}",
            self.cols(),
            row.cols()
        );
        let mut out = self.clone();
        let rv = row.as_slice();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = f(*v, rv[c]);
            }
        }
        out
    }

    /// Matrix product `self · other` via the packed, cache-tiled,
    /// multi-threaded kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        kernel::gemm(
            out.as_mut_slice(),
            n,
            m,
            k,
            self.as_slice(),
            Trans::No,
            other.as_slice(),
            Trans::No,
            false,
        );
        out
    }

    /// `selfᵀ · other` without materializing the transpose (it is absorbed
    /// while packing the operand).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn shape mismatch: {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        kernel::gemm(
            out.as_mut_slice(),
            n,
            m,
            k,
            self.as_slice(),
            Trans::Yes,
            other.as_slice(),
            Trans::No,
            false,
        );
        out
    }

    /// `self · otherᵀ` without materializing the transpose (it is absorbed
    /// while packing the operand).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt shape mismatch: {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(n, m);
        kernel::gemm(
            out.as_mut_slice(),
            n,
            m,
            k,
            self.as_slice(),
            Trans::No,
            other.as_slice(),
            Trans::Yes,
            false,
        );
        out
    }

    /// Fused matmul-accumulate `self += a · b`, writing directly into this
    /// matrix (the gradient-accumulation hot path of the autodiff tape).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_acc(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.cols(),
            b.rows(),
            "matmul_acc shape mismatch: {:?} · {:?}",
            a.shape(),
            b.shape()
        );
        assert_eq!(
            self.shape(),
            (a.rows(), b.cols()),
            "matmul_acc output mismatch: {:?} += {:?} · {:?}",
            self.shape(),
            a.shape(),
            b.shape()
        );
        let (n, k, m) = (a.rows(), a.cols(), b.cols());
        kernel::gemm(
            self.as_mut_slice(),
            n,
            m,
            k,
            a.as_slice(),
            Trans::No,
            b.as_slice(),
            Trans::No,
            true,
        );
    }

    /// Fused matmul-accumulate `self += aᵀ · b`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_tn_acc(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_tn_acc shape mismatch: {:?}ᵀ · {:?}",
            a.shape(),
            b.shape()
        );
        assert_eq!(
            self.shape(),
            (a.cols(), b.cols()),
            "matmul_tn_acc output mismatch: {:?} += {:?}ᵀ · {:?}",
            self.shape(),
            a.shape(),
            b.shape()
        );
        let (k, n, m) = (a.rows(), a.cols(), b.cols());
        kernel::gemm(
            self.as_mut_slice(),
            n,
            m,
            k,
            a.as_slice(),
            Trans::Yes,
            b.as_slice(),
            Trans::No,
            true,
        );
    }

    /// Fused matmul-accumulate `self += a · bᵀ`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_nt_acc(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_nt_acc shape mismatch: {:?} · {:?}ᵀ",
            a.shape(),
            b.shape()
        );
        assert_eq!(
            self.shape(),
            (a.rows(), b.rows()),
            "matmul_nt_acc output mismatch: {:?} += {:?} · {:?}ᵀ",
            self.shape(),
            a.shape(),
            b.shape()
        );
        let (n, k, m) = (a.rows(), a.cols(), b.rows());
        kernel::gemm(
            self.as_mut_slice(),
            n,
            m,
            k,
            a.as_slice(),
            Trans::No,
            b.as_slice(),
            Trans::Yes,
            true,
        );
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_values(&self, lo: f32, hi: f32) -> Matrix {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(a.add(&b), Matrix::full(2, 2, 5.0));
        assert_eq!(a.sub(&a), Matrix::zeros(2, 2));
        assert_eq!(a.mul(&b)[(0, 0)], 4.0);
        assert_eq!(a.div(&a), Matrix::ones(2, 2));
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
        assert_eq!(a.add_scalar(1.0)[(0, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m22(1.0, 1.0, 1.0, 1.0);
        a.add_assign_scaled(&m22(1.0, 2.0, 3.0, 4.0), 0.5);
        assert_eq!(a, m22(1.5, 2.0, 2.5, 3.0));
    }

    #[test]
    fn broadcast_row_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let r = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&r), m22(11.0, 22.0, 13.0, 24.0));
        assert_eq!(a.sub_row_broadcast(&r), m22(-9.0, -18.0, -7.0, -16.0));
        assert_eq!(a.mul_row_broadcast(&r), m22(10.0, 40.0, 30.0, 80.0));
        assert_eq!(a.div_row_broadcast(&r), m22(0.1, 0.1, 0.3, 0.2));
    }

    #[test]
    #[should_panic(expected = "row vector")]
    fn broadcast_requires_row_vector() {
        let _ = Matrix::zeros(2, 2).add_row_broadcast(&Matrix::zeros(2, 2));
    }

    #[test]
    fn matmul_against_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::eye(4)), a);
        assert_eq!(Matrix::eye(4).matmul(&a), a);
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-5));
        }

        let c = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let nt = a.matmul_nt(&c);
        let explicit = a.matmul(&c.transpose());
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-5));
        }
    }

    #[test]
    fn fused_accumulate_products_match_compose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.5 - 1.5);
        let base = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);

        let mut acc = base.clone();
        acc.matmul_acc(&a, &b);
        assert_eq!(acc, base.add(&a.matmul(&b)));

        let x = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32 * 0.1);
        let mut acc2 = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let expected2 = acc2.add(&a.matmul_tn(&x));
        acc2.matmul_tn_acc(&a, &x);
        assert_eq!(acc2, expected2);

        let y = Matrix::from_fn(5, 4, |r, c| (r * 4 + c) as f32 * 0.2);
        let mut acc3 = Matrix::ones(3, 5);
        acc3.matmul_nt_acc(&a, &y);
        assert_eq!(acc3, Matrix::ones(3, 5).add(&a.matmul_nt(&y)));
    }

    #[test]
    fn zeros_in_operands_match_dense_summation() {
        // The old kernels skipped `a == 0.0` terms; the shared kernel must
        // treat zeros exactly like any other value (same summation order as
        // a dense dot product).
        let a = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0]]);
        let b = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 7.0], &[2.0, 0.0]]);
        assert_eq!(
            a.matmul(&b),
            Matrix::from_rows(&[&[0.0, 14.0], &[11.0, 0.0]])
        );
        // 0 · inf must produce NaN (IEEE semantics), not be skipped.
        let inf = Matrix::from_rows(&[&[f32::INFINITY], &[1.0], &[1.0]]);
        let z = Matrix::from_rows(&[&[0.0, 1.0, 1.0]]);
        assert!(z.matmul(&inf)[(0, 0)].is_nan());
    }

    #[test]
    fn in_place_elementwise_variants() {
        let mut m = Matrix::row_vector(&[1.0, 2.0]);
        m.add_assign(&Matrix::row_vector(&[0.5, -0.5]));
        assert_eq!(m.as_slice(), &[1.5, 1.5]);
        m.scale_inplace(2.0);
        assert_eq!(m.as_slice(), &[3.0, 3.0]);
        m.add_assign_zip_map(
            &Matrix::row_vector(&[1.0, 1.0]),
            &Matrix::row_vector(&[2.0, 3.0]),
            |a, b| a * b,
        );
        assert_eq!(m.as_slice(), &[5.0, 6.0]);
        m.add_assign_zip3_map(
            &Matrix::row_vector(&[1.0, 1.0]),
            &Matrix::row_vector(&[2.0, 2.0]),
            &Matrix::row_vector(&[4.0, 2.0]),
            |a, b, c| -((a * b) / c),
        );
        assert_eq!(m.as_slice(), &[4.5, 5.0]);
    }

    #[test]
    fn clamp_limits() {
        let a = Matrix::row_vector(&[-2.0, 0.5, 9.0]);
        assert_eq!(a.clamp_values(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut a = Matrix::row_vector(&[1.0, -2.0]);
        a.map_inplace(f32::abs);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
    }
}
