//! Element-wise arithmetic, broadcasting helpers and the matrix product.

use crate::Matrix;

impl Matrix {
    /// Element-wise sum of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise quotient.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Matrix {
        self.map(|v| v + s)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Combines two equally-shaped matrices element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Accumulates `other * s` into `self` (axpy), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign_scaled(&mut self, other: &Matrix, s: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_scaled shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b * s;
        }
    }

    /// Adds the `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a + b)
    }

    /// Subtracts the `1 × cols` row vector from every row.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn sub_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a - b)
    }

    /// Multiplies every row element-wise by the `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a * b)
    }

    /// Divides every row element-wise by the `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or column counts differ.
    pub fn div_row_broadcast(&self, row: &Matrix) -> Matrix {
        self.broadcast_row(row, |a, b| a / b)
    }

    fn broadcast_row(&self, row: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            row.rows(),
            1,
            "broadcast operand must be a row vector, got {:?}",
            row.shape()
        );
        assert_eq!(
            self.cols(),
            row.cols(),
            "broadcast column mismatch: {} vs {}",
            self.cols(),
            row.cols()
        );
        let mut out = self.clone();
        let rv = row.as_slice();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = f(*v, rv[c]);
            }
        }
        out
    }

    /// Matrix product `self · other` using a cache-blocked i-k-j loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        let a = self.as_slice();
        let b = other.as_slice();
        const BLOCK: usize = 64;
        for kk in (0..k).step_by(BLOCK) {
            let k_end = (kk + BLOCK).min(k);
            for i in 0..n {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out.as_mut_slice()[i * m..(i + 1) * m];
                for p in kk..k_end {
                    let av = arow[p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * m..(p + 1) * m];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn shape mismatch: {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        for p in 0..k {
            let arow = self.row(p);
            let brow = other.row(p);
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out.as_mut_slice()[i * m..(i + 1) * m];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt shape mismatch: {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (n, m) = (self.rows(), other.rows());
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let arow = self.row(i);
            for j in 0..m {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_values(&self, lo: f32, hi: f32) -> Matrix {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(a.add(&b), Matrix::full(2, 2, 5.0));
        assert_eq!(a.sub(&a), Matrix::zeros(2, 2));
        assert_eq!(a.mul(&b)[(0, 0)], 4.0);
        assert_eq!(a.div(&a), Matrix::ones(2, 2));
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
        assert_eq!(a.add_scalar(1.0)[(0, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m22(1.0, 1.0, 1.0, 1.0);
        a.add_assign_scaled(&m22(1.0, 2.0, 3.0, 4.0), 0.5);
        assert_eq!(a, m22(1.5, 2.0, 2.5, 3.0));
    }

    #[test]
    fn broadcast_row_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let r = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&r), m22(11.0, 22.0, 13.0, 24.0));
        assert_eq!(a.sub_row_broadcast(&r), m22(-9.0, -18.0, -7.0, -16.0));
        assert_eq!(a.mul_row_broadcast(&r), m22(10.0, 40.0, 30.0, 80.0));
        assert_eq!(a.div_row_broadcast(&r), m22(0.1, 0.1, 0.3, 0.2));
    }

    #[test]
    #[should_panic(expected = "row vector")]
    fn broadcast_requires_row_vector() {
        let _ = Matrix::zeros(2, 2).add_row_broadcast(&Matrix::zeros(2, 2));
    }

    #[test]
    fn matmul_against_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::eye(4)), a);
        assert_eq!(Matrix::eye(4).matmul(&a), a);
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-5));
        }

        let c = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let nt = a.matmul_nt(&c);
        let explicit = a.matmul(&c.transpose());
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-5));
        }
    }

    #[test]
    fn clamp_limits() {
        let a = Matrix::row_vector(&[-2.0, 0.5, 9.0]);
        assert_eq!(a.clamp_values(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut a = Matrix::row_vector(&[1.0, -2.0]);
        a.map_inplace(f32::abs);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
    }
}
