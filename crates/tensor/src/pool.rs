//! Row-range parallelism for the kernel layer.
//!
//! Work is split over contiguous, disjoint ranges of output rows and run on
//! `crossbeam`-scoped worker threads. Because every worker owns its own
//! slice of the output buffer and per-element summation order is fixed by
//! the kernel (see [`crate::kernel`]), results are bit-identical for every
//! thread count.
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`with_threads`] (a scoped override, used by tests and benchmarks);
//! 2. the `KINET_THREADS` environment variable (read once per process);
//! 3. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::OnceLock;

/// `KINET_THREADS`, or available parallelism when unset/unparsable.
fn env_threads() -> usize {
    static ENV_THREADS: OnceLock<usize> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("KINET_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count the kernel layer will use on this thread.
pub fn num_threads() -> usize {
    THREAD_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(env_threads)
        .max(1)
}

/// The active [`with_threads`] override, if any. The kernel honors an
/// explicit override verbatim but applies a work-size threshold to the
/// ambient default, so small products never pay thread-spawn overhead.
pub(crate) fn thread_override() -> Option<usize> {
    THREAD_OVERRIDE.with(Cell::get).map(|n| n.max(1))
}

/// The worker count for a job of `work_items` units where spawning a
/// worker is only worth it per `min_per_worker` units: a scoped
/// [`with_threads`] override verbatim, otherwise the ambient count capped
/// by the work-size threshold. This is the single knob-consuming entry
/// point for callers outside this module (the thread-knob lint confines
/// `num_threads`/`KINET_THREADS` here and to the fleet scheduler).
pub fn workers_for(work_items: usize, min_per_worker: usize) -> usize {
    thread_override()
        .unwrap_or_else(|| num_threads().min((work_items / min_per_worker.max(1)).max(1)))
        .max(1)
}

/// Runs `f` with the kernel worker count pinned to `n` on this thread,
/// restoring the previous setting afterwards (also on panic).
///
/// Primarily for tests and benchmarks that compare thread counts within one
/// process; production code should use the `KINET_THREADS` environment
/// variable instead.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Counts the indices in `0..len` satisfying `pred`, splitting the range
/// into contiguous chunks run on the kernel worker pool.
///
/// `min_per_thread` bounds the fan-out: no worker is spawned for fewer than
/// that many indices (spawn overhead would dominate), except under a scoped
/// [`with_threads`] override, which is honored verbatim. The result is
/// deterministic for every thread count: integer addition of disjoint
/// per-range counts is order-independent.
pub fn parallel_count(
    len: usize,
    min_per_thread: usize,
    pred: &(dyn Fn(usize) -> bool + Sync),
) -> usize {
    let threads = thread_override()
        .unwrap_or_else(|| num_threads().min(len / min_per_thread.max(1)).max(1))
        .clamp(1, len.max(1));
    if threads <= 1 {
        return (0..len).filter(|&i| pred(i)).count();
    }
    let per = len.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * per).min(len);
                let hi = ((t + 1) * per).min(len);
                s.spawn(move |_| (lo..hi).filter(|&i| pred(i)).count())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count worker panicked"))
            .sum()
    })
    .expect("count worker scope failed")
}

/// Splits `out` (row-major, `rows × cols`) into contiguous chunks whose row
/// counts are multiples of `align` and applies `work(first_row, chunk)` to
/// each — on scoped worker threads when more than one chunk is useful.
///
/// Chunks are disjoint `&mut` slices, so workers never share output memory;
/// `work` must produce each row independently of the partitioning for the
/// bit-for-bit determinism contract to hold (the GEMM row loop does).
pub(crate) fn parallel_rows(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    align: usize,
    threads: usize,
    work: &(dyn Fn(usize, &mut [f32]) + Sync),
) {
    debug_assert_eq!(out.len(), rows * cols);
    let align = align.max(1);
    let max_chunks = rows.div_ceil(align);
    let threads = threads.clamp(1, max_chunks.max(1));
    if threads == 1 || rows == 0 {
        work(0, out);
        return;
    }
    // Rows per worker, rounded up to the alignment so packed panels never
    // straddle a chunk boundary.
    let rows_per = rows.div_ceil(threads).div_ceil(align) * align;
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for (idx, chunk) in out.chunks_mut(rows_per * cols).enumerate() {
            let first_row = idx * rows_per;
            handles.push(s.spawn(move |_| work(first_row, chunk)));
        }
        for h in handles {
            h.join().expect("kernel worker panicked");
        }
    })
    .expect("kernel worker scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_scopes_and_restores() {
        let ambient = num_threads();
        let inner = with_threads(3, || {
            let nested = with_threads(5, num_threads);
            assert_eq!(nested, 5);
            num_threads()
        });
        assert_eq!(inner, 3);
        assert_eq!(num_threads(), ambient);
    }

    #[test]
    fn partitions_cover_all_rows_exactly_once() {
        let (rows, cols) = (23, 4);
        let mut out = vec![0.0f32; rows * cols];
        parallel_rows(&mut out, rows, cols, 4, 3, &|first_row, chunk| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + r) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(out[r * cols + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn parallel_count_matches_serial_for_any_thread_count() {
        let pred = |i: usize| i.is_multiple_of(3);
        let expected = (0..1000).filter(|&i| pred(i)).count();
        for t in [1, 2, 3, 7] {
            let got = with_threads(t, || parallel_count(1000, 1, &pred));
            assert_eq!(got, expected, "threads={t}");
        }
        assert_eq!(parallel_count(0, 1, &pred), 0);
    }

    #[test]
    fn single_row_runs_serially() {
        let mut out = vec![0.0f32; 8];
        parallel_rows(&mut out, 1, 8, 4, 16, &|first_row, chunk| {
            assert_eq!(first_row, 0);
            chunk.fill(1.0);
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }
}
