//! Reductions, per-axis statistics and argmax helpers.

use crate::Matrix;

impl Matrix {
    /// Sum of all elements (0.0 for the empty matrix).
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics on the empty matrix.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty matrix");
        self.sum() / self.len() as f32
    }

    /// Population variance of all elements.
    ///
    /// # Panics
    ///
    /// Panics on the empty matrix.
    pub fn variance(&self) -> f32 {
        let mu = self.mean();
        self.as_slice()
            .iter()
            .map(|v| (v - mu) * (v - mu))
            .sum::<f32>()
            / self.len() as f32
    }

    /// Largest element (`-inf` for the empty matrix).
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (`inf` for the empty matrix).
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Column-wise sums as a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (c, &v) in self.row(r).iter().enumerate() {
                out[(0, c)] += v;
            }
        }
        out
    }

    /// Column-wise means as a `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics when the matrix has zero rows.
    pub fn mean_rows(&self) -> Matrix {
        assert!(self.rows() > 0, "mean_rows of matrix with zero rows");
        self.sum_rows().scale(1.0 / self.rows() as f32)
    }

    /// Column-wise population variances as a `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics when the matrix has zero rows.
    pub fn var_rows(&self) -> Matrix {
        let mu = self.mean_rows();
        let centered = self.sub_row_broadcast(&mu);
        centered.mul(&centered).mean_rows()
    }

    /// Row-wise sums as an `rows × 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            out[(r, 0)] = self.row(r).iter().sum();
        }
        out
    }

    /// Index of the largest element in each row.
    ///
    /// Ties resolve to the first maximum, matching `Iterator::max_by` on
    /// reversed comparison order.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm (`sqrt` of sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Standardizes columns to zero mean / unit variance; constant columns
    /// become all-zero. Returns `(standardized, means, stds)`.
    ///
    /// # Panics
    ///
    /// Panics when the matrix has zero rows.
    pub fn standardize_columns(&self) -> (Matrix, Matrix, Matrix) {
        let mu = self.mean_rows();
        let sd = self.var_rows().map(|v| {
            let s = v.sqrt();
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        });
        (self.sub_row_broadcast(&mu).div_row_broadcast(&sd), mu, sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn global_reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert!(approx_eq(m.variance(), 1.25, 1e-6));
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
    }

    #[test]
    fn axis_reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.mean_rows().as_slice(), &[2.0, 3.0]);
        assert_eq!(m.sum_cols().column(0), vec![3.0, 7.0]);
        assert_eq!(m.var_rows().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn argmax_first_tie() {
        let m = Matrix::from_rows(&[&[0.0, 5.0, 5.0], &[9.0, 1.0, 2.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!(approx_eq(m.frobenius_norm(), 5.0, 1e-6));
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 10.0], &[3.0, 10.0]]);
        let (z, mu, sd) = m.standardize_columns();
        assert!(approx_eq(z.mean_rows()[(0, 0)], 0.0, 1e-6));
        assert!(approx_eq(z.var_rows()[(0, 0)], 1.0, 1e-5));
        // constant column stays finite
        assert_eq!(z.column(1), vec![0.0, 0.0, 0.0]);
        assert_eq!(mu[(0, 1)], 10.0);
        assert_eq!(sd[(0, 1)], 1.0);
    }
}
