//! The core [`Matrix`] type: construction, access and structural operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the single numeric container used throughout the KiNETGAN
/// workspace: network activations, gradients, encoded tabular batches and
/// metric histograms are all matrices. Vectors are represented as `1 × n`
/// (row) or `n × 1` (column) matrices.
///
/// # Panics
///
/// Like `ndarray` and friends, shape mismatches are programming errors and
/// panic with a descriptive message rather than returning a `Result`; all
/// panicking methods document this in their own `# Panics` section.
///
/// ```
/// use kinet_tensor::Matrix;
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// ```
    /// use kinet_tensor::Matrix;
    /// assert_eq!(Matrix::zeros(2, 2).sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot be a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds for {} columns",
            self.cols
        );
        // kinet-lint: allow(transitive-allocation) — column copy-out is a cold accessor; on the pipeline hot cone only via a name-collision method edge; runs once at fit time
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Checked element access; `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Reshapes into `rows × cols` without copying element order.
    ///
    /// # Panics
    ///
    /// Panics if the element count differs.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            self.data.len(),
            rows * cols,
            "cannot reshape {}x{} into {rows}x{cols}",
            self.rows,
            self.cols
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Stacks `mats` vertically (all must share the column count).
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or column counts differ.
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack of zero matrices");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch: {} vs {cols}", m.cols);
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Stacks `mats` horizontally (all must share the row count).
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or row counts differ.
    pub fn hstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "hstack of zero matrices");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for m in mats {
            assert_eq!(m.rows, rows, "hstack row mismatch: {} vs {rows}", m.rows);
            for r in 0..rows {
                out.row_mut(r)[offset..offset + m.cols].copy_from_slice(m.row(r));
            }
            offset += m.cols;
        }
        out
    }

    /// Copies the column range `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "invalid column slice {start}..{end}"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Copies the row range `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "invalid row slice {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows (duplicates allowed) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Gathers the given rows into `out`, resizing it to
    /// `indices.len() × self.cols()`. The reusable-buffer counterpart of
    /// [`Matrix::select_rows`] for per-batch gathers in training loops:
    /// no allocation once `out` has capacity, and large gathers fan out
    /// over the kernel worker pool (each output row is an independent
    /// copy, so the result is identical for every thread count).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert!(
            indices.iter().all(|&i| i < self.rows),
            "gather index out of bounds for {} rows",
            self.rows
        );
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.resize(indices.len() * self.cols, 0.0);
        if out.data.is_empty() {
            return;
        }
        // Copy-bound work: only fan out when each worker moves enough bytes
        // to amortize its spawn.
        const MIN_ELEMS_PER_THREAD: usize = 64 * 1024;
        let threads = crate::pool::workers_for(out.data.len(), MIN_ELEMS_PER_THREAD);
        let cols = self.cols;
        crate::pool::parallel_rows(
            &mut out.data,
            indices.len(),
            cols,
            1,
            threads,
            &|first_row, chunk| {
                for (r, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                    let src = indices[first_row + r];
                    orow.copy_from_slice(&self.data[src * cols..(src + 1) * cols]);
                }
            },
        );
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.4}", self[(r, c)])?;
            }
            if self.cols > 12 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Matrix {
    /// The `0 × 0` empty matrix.
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(1, 4).sum(), 4.0);
        assert_eq!(Matrix::full(2, 2, 7.0)[(1, 1)], 7.0);
        let e = Matrix::eye(3);
        assert_eq!(e[(0, 0)], 1.0);
        assert_eq!(e[(0, 1)], 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn from_fn_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "cannot be a")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_column_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
        assert_eq!(m.get(5, 0), None);
        assert_eq!(m.get(1, 1), Some(4.0));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn stack_and_slice() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.slice_cols(1, 3).row(0), &[2.0, 3.0]);
        assert_eq!(v.slice_rows(1, 2).row(0), &[3.0, 4.0]);
    }

    #[test]
    fn select_rows_gathers_duplicates() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = m.select_rows(&[2, 0, 2]);
        assert_eq!(g.column(0), vec![3.0, 1.0, 3.0]);
    }

    #[test]
    fn gather_rows_into_matches_select_rows_and_reuses_buffer() {
        let m = Matrix::from_fn(37, 5, |r, c| (r * 10 + c) as f32);
        let idx: Vec<usize> = (0..64).map(|i| (i * 7) % 37).collect();
        let mut buf = Matrix::default();
        m.gather_rows_into(&idx, &mut buf);
        assert_eq!(buf, m.select_rows(&idx));
        // Reuse with a smaller gather, then under a thread override.
        m.gather_rows_into(&[3, 3, 0], &mut buf);
        assert_eq!(buf, m.select_rows(&[3, 3, 0]));
        let parallel = crate::pool::with_threads(3, || {
            let mut b = Matrix::default();
            m.gather_rows_into(&idx, &mut b);
            b
        });
        assert_eq!(parallel, m.select_rows(&idx));
        m.gather_rows_into(&[], &mut buf);
        assert_eq!(buf.rows(), 0);
    }

    #[test]
    fn reshape_preserves_order() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = m.reshape(3, 2);
        assert_eq!(r[(2, 1)], 5.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f32::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn debug_not_empty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }
}
