//! The static metrics registry: monotonic counters, max-gauges, and
//! fixed-bucket histograms over relaxed atomics.
//!
//! Every instrument is a `static` registered in the fixed tables at the
//! bottom of this module; [`metrics_snapshot`] walks the tables in
//! declaration order, so the serialized snapshot bytes are stable.
//! Counter sums, maxima, and bucket tallies are order-independent, so
//! the snapshot is identical for any `KINET_THREADS` value. All update
//! paths are gated on the session switch and touch no heap — safe to
//! call from the hotlist-patrolled serving loop.

use crate::enabled;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic counter.
pub struct Counter {
    name: &'static str,
    cell: AtomicU64,
}

impl Counter {
    /// Const constructor, for `static` registration.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: AtomicU64::new(0),
        }
    }

    /// Adds `n` (no-op outside a session).
    #[inline]
    pub fn incr(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn current_value(&self) -> u64 {
        AtomicU64::load(&self.cell, Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A gauge that keeps the maximum observed value (cross-thread safe:
/// `fetch_max` commutes, so the result is schedule-independent).
pub struct MaxGauge {
    name: &'static str,
    cell: AtomicU64,
}

impl MaxGauge {
    /// Const constructor, for `static` registration.
    pub const fn new(name: &'static str) -> MaxGauge {
        MaxGauge {
            name,
            cell: AtomicU64::new(0),
        }
    }

    /// Raises the gauge to `v` if larger (no-op outside a session).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if enabled() {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current maximum.
    pub fn current_value(&self) -> u64 {
        AtomicU64::load(&self.cell, Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// Fixed bucket-slot count; a histogram's bound slice may be shorter.
pub const HIST_BUCKETS: usize = 12;

/// A fixed-bucket histogram with static bounds. Bucket `i` counts
/// observations `v <= bounds[i]` (first match); larger values land in
/// the overflow bucket, whose quantile reports the maximum seen.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    buckets: [AtomicU64; HIST_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max_seen: AtomicU64,
}

impl Histogram {
    /// Const constructor, for `static` registration. At most
    /// [`HIST_BUCKETS`] bounds are used.
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Histogram {
        Histogram {
            name,
            bounds,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max_seen: AtomicU64::new(0),
        }
    }

    /// Records one observation in virtual ticks (no-op outside a
    /// session). Allocation- and panic-free: bucket selection walks
    /// the zipped bound/bucket pair, never indexes.
    #[inline]
    pub fn observe_ticks(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max_seen.fetch_max(v, Ordering::Relaxed);
        for (bound, cell) in self.bounds.iter().zip(self.buckets.iter()) {
            if v <= *bound {
                cell.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn observed_count(&self) -> u64 {
        AtomicU64::load(&self.count, Ordering::Relaxed)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`0.0 < q <= 1.0`); the overflow bucket reports the maximum
    /// observed value. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = AtomicU64::load(&self.count, Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (bound, cell) in self.bounds.iter().zip(self.buckets.iter()) {
            cum = cum.saturating_add(AtomicU64::load(cell, Ordering::Relaxed));
            if cum >= rank {
                return *bound;
            }
        }
        AtomicU64::load(&self.max_seen, Ordering::Relaxed)
    }

    fn reset(&self) {
        for cell in self.buckets.iter() {
            cell.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max_seen.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// The registry. Declaration order here is serialization order.
// ---------------------------------------------------------------------

/// Rows answered through `ServingModel::score_rows`.
pub static SERVING_ROWS_SCORED: Counter = Counter::new("serving.rows_scored");
/// Flow batches answered by the resident serving handle.
pub static SERVING_BATCHES: Counter = Counter::new("serving.batches");
/// Device attempts retried under the recovery loop.
pub static FLEET_RETRIES: Counter = Counter::new("fleet.retries");
/// Device shares quarantined at aggregation.
pub static FLEET_QUARANTINES: Counter = Counter::new("fleet.quarantines");
/// Virtual ticks spent in the acquire phase, summed over rounds.
pub static FLEET_ACQUIRE_TICKS: Counter = Counter::new("fleet.acquire_ticks");
/// Virtual ticks spent in the union phase, summed over rounds.
pub static FLEET_UNION_TICKS: Counter = Counter::new("fleet.union_ticks");
/// Virtual ticks spent in the prepare phase, summed over rounds.
pub static FLEET_PREPARE_TICKS: Counter = Counter::new("fleet.prepare_ticks");
/// Rounds that committed a new generation.
pub static SERVICE_ROUNDS_COMMITTED: Counter = Counter::new("service.rounds_committed");
/// Rounds aborted by the watchdog.
pub static SERVICE_ROUNDS_ABORTED: Counter = Counter::new("service.rounds_aborted");
/// Rounds that failed and were served through degraded mode.
pub static SERVICE_ROUNDS_FAILED: Counter = Counter::new("service.rounds_failed");
/// Snapshot payload bytes durably written.
pub static SNAPSHOT_BYTES_WRITTEN: Counter = Counter::new("storage.snapshot_bytes_written");
/// Snapshot records rejected during recovery scans.
pub static SNAPSHOT_RECORDS_REJECTED: Counter = Counter::new("storage.snapshot_records_rejected");
/// Stream chunks decoded.
pub static DATA_CHUNKS_DECODED: Counter = Counter::new("data.chunks_decoded");

/// Peak decoded rows resident at once in the streaming layer.
pub static DATA_PEAK_DECODED_ROWS: MaxGauge = MaxGauge::new("data.peak_decoded_rows");

static SERVING_TICK_BOUNDS: [u64; HIST_BUCKETS] =
    [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];
/// `score_rows` batch latency in virtual ticks (synthetic cost model,
/// see [`crate::serving_cost_ticks`]).
pub static SERVING_BATCH_TICKS: Histogram =
    Histogram::new("serving.batch_ticks", &SERVING_TICK_BOUNDS);

static COUNTERS: [&Counter; 13] = [
    &SERVING_ROWS_SCORED,
    &SERVING_BATCHES,
    &FLEET_RETRIES,
    &FLEET_QUARANTINES,
    &FLEET_ACQUIRE_TICKS,
    &FLEET_UNION_TICKS,
    &FLEET_PREPARE_TICKS,
    &SERVICE_ROUNDS_COMMITTED,
    &SERVICE_ROUNDS_ABORTED,
    &SERVICE_ROUNDS_FAILED,
    &SNAPSHOT_BYTES_WRITTEN,
    &SNAPSHOT_RECORDS_REJECTED,
    &DATA_CHUNKS_DECODED,
];
static GAUGES: [&MaxGauge; 1] = [&DATA_PEAK_DECODED_ROWS];
static HISTOGRAMS: [&Histogram; 1] = [&SERVING_BATCH_TICKS];

/// One scalar instrument in a snapshot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalarSnap {
    /// Registered metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram in a snapshot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistogramSnap {
    /// Registered metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Maximum observation.
    pub max: u64,
    /// Median bucket bound.
    pub p50: u64,
    /// 95th-percentile bucket bound.
    pub p95: u64,
    /// 99th-percentile bucket bound.
    pub p99: u64,
}

/// The full registry, serialized in declaration order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters.
    pub counters: Vec<ScalarSnap>,
    /// Max-gauges.
    pub gauges: Vec<ScalarSnap>,
    /// Histograms with derived quantiles.
    pub histograms: Vec<HistogramSnap>,
}

/// Reads every registered instrument, in registry order.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut counters = Vec::with_capacity(COUNTERS.len());
    for c in COUNTERS.iter() {
        counters.push(ScalarSnap {
            name: c.name.to_string(),
            value: c.current_value(),
        });
    }
    let mut gauges = Vec::with_capacity(GAUGES.len());
    for g in GAUGES.iter() {
        gauges.push(ScalarSnap {
            name: g.name.to_string(),
            value: g.current_value(),
        });
    }
    let mut histograms = Vec::with_capacity(HISTOGRAMS.len());
    for h in HISTOGRAMS.iter() {
        histograms.push(HistogramSnap {
            name: h.name.to_string(),
            count: AtomicU64::load(&h.count, Ordering::Relaxed),
            sum: AtomicU64::load(&h.sum, Ordering::Relaxed),
            max: AtomicU64::load(&h.max_seen, Ordering::Relaxed),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        });
    }
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered instrument (session start/finish).
pub(crate) fn reset_metrics() {
    for c in COUNTERS.iter() {
        c.reset();
    }
    for g in GAUGES.iter() {
        g.reset();
    }
    for h in HISTOGRAMS.iter() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsConfig;

    #[test]
    fn instruments_are_inert_outside_a_session() {
        SERVING_ROWS_SCORED.incr(10);
        DATA_PEAK_DECODED_ROWS.record_max(99);
        SERVING_BATCH_TICKS.observe_ticks(100);
        assert_eq!(SERVING_ROWS_SCORED.current_value(), 0);
        assert_eq!(DATA_PEAK_DECODED_ROWS.current_value(), 0);
        assert_eq!(SERVING_BATCH_TICKS.observed_count(), 0);
    }

    #[test]
    fn histogram_quantiles_walk_the_buckets() {
        let session = crate::start(ObsConfig::default());
        // 90 fast observations in the <=8 bucket, 10 at <=1024.
        for _ in 0..90 {
            SERVING_BATCH_TICKS.observe_ticks(3);
        }
        for _ in 0..10 {
            SERVING_BATCH_TICKS.observe_ticks(700);
        }
        assert_eq!(SERVING_BATCH_TICKS.quantile(0.50), 8);
        assert_eq!(SERVING_BATCH_TICKS.quantile(0.95), 1024);
        assert_eq!(SERVING_BATCH_TICKS.quantile(0.99), 1024);
        let snap = metrics_snapshot();
        let hist = &snap.histograms[0];
        assert_eq!(hist.count, 100);
        assert_eq!(hist.max, 700);
        drop(session.finish());
        assert_eq!(SERVING_BATCH_TICKS.observed_count(), 0, "finish resets");
    }

    #[test]
    fn overflow_quantile_reports_the_observed_max() {
        let session = crate::start(ObsConfig::default());
        SERVING_BATCH_TICKS.observe_ticks(1_000_000);
        assert_eq!(SERVING_BATCH_TICKS.quantile(0.99), 1_000_000);
        drop(session.finish());
    }

    #[test]
    fn snapshot_round_trips_and_orders_by_registry() {
        let session = crate::start(ObsConfig::default());
        FLEET_RETRIES.incr(3);
        let snap = session.finish().metrics;
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters.len(), COUNTERS.len());
        assert_eq!(back.counters[0].name, "serving.rows_scored");
        let retries = back
            .counters
            .iter()
            .find(|c| c.name == "fleet.retries")
            .unwrap();
        assert_eq!(retries.value, 3);
    }
}
