//! Session lifecycle: exclusive start/finish around an instrumented
//! run.
//!
//! Instrumented library code never starts a session — gates, benches,
//! and tests do, so the library's default cost is one relaxed load per
//! instrumentation site. A session holds a global lock for its whole
//! lifetime: concurrent `cargo test` threads serialize instead of
//! interleaving their captures.

use crate::journal::{lock_poison_free, merge_records, EPOCH, SEQS, SINK};
use crate::metrics::{metrics_snapshot, reset_metrics, MetricsSnapshot};
use crate::ring::{ring_drain, ring_reset};
use crate::{set_enabled, Journal, Record};
use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard};

static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// Session configuration.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Flight-recorder capacity in records; 0 disables the recorder.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { ring_capacity: 256 }
    }
}

/// An active observability session. Dropping it (with or without
/// [`Session::finish`]) turns recording back off.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

/// Starts an exclusive session: resets the journal sink, sequence map,
/// flight recorder, and metrics registry, then enables recording.
/// Blocks while another session (e.g. a parallel test) is active.
pub fn start(cfg: ObsConfig) -> Session {
    let guard = lock_poison_free(&SESSION_LOCK);
    EPOCH.fetch_add(1, Ordering::SeqCst);
    lock_poison_free(&SINK).clear();
    lock_poison_free(&SEQS).clear();
    ring_reset(cfg.ring_capacity);
    reset_metrics();
    set_enabled(true);
    Session { _guard: guard }
}

impl Session {
    /// Stops recording and returns everything captured.
    pub fn finish(self) -> Capture {
        set_enabled(false);
        let records: Vec<Record> = std::mem::take(&mut *lock_poison_free(&SINK));
        lock_poison_free(&SEQS).clear();
        let mut ring = ring_drain();
        merge_records(&mut ring);
        let metrics = metrics_snapshot();
        reset_metrics();
        Capture {
            journal: Journal::from_records(records),
            ring,
            metrics,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

/// Everything one session recorded.
pub struct Capture {
    /// The merged journal, in canonical `(scope, seq)` order.
    pub journal: Journal,
    /// Flight-recorder contents (most recent records, canonical order).
    pub ring: Vec<Record>,
    /// Metrics registry snapshot.
    pub metrics: MetricsSnapshot,
}
