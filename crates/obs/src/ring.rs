//! The flight recorder: a bounded ring of the most recent records.
//!
//! Fed at frame-flush time, so its contents depend on worker timing —
//! it is a *diagnostic* (dumped as `obs_dump.json` when a gate goes
//! red), not part of the deterministic journal contract. The journal
//! bytes are invariant to the ring capacity (proptested in
//! `crates/fleet/tests/obs_properties.rs`).

use crate::journal::lock_poison_free;
use crate::Record;
use std::sync::Mutex;

pub(crate) struct Ring {
    /// Capacity; 0 disables the recorder.
    cap: usize,
    /// Next overwrite position once full.
    next: usize,
    /// Stored records, at most `cap`.
    slots: Vec<Record>,
}

impl Ring {
    const fn empty() -> Ring {
        Ring {
            cap: 0,
            next: 0,
            slots: Vec::new(),
        }
    }
}

static RING: Mutex<Ring> = Mutex::new(Ring::empty());

/// Clears the ring and sets a new capacity (session start).
pub(crate) fn ring_reset(cap: usize) {
    let mut ring = lock_poison_free(&RING);
    ring.cap = cap;
    ring.next = 0;
    ring.slots.clear();
}

/// Appends a flushed frame's records, evicting the oldest once full.
pub(crate) fn ring_extend(records: &[Record]) {
    let mut ring = lock_poison_free(&RING);
    if ring.cap == 0 {
        return;
    }
    for rec in records.iter() {
        ring_push(&mut ring, *rec);
    }
}

fn ring_push(ring: &mut Ring, rec: Record) {
    if ring.slots.len() < ring.cap {
        ring.slots.push(rec);
        ring.next = ring.slots.len() % ring.cap;
        return;
    }
    let pos = ring.next;
    if let Some(slot) = ring.slots.get_mut(pos) {
        *slot = rec;
    }
    ring.next = (ring.next + 1) % ring.cap;
}

/// Drains the ring (session finish), leaving it disabled.
pub(crate) fn ring_drain() -> Vec<Record> {
    let mut ring = lock_poison_free(&RING);
    let mut out: Vec<Record> = Vec::with_capacity(ring.slots.len());
    for rec in ring.slots.iter() {
        out.push(*rec);
    }
    ring.slots.clear();
    ring.cap = 0;
    ring.next = 0;
    out
}
