//! `kinet_obs` — deterministic observability for the fleet.
//!
//! Three pieces, all honoring the repo's bit-for-bit determinism
//! contract (see DESIGN.md §2.10):
//!
//! * **Journal** ([`journal`]) — typed `SpanOpen`/`SpanClose`/`Event`
//!   records with a static `target`, up to [`MAX_FIELDS`] `key=value`
//!   fields, and *virtual-tick* timestamps supplied by the caller
//!   (never a wall clock). Records are buffered per worker thread in
//!   scope frames and merged in `(scope key, sequence)` order, so the
//!   rendered journal bytes are identical for any `KINET_THREADS`.
//! * **Metrics** ([`metrics`]) — a static registry of monotonic
//!   counters, max-gauges, and fixed-bucket histograms, all plain
//!   relaxed atomics whose totals are order-independent and therefore
//!   thread-count-invariant.
//! * **Flight recorder** ([`ring`] via [`Capture::ring`]) — a bounded
//!   ring of the most recent records, dumped by the gate binaries as
//!   `target/experiments/obs_dump.json` when a run goes red.
//!
//! The whole layer is **off by default**: every record/increment entry
//! point first reads one relaxed [`AtomicBool`], and the disabled path
//! allocates nothing (the record/merge hot functions are patrolled by
//! `crates/lint/hotlist.toml`). Instrumented library code never starts
//! a session itself — gates, benches, and tests opt in with
//! [`start`], which holds a global session lock so concurrent tests
//! cannot interleave their captures.
//!
//! Timestamp discipline: records emitted from *inside* concurrently
//! scheduled device closures must not read the shared `VirtualClock`
//! (the interleaving would vary with the thread count) — they carry
//! locally known deterministic quantities (backoff ticks, attempt
//! numbers) or `0`. Orchestrator-side records read the clock only at
//! phase barriers, where its value is deterministic.

pub mod journal;
pub mod metrics;
pub mod ring;
pub mod session;

use std::sync::atomic::{AtomicBool, Ordering};

pub use journal::{
    event, merge_records, snapshot_records, span_close, span_open, with_scope, FieldSnap, Journal,
    JournalSnapshot, RecordSnap,
};
pub use session::{start, Capture, ObsConfig, Session};

/// Master switch. Off outside an active [`Session`]; every entry point
/// checks it first so the disabled path costs one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` while an observability session is active.
///
/// Written in qualified form: `.load(` as a method token would collide
/// with the workspace's `Dataset::load`/`RoundCheckpoint::load` in the
/// lint call graph and drag their allocation cones onto every hot path
/// that checks the switch.
#[inline]
pub fn enabled() -> bool {
    AtomicBool::load(&ENABLED, Ordering::Relaxed)
}

pub(crate) fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Maximum `key=value` fields carried inline by one [`Record`].
pub const MAX_FIELDS: usize = 4;

/// One `key=value` pair. Values are `u64` only — enough for ticks,
/// rows, generations, and counts, and trivially deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Field {
    /// Static field name.
    pub key: &'static str,
    /// Field value.
    pub val: u64,
}

/// The empty-slot sentinel for a record's fixed field array.
pub const NO_FIELD: Field = Field { key: "", val: 0 };

/// Shorthand [`Field`] constructor: `kv("rows", 500)`.
#[inline]
pub fn kv(key: &'static str, val: u64) -> Field {
    Field { key, val }
}

/// Record discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A phase or span began at `ticks`.
    SpanOpen,
    /// A span ended at `ticks`; conventionally carries `ticks` (the
    /// span duration) and `rows` fields for [`Journal::phase_summary`].
    SpanClose,
    /// A point event.
    Event,
}

/// One journal record. `Copy` so the record path moves plain words,
/// never heap data.
#[derive(Clone, Copy, Debug)]
pub struct Record {
    /// Merge key, first component: see [`scope_key`].
    pub scope: u64,
    /// Merge key, second component: position within the scope.
    pub seq: u32,
    /// Virtual-tick timestamp supplied by the caller (0 when the site
    /// has no deterministic clock reading available).
    pub ticks: u64,
    /// Discriminant.
    pub kind: RecordKind,
    /// Static target label, e.g. `"fleet.acquire"`.
    pub target: &'static str,
    /// Inline fields; only the first `n_fields` are meaningful.
    pub fields: [Field; MAX_FIELDS],
    /// Number of live entries in `fields`.
    pub n_fields: u8,
}

impl Record {
    /// The live prefix of the field array.
    pub fn active_fields(&self) -> &[Field] {
        let n = (self.n_fields as usize).min(MAX_FIELDS);
        self.fields.get(..n).unwrap_or(&[])
    }

    /// Looks up a field value by key.
    pub fn field_val(&self, key: &str) -> Option<u64> {
        self.active_fields()
            .iter()
            .find(|f| f.key == key)
            .map(|f| f.val)
    }
}

/// Who is recording. Device indices come from the deterministic fleet
/// schedule, so the scope key order is the merge order the journal
/// promises: orchestrator, serving, then devices by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// The round orchestrator (serial, between phase barriers).
    Orch,
    /// The serving path (flow-batch answering).
    Serve,
    /// One device closure, by schedule index.
    Device(u32),
}

/// Dense merge key for a scope: `orch=0`, `serve=1`, `device d=2+d`.
pub fn scope_key(scope: Scope) -> u64 {
    match scope {
        Scope::Orch => 0,
        Scope::Serve => 1,
        Scope::Device(d) => 2 + d as u64,
    }
}

/// Human label for a scope key, used by the canonical rendering.
pub fn scope_label(key: u64) -> String {
    match key {
        0 => "orch".to_string(),
        1 => "serve".to_string(),
        d => format!("dev{}", d - 2),
    }
}

/// Deterministic synthetic cost model for one serving batch, in virtual
/// ticks: one tick of dispatch overhead, one per row, plus one per 64
/// row-feature products. A pure function of the batch shape, so the
/// histogram it feeds is bit-identical across thread counts (DESIGN.md
/// §2.10 documents the model).
#[inline]
pub fn serving_cost_ticks(rows: u64, width: u64) -> u64 {
    1u64.saturating_add(rows)
        .saturating_add(rows.saturating_mul(width) / 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_keys_are_dense_and_ordered() {
        assert_eq!(scope_key(Scope::Orch), 0);
        assert_eq!(scope_key(Scope::Serve), 1);
        assert_eq!(scope_key(Scope::Device(0)), 2);
        assert_eq!(scope_key(Scope::Device(7)), 9);
        assert_eq!(scope_label(9), "dev7");
    }

    #[test]
    fn field_lookup_sees_only_live_entries() {
        let mut rec = Record {
            scope: 0,
            seq: 0,
            ticks: 0,
            kind: RecordKind::Event,
            target: "t",
            fields: [NO_FIELD; MAX_FIELDS],
            n_fields: 0,
        };
        rec.fields[0] = kv("rows", 5);
        assert_eq!(rec.field_val("rows"), None, "n_fields gates visibility");
        rec.n_fields = 1;
        assert_eq!(rec.field_val("rows"), Some(5));
        assert_eq!(rec.field_val("missing"), None);
    }

    #[test]
    fn serving_cost_is_monotone_in_rows_and_width() {
        assert_eq!(serving_cost_ticks(0, 10), 1);
        assert!(serving_cost_ticks(100, 16) < serving_cost_ticks(200, 16));
        assert!(serving_cost_ticks(100, 16) < serving_cost_ticks(100, 64));
        // No overflow at absurd shapes.
        assert!(serving_cost_ticks(u64::MAX, u64::MAX) > 0);
    }
}
