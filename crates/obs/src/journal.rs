//! The deterministic span/event journal.
//!
//! Records are buffered in per-thread **scope frames**: entering
//! [`with_scope`] pushes a frame that owns the scope's next sequence
//! number (continued across activations through a global per-scope
//! counter map), every record lands in the innermost frame, and leaving
//! the scope flushes the frame into the global sink and the flight
//! recorder. The merge key is `(scope key, sequence)` — unique per
//! record — so sorting the sink reproduces one canonical order no
//! matter which worker flushed first, and the rendered bytes are
//! identical for any `KINET_THREADS` value.
//!
//! The correctness argument for sequence continuation: a scope key is
//! only ever *active* on one thread at a time (each device index is
//! claimed by exactly one worker per phase, and phases are separated by
//! barriers; the orchestrator and serving scopes live on the caller
//! thread), so reading and writing its next-sequence entry around the
//! activation races with nobody.

use crate::{
    enabled, scope_key, scope_label, Field, Record, RecordKind, Scope, MAX_FIELDS, NO_FIELD,
};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One active scope on this thread.
struct Frame {
    /// Session epoch at push time — frames stranded by a panicking
    /// test are ignored and reaped instead of polluting later sessions.
    epoch: u64,
    /// Scope merge key.
    key: u64,
    /// Next record sequence number within the scope.
    seq: u32,
    /// Buffered records, flushed on scope exit.
    buf: Vec<Record>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Bumped by every session start; stale thread-local frames are
/// detected by epoch mismatch.
pub(crate) static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Per-scope next-sequence continuation map.
pub(crate) static SEQS: Mutex<BTreeMap<u64, u32>> = Mutex::new(BTreeMap::new());

/// Flushed records, merged at session finish.
pub(crate) static SINK: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Locks a mutex, recovering from poisoning instead of panicking —
/// this layer must stay panic-free on the serving path.
pub(crate) fn lock_poison_free<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn current_epoch() -> u64 {
    AtomicU64::load(&EPOCH, Ordering::Relaxed)
}

/// Runs `f` with `scope` active on this thread. Nested activation of a
/// scope already on this thread's stack is a *continuation*: `f` runs
/// without a new frame and its records keep flowing to the innermost
/// frame. Disabled sessions run `f` untouched.
pub fn with_scope<T>(scope: Scope, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let key = scope_key(scope);
    let epoch = current_epoch();
    let cont = STACK.with_borrow_mut(|s| {
        s.retain(|fr| fr.epoch == epoch);
        s.iter().any(|fr| fr.key == key)
    });
    if cont {
        return f();
    }
    let seq = {
        let seqs = lock_poison_free(&SEQS);
        seqs.get(&key).copied().unwrap_or(0)
    };
    STACK.with_borrow_mut(|s| {
        s.push(Frame {
            epoch,
            key,
            seq,
            buf: Vec::with_capacity(32),
        })
    });
    let out = f();
    let frame = STACK.with_borrow_mut(|s| s.pop());
    if let Some(frame) = frame {
        if frame.epoch == current_epoch() {
            flush_frame(frame);
        }
    }
    out
}

/// Records a point event into the innermost active scope. `ticks` must
/// be a deterministic quantity (a barrier-point clock reading, a
/// locally computed delay, or 0) — see the crate docs.
pub fn event(target: &'static str, ticks: u64, fields: &[Field]) {
    record(RecordKind::Event, target, ticks, fields);
}

/// Records a span opening.
pub fn span_open(target: &'static str, ticks: u64, fields: &[Field]) {
    record(RecordKind::SpanOpen, target, ticks, fields);
}

/// Records a span close. Carry `ticks` (duration) and `rows` fields to
/// feed [`Journal::phase_summary`].
pub fn span_close(target: &'static str, ticks: u64, fields: &[Field]) {
    record(RecordKind::SpanClose, target, ticks, fields);
}

fn record(kind: RecordKind, target: &'static str, ticks: u64, fields: &[Field]) {
    if !enabled() {
        return;
    }
    let epoch = current_epoch();
    STACK.with_borrow_mut(|s| {
        if let Some(frame) = s.last_mut() {
            if frame.epoch == epoch {
                push_record(frame, kind, target, ticks, fields);
            }
        }
    });
}

/// Appends one record to an active frame. Hot (patrolled by
/// `crates/lint/hotlist.toml`): plain word moves plus one `Vec::push`.
fn push_record(
    frame: &mut Frame,
    kind: RecordKind,
    target: &'static str,
    ticks: u64,
    fields: &[Field],
) {
    let mut rec = Record {
        scope: frame.key,
        seq: frame.seq,
        ticks,
        kind,
        target,
        fields: [NO_FIELD; MAX_FIELDS],
        n_fields: 0,
    };
    for (slot, field) in rec.fields.iter_mut().zip(fields.iter()) {
        *slot = *field;
        rec.n_fields += 1;
    }
    frame.seq = frame.seq.saturating_add(1);
    frame.buf.push(rec);
}

fn flush_frame(frame: Frame) {
    {
        let mut seqs = lock_poison_free(&SEQS);
        let next = seqs.entry(frame.key).or_insert(0);
        if frame.seq > *next {
            *next = frame.seq;
        }
    }
    crate::ring::ring_extend(&frame.buf);
    let mut sink = lock_poison_free(&SINK);
    for rec in frame.buf.iter() {
        sink.push(*rec);
    }
}

/// Sorts records into the canonical `(scope, seq)` merge order. The key
/// is unique per record, so the order — and therefore the journal bytes
/// — is total and thread-count-invariant. Hot (hotlist-patrolled):
/// in-place, allocation-free.
pub fn merge_records(records: &mut [Record]) {
    records.sort_unstable_by_key(|r| (r.scope, r.seq));
}

/// The merged, immutable journal a [`crate::Session`] capture returns.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    records: Vec<Record>,
}

impl Journal {
    pub(crate) fn from_records(mut records: Vec<Record>) -> Journal {
        merge_records(&mut records);
        Journal { records }
    }

    /// All records in canonical merge order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Records with the given target, in canonical order.
    pub fn events_for<'a>(&'a self, target: &'a str) -> impl Iterator<Item = &'a Record> {
        self.records.iter().filter(move |r| r.target == target)
    }

    /// Canonical text rendering, one line per record. Byte-equality of
    /// two renders is the journal determinism assertion the gates make.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 48);
        for rec in self.records.iter() {
            render_record(&mut out, rec);
        }
        out
    }

    /// One-line per-phase digest aggregated over `SpanClose` records:
    /// `obs: <target> ticks=<sum> rows=<sum> | …` in target order.
    pub fn phase_summary(&self) -> String {
        let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for rec in self.records.iter() {
            if rec.kind == RecordKind::SpanClose {
                let cell = agg.entry(rec.target).or_insert((0, 0));
                cell.0 = cell.0.saturating_add(rec.field_val("ticks").unwrap_or(0));
                cell.1 = cell.1.saturating_add(rec.field_val("rows").unwrap_or(0));
            }
        }
        let mut out = String::from("obs:");
        if agg.is_empty() {
            out.push_str(" no spans recorded");
            return out;
        }
        let mut first = true;
        for (target, (ticks, rows)) in agg.iter() {
            if !first {
                out.push_str(" |");
            }
            first = false;
            out.push_str(&format!(" {target} ticks={ticks} rows={rows}"));
        }
        out
    }

    /// Owned, serde-serializable view.
    pub fn snapshot(&self) -> JournalSnapshot {
        snapshot_records(&self.records)
    }
}

fn render_record(out: &mut String, rec: &Record) {
    out.push_str(&scope_label(rec.scope));
    out.push_str(&format!(
        " #{} t={} {} {}",
        rec.seq,
        rec.ticks,
        kind_label(rec.kind),
        rec.target
    ));
    for field in rec.active_fields().iter() {
        out.push_str(&format!(" {}={}", field.key, field.val));
    }
    out.push('\n');
}

fn kind_label(kind: RecordKind) -> &'static str {
    match kind {
        RecordKind::SpanOpen => "open",
        RecordKind::SpanClose => "close",
        RecordKind::Event => "event",
    }
}

/// Owned view of one field, for JSON artifacts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FieldSnap {
    /// Field name.
    pub key: String,
    /// Field value.
    pub val: u64,
}

/// Owned view of one record, for JSON artifacts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecordSnap {
    /// Scope label (`orch`, `serve`, `dev<N>`).
    pub scope: String,
    /// Sequence within the scope.
    pub seq: u32,
    /// Virtual-tick timestamp.
    pub ticks: u64,
    /// `open`, `close`, or `event`.
    pub kind: String,
    /// Target label.
    pub target: String,
    /// Live fields.
    pub fields: Vec<FieldSnap>,
}

/// Owned, serde-serializable journal (or flight-recorder) view.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JournalSnapshot {
    /// Records in the order given.
    pub records: Vec<RecordSnap>,
}

/// Converts raw records (journal or flight-recorder contents) into the
/// owned JSON-artifact form.
pub fn snapshot_records(records: &[Record]) -> JournalSnapshot {
    let mut out = Vec::with_capacity(records.len());
    for rec in records.iter() {
        let mut fields = Vec::with_capacity(rec.n_fields as usize);
        for field in rec.active_fields().iter() {
            fields.push(FieldSnap {
                key: field.key.to_string(),
                val: field.val,
            });
        }
        out.push(RecordSnap {
            scope: scope_label(rec.scope),
            seq: rec.seq,
            ticks: rec.ticks,
            kind: kind_label(rec.kind).to_string(),
            target: rec.target.to_string(),
            fields,
        });
    }
    JournalSnapshot { records: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kv, ObsConfig, Scope};

    #[test]
    fn records_outside_any_scope_or_session_are_dropped() {
        event("orphan.before", 0, &[]);
        let session = crate::start(ObsConfig::default());
        event("orphan.inside", 0, &[]); // no active scope frame
        let capture = session.finish();
        assert!(capture.journal.records().is_empty());
    }

    #[test]
    fn scopes_merge_in_scope_then_sequence_order() {
        let session = crate::start(ObsConfig::default());
        with_scope(Scope::Device(1), || {
            event("dev.work", 0, &[kv("attempt", 1)]);
        });
        with_scope(Scope::Orch, || {
            event("orch.a", 10, &[]);
            with_scope(Scope::Orch, || event("orch.nested", 11, &[]));
        });
        with_scope(Scope::Device(0), || event("dev.work", 0, &[]));
        let capture = session.finish();
        let targets: Vec<&str> = capture.journal.records().iter().map(|r| r.target).collect();
        assert_eq!(targets, ["orch.a", "orch.nested", "dev.work", "dev.work"]);
        let scopes: Vec<u64> = capture.journal.records().iter().map(|r| r.scope).collect();
        assert_eq!(scopes, [0, 0, 2, 3]);
    }

    #[test]
    fn sequences_continue_across_scope_activations() {
        let session = crate::start(ObsConfig::default());
        with_scope(Scope::Device(0), || event("phase.a", 0, &[]));
        with_scope(Scope::Device(0), || event("phase.b", 0, &[]));
        let capture = session.finish();
        let seqs: Vec<u32> = capture.journal.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1], "second activation continues the sequence");
    }

    #[test]
    fn field_overflow_truncates_at_max_fields() {
        let session = crate::start(ObsConfig::default());
        with_scope(Scope::Orch, || {
            event(
                "wide",
                0,
                &[kv("a", 1), kv("b", 2), kv("c", 3), kv("d", 4), kv("e", 5)],
            );
        });
        let capture = session.finish();
        let rec = capture.journal.records()[0];
        assert_eq!(rec.n_fields as usize, MAX_FIELDS);
        assert_eq!(rec.field_val("d"), Some(4));
        assert_eq!(rec.field_val("e"), None);
    }

    #[test]
    fn render_and_summary_are_stable() {
        let session = crate::start(ObsConfig::default());
        with_scope(Scope::Orch, || {
            span_open("fleet.acquire", 0, &[]);
            span_close("fleet.acquire", 40, &[kv("ticks", 40), kv("rows", 500)]);
            span_close("fleet.union", 55, &[kv("ticks", 15), kv("rows", 8)]);
        });
        let capture = session.finish();
        assert_eq!(
            capture.journal.render(),
            "orch #0 t=0 open fleet.acquire\n\
             orch #1 t=40 close fleet.acquire ticks=40 rows=500\n\
             orch #2 t=55 close fleet.union ticks=15 rows=8\n"
        );
        assert_eq!(
            capture.journal.phase_summary(),
            "obs: fleet.acquire ticks=40 rows=500 | fleet.union ticks=15 rows=8"
        );
    }

    #[test]
    fn snapshot_round_trips_through_vendored_serde() {
        let session = crate::start(ObsConfig::default());
        with_scope(Scope::Serve, || {
            event("serve.answer", 9, &[kv("rows", 128), kv("staleness", 1)]);
        });
        let capture = session.finish();
        let snap = capture.journal.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: JournalSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].scope, "serve");
        assert_eq!(back.records[0].fields[0].key, "rows");
        assert_eq!(back.records[0].fields[0].val, 128);
    }
}
