//! A UNSW-NB15-shaped dataset generator (§IV-B-2).
//!
//! UNSW-NB15 is 2,540,044 flow records with 49 attributes spanning flow,
//! basic, content, time and additional generated features, labeled with 9
//! attack categories plus normal traffic. The corpus itself cannot be
//! vendored offline, so this module generates a schema-faithful synthetic
//! equivalent: the full 49-column layout, the published category imbalance,
//! and cross-attribute structure (protocol ↔ service ↔ state fingerprints
//! per category) consistent with [`kinet_kg::NetworkKg::unsw_default`].
//! Row count is scaled down by default (20k) to CPU-training budgets; pass
//! a larger [`UnswSimConfig::n_records`] to approach the original size.

use kinet_data::stream::ChunkSource;
use kinet_data::{ColumnMeta, DataError, Schema, Table, Value};
use kinet_kg::NetworkKg;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Configuration for [`UnswSimulator`].
#[derive(Clone, Debug)]
pub struct UnswSimConfig {
    /// Number of records (default 20,000; the original corpus has
    /// 2,540,044).
    pub n_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UnswSimConfig {
    fn default() -> Self {
        Self {
            n_records: 20_000,
            seed: 15,
        }
    }
}

impl UnswSimConfig {
    /// A smaller configuration for unit tests and fast benches.
    pub fn small(n_records: usize, seed: u64) -> Self {
        Self { n_records, seed }
    }
}

/// Attack categories with (approximate) original frequencies, plus normal.
const CATEGORIES: &[(&str, f64)] = &[
    ("normal", 0.871),
    ("generic", 0.058),
    ("exploits", 0.030),
    ("fuzzers", 0.017),
    ("dos", 0.011),
    ("reconnaissance", 0.0095),
    ("analysis", 0.0020),
    ("backdoors", 0.0016),
    ("shellcode", 0.0010),
    ("worms", 0.0005),
];

/// Per-category discrete fingerprints: (protos, services, states), all
/// consistent with the `unsw_default` knowledge graph.
fn fingerprint(
    cat: &str,
) -> (
    &'static [&'static str],
    &'static [&'static str],
    &'static [&'static str],
) {
    match cat {
        "normal" => (
            &["tcp", "udp"],
            &["-", "dns", "http", "smtp", "ftp", "ssh", "pop3"],
            &["FIN", "CON", "INT", "REQ"],
        ),
        "generic" => (
            &["udp", "tcp"],
            &["dns", "-", "http", "smtp"],
            &["INT", "CON", "FIN"],
        ),
        "exploits" => (
            &["tcp", "udp"],
            &["-", "http", "ftp", "smtp", "dns"],
            &["FIN", "INT", "CON"],
        ),
        "fuzzers" => (
            &["tcp", "udp"],
            &["-", "http", "dns", "ftp-data"],
            &["FIN", "INT", "CON"],
        ),
        "dos" => (
            &["tcp", "udp"],
            &["-", "http", "dns", "smtp"],
            &["INT", "CON", "FIN", "RST"],
        ),
        "reconnaissance" => (
            &["tcp", "udp", "icmp"],
            &["-", "dns", "http"],
            &["INT", "FIN", "REQ"],
        ),
        "analysis" => (&["tcp"], &["-", "http"], &["FIN", "INT"]),
        "backdoors" => (&["tcp", "udp"], &["-", "ftp"], &["FIN", "INT"]),
        "shellcode" => (&["tcp", "udp"], &["-"], &["INT", "FIN"]),
        "worms" => (&["tcp"], &["-", "http"], &["FIN", "INT"]),
        other => panic!("unknown UNSW category {other:?}"),
    }
}

/// Per-category numeric scale: (dur, sbytes, dbytes, spkts, dpkts).
fn numeric_profile(cat: &str) -> (f64, f64, f64, f64, f64) {
    match cat {
        "normal" => (0.8, 4_000.0, 10_000.0, 18.0, 22.0),
        "generic" => (0.02, 430.0, 120.0, 3.0, 1.5),
        "exploits" => (1.5, 3_000.0, 5_000.0, 20.0, 18.0),
        "fuzzers" => (2.0, 5_000.0, 800.0, 28.0, 8.0),
        "dos" => (1.0, 2_200.0, 600.0, 25.0, 6.0),
        "reconnaissance" => (0.4, 600.0, 300.0, 8.0, 4.0),
        "analysis" => (0.5, 900.0, 400.0, 10.0, 5.0),
        "backdoors" => (0.6, 1_200.0, 900.0, 12.0, 9.0),
        "shellcode" => (0.3, 700.0, 250.0, 6.0, 3.0),
        "worms" => (0.9, 1_800.0, 1_400.0, 14.0, 11.0),
        other => panic!("unknown UNSW category {other:?}"),
    }
}

/// Generator for UNSW-NB15-shaped tables.
///
/// ```
/// use kinet_datasets::unsw::{UnswSimConfig, UnswSimulator};
/// let sim = UnswSimulator::new(UnswSimConfig::small(100, 0));
/// let full = sim.generate().unwrap();
/// assert_eq!(full.n_cols(), 49);
/// let view = UnswSimulator::modeling_view(&full).unwrap();
/// assert_eq!(view.n_cols(), 13);
/// ```
#[derive(Clone, Debug)]
pub struct UnswSimulator {
    config: UnswSimConfig,
}

impl UnswSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: UnswSimConfig) -> Self {
        Self { config }
    }

    /// The full 49-attribute UNSW-NB15 schema.
    pub fn schema() -> Schema {
        let cat = ColumnMeta::categorical;
        let num = ColumnMeta::continuous;
        // kinet-lint: allow(transitive-allocation) — on the pipeline hot cone only via a name-collision method edge; runs once at fit time
        Schema::new(vec![
            cat("srcip"),
            num("sport"),
            cat("dstip"),
            num("dsport"),
            cat("proto"),
            cat("state"),
            num("dur"),
            num("sbytes"),
            num("dbytes"),
            num("sttl"),
            num("dttl"),
            num("sloss"),
            num("dloss"),
            cat("service"),
            num("sload"),
            num("dload"),
            num("spkts"),
            num("dpkts"),
            num("swin"),
            num("dwin"),
            num("stcpb"),
            num("dtcpb"),
            num("smeansz"),
            num("dmeansz"),
            num("trans_depth"),
            num("res_bdy_len"),
            num("sjit"),
            num("djit"),
            num("stime"),
            num("ltime"),
            num("sintpkt"),
            num("dintpkt"),
            num("tcprtt"),
            num("synack"),
            num("ackdat"),
            cat("is_sm_ips_ports"),
            num("ct_state_ttl"),
            num("ct_flw_http_mthd"),
            cat("is_ftp_login"),
            num("ct_ftp_cmd"),
            num("ct_srv_src"),
            num("ct_srv_dst"),
            num("ct_dst_ltm"),
            num("ct_src_ltm"),
            num("ct_src_dport_ltm"),
            num("ct_dst_sport_ltm"),
            num("ct_dst_src_ltm"),
            cat("attack_cat"),
            cat("label"),
        ])
    }

    /// Names of the columns used for generative-model training (a mixed
    /// 13-column view, as papers typically model a feature subset rather
    /// than raw IPs/timestamps).
    pub fn modeling_columns() -> [&'static str; 13] {
        [
            "proto",
            "service",
            "state",
            "dur",
            "sbytes",
            "dbytes",
            "sttl",
            "dttl",
            "sload",
            "spkts",
            "dpkts",
            "smeansz",
            "attack_cat",
        ]
    }

    /// Projects a full table onto the modeling view.
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] if `full` lacks the expected columns.
    pub fn modeling_view(full: &Table) -> Result<Table, DataError> {
        full.project(&Self::modeling_columns())
    }

    /// Name of the label column used by NIDS classifiers.
    pub fn label_column() -> &'static str {
        "attack_cat"
    }

    /// The knowledge graph this simulator is consistent with.
    pub fn knowledge_graph() -> NetworkKg {
        NetworkKg::unsw_default()
    }

    /// Generates the full 49-column table eagerly — a thin wrapper
    /// draining [`UnswSimulator::chunk_source`], so the one-shot and
    /// chunked paths are bit-identical by construction. Memory-bounded
    /// callers (fleet-scale row counts) should stream the chunk source.
    ///
    /// # Errors
    ///
    /// Propagates row-construction failures.
    pub fn generate(&self) -> Result<Table, DataError> {
        self.chunk_source().collect(4096)
    }

    /// A [`ChunkSource`] over the configured flow stream: yields
    /// `n_records` rows on demand, carrying the RNG and the flow-clock
    /// (`stime`) state across chunks, so a multi-million-row corpus never
    /// has to exist decoded at once.
    pub fn chunk_source(&self) -> UnswChunkSource {
        UnswChunkSource {
            sim: self.clone(),
            schema: Self::schema(),
            rng: StdRng::seed_from_u64(self.config.seed),
            stime: 1_421_927_414.0, // epoch base, as in the original capture
            remaining: self.config.n_records,
        }
    }

    fn record_for(&self, cat: &'static str, stime: f64, rng: &mut StdRng) -> Vec<Value> {
        let (protos, services, states) = fingerprint(cat);
        let proto = *pick(protos, rng);
        let service = *pick(services, rng);
        let state = *pick(states, rng);
        let (dur_mu, sb_mu, db_mu, sp_mu, dp_mu) = numeric_profile(cat);

        let dur = lognormal(dur_mu.max(1e-3), 0.6, rng).min(3_600.0);
        let spkts = lognormal(sp_mu, 0.5, rng).round().clamp(1.0, 500_000.0);
        let dpkts = lognormal(dp_mu.max(0.2), 0.5, rng)
            .round()
            .clamp(0.0, 500_000.0);
        let sbytes = (lognormal(sb_mu, 0.7, rng).round()).clamp(28.0, 5e8);
        let dbytes = if dpkts == 0.0 {
            0.0
        } else {
            lognormal(db_mu.max(1.0), 0.7, rng).round().clamp(0.0, 5e8)
        };
        let sttl = *pick(&[62.0, 63.0, 254.0, 255.0], rng);
        let dttl = if dpkts == 0.0 {
            0.0
        } else {
            *pick(&[29.0, 30.0, 60.0, 252.0, 253.0], rng)
        };
        let sload = if dur > 0.0 { sbytes * 8.0 / dur } else { 0.0 };
        let dload = if dur > 0.0 { dbytes * 8.0 / dur } else { 0.0 };
        let is_tcp = proto == "tcp";
        let swin = if is_tcp { 255.0 } else { 0.0 };
        let dwin = if is_tcp && dpkts > 0.0 { 255.0 } else { 0.0 };
        let smeansz = (sbytes / spkts).round().clamp(24.0, 1504.0);
        let dmeansz = if dpkts > 0.0 {
            (dbytes / dpkts).round().clamp(0.0, 1504.0)
        } else {
            0.0
        };
        let http_like = service == "http";
        let ftp_like = service == "ftp";

        let srcip = format!("59.166.0.{}", rng.random_range(0..8) * 2);
        let dstip = format!("149.171.126.{}", rng.random_range(0..18));
        let same_endpoint = srcip == dstip;
        let sport = rng.random_range(1024..65535) as f64;
        let dsport = match service {
            "dns" => 53.0,
            "http" => 80.0,
            "smtp" => 25.0,
            "ftp" => 21.0,
            "ftp-data" => 20.0,
            "ssh" => 22.0,
            "pop3" => 110.0,
            _ => rng.random_range(1..65535) as f64,
        };

        vec![
            Value::cat(srcip),
            Value::num(sport),
            Value::cat(dstip),
            Value::num(dsport),
            Value::cat(proto.to_string()),
            Value::cat(state.to_string()),
            Value::num(dur),
            Value::num(sbytes),
            Value::num(dbytes),
            Value::num(sttl),
            Value::num(dttl),
            Value::num((spkts * rng.random_range(0.0..0.05f64)).round()), // sloss
            Value::num((dpkts * rng.random_range(0.0..0.05f64)).round()), // dloss
            Value::cat(service.to_string()),
            Value::num(sload),
            Value::num(dload),
            Value::num(spkts),
            Value::num(dpkts),
            Value::num(swin),
            Value::num(dwin),
            Value::num(if is_tcp {
                rng.random_range(0.0..4e9f64)
            } else {
                0.0
            }), // stcpb
            Value::num(if is_tcp {
                rng.random_range(0.0..4e9f64)
            } else {
                0.0
            }), // dtcpb
            Value::num(smeansz),
            Value::num(dmeansz),
            Value::num(if http_like {
                rng.random_range(1.0..3.0f64).round()
            } else {
                0.0
            }),
            Value::num(if http_like {
                lognormal(2_000.0, 1.0, rng).round()
            } else {
                0.0
            }),
            Value::num(lognormal(100.0, 1.0, rng)), // sjit
            Value::num(lognormal(80.0, 1.0, rng)),  // djit
            Value::num(stime),
            Value::num(stime + dur),
            Value::num(if spkts > 1.0 {
                dur * 1000.0 / spkts
            } else {
                0.0
            }), // sintpkt
            Value::num(if dpkts > 1.0 {
                dur * 1000.0 / dpkts
            } else {
                0.0
            }), // dintpkt
            Value::num(if is_tcp {
                lognormal(0.08, 0.5, rng)
            } else {
                0.0
            }), // tcprtt
            Value::num(if is_tcp {
                lognormal(0.04, 0.5, rng)
            } else {
                0.0
            }), // synack
            Value::num(if is_tcp {
                lognormal(0.04, 0.5, rng)
            } else {
                0.0
            }), // ackdat
            Value::cat(if same_endpoint { "1" } else { "0" }),
            Value::num(rng.random_range(0.0..6.0f64).round()), // ct_state_ttl
            Value::num(if http_like {
                rng.random_range(0.0..4.0f64).round()
            } else {
                0.0
            }),
            Value::cat(if ftp_like && rng.random_bool(0.3) {
                "1"
            } else {
                "0"
            }),
            Value::num(if ftp_like {
                rng.random_range(0.0..4.0f64).round()
            } else {
                0.0
            }),
            Value::num(rng.random_range(1.0..40.0f64).round()), // ct_srv_src
            Value::num(rng.random_range(1.0..40.0f64).round()), // ct_srv_dst
            Value::num(rng.random_range(1.0..30.0f64).round()), // ct_dst_ltm
            Value::num(rng.random_range(1.0..30.0f64).round()), // ct_src_ltm
            Value::num(rng.random_range(1.0..20.0f64).round()), // ct_src_dport_ltm
            Value::num(rng.random_range(1.0..20.0f64).round()), // ct_dst_sport_ltm
            Value::num(rng.random_range(1.0..30.0f64).round()), // ct_dst_src_ltm
            Value::cat(cat.to_string()),
            Value::cat(if cat == "normal" { "0" } else { "1" }),
        ]
    }
}

/// Streaming generator over the configured UNSW flow stream (see
/// [`UnswSimulator::chunk_source`]).
#[derive(Clone, Debug)]
pub struct UnswChunkSource {
    sim: UnswSimulator,
    schema: Schema,
    rng: StdRng,
    stime: f64,
    remaining: usize,
}

impl ChunkSource for UnswChunkSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Table>, DataError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let take = self.remaining.min(max_rows.max(1));
        let mut chunk = Table::empty(self.schema.clone());
        for _ in 0..take {
            let cat = weighted_choice(CATEGORIES, &mut self.rng);
            self.stime += self.rng.random_range(0.0..2.0);
            chunk.push_row(self.sim.record_for(cat, self.stime, &mut self.rng))?;
        }
        self.remaining -= take;
        Ok(Some(chunk))
    }
}

fn pick<'a, T>(options: &'a [T], rng: &mut StdRng) -> &'a T {
    &options[rng.random_range(0..options.len())]
}

fn weighted_choice(options: &[(&'static str, f64)], rng: &mut StdRng) -> &'static str {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut u = rng.random::<f64>() * total;
    for (name, w) in options {
        u -= w;
        if u <= 0.0 {
            return name;
        }
    }
    options.last().expect("non-empty options").0
}

fn lognormal(median: f64, sigma: f64, rng: &mut StdRng) -> f64 {
    let u1: f64 = (1.0f64 - rng.random::<f64>()).max(1e-300);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    median * (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment_from_row;

    #[test]
    fn full_schema_has_49_columns() {
        assert_eq!(UnswSimulator::schema().len(), 49);
    }

    #[test]
    fn generates_with_imbalance() {
        let t = UnswSimulator::new(UnswSimConfig::small(4000, 1))
            .generate()
            .unwrap();
        assert_eq!(t.n_rows(), 4000);
        let counts = t.category_counts("attack_cat").unwrap();
        let normal = counts.get("normal").copied().unwrap_or(0);
        assert!(normal > 3000, "normal should dominate: {counts:?}");
        assert!(
            counts.len() >= 6,
            "most categories should appear: {counts:?}"
        );
    }

    #[test]
    fn label_agrees_with_category() {
        let t = UnswSimulator::new(UnswSimConfig::small(500, 2))
            .generate()
            .unwrap();
        let cats = t.cat_column("attack_cat").unwrap();
        let labels = t.cat_column("label").unwrap();
        for (c, l) in cats.iter().zip(labels) {
            assert_eq!(l == "1", c != "normal");
        }
    }

    #[test]
    fn modeling_view_is_kg_consistent() {
        let t = UnswSimulator::new(UnswSimConfig::small(600, 3))
            .generate()
            .unwrap();
        let view = UnswSimulator::modeling_view(&t).unwrap();
        assert_eq!(view.n_cols(), 13);
        let kg = UnswSimulator::knowledge_graph();
        for r in 0..view.n_rows() {
            let a = assignment_from_row(&view, r);
            let v = kg.reasoner().is_valid(&a);
            assert!(v.is_valid(), "row {r}: {:?}", v.violations());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UnswSimulator::new(UnswSimConfig::small(100, 9))
            .generate()
            .unwrap();
        let b = UnswSimulator::new(UnswSimConfig::small(100, 9))
            .generate()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_generation_is_bit_identical_to_eager() {
        let sim = UnswSimulator::new(UnswSimConfig::small(500, 21));
        let eager = sim.generate().unwrap();
        // Awkward chunk sizes that do not divide the row count: the RNG
        // and flow-clock state must carry across chunk boundaries.
        for chunk_rows in [1usize, 7, 64, 499, 500, 1000] {
            let streamed = sim.chunk_source().collect(chunk_rows).unwrap();
            assert_eq!(streamed, eager, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn chunk_source_yields_bounded_chunks() {
        let sim = UnswSimulator::new(UnswSimConfig::small(100, 3));
        let mut src = sim.chunk_source();
        let mut total = 0;
        while let Some(chunk) = src.next_chunk(32).unwrap() {
            assert!(chunk.n_rows() <= 32 && !chunk.is_empty());
            total += chunk.n_rows();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn port_service_consistency() {
        let t = UnswSimulator::new(UnswSimConfig::small(800, 4))
            .generate()
            .unwrap();
        let services = t.cat_column("service").unwrap().to_vec();
        let dsports = t.num_column("dsport").unwrap();
        for (s, &p) in services.iter().zip(dsports) {
            match s.as_str() {
                "dns" => assert_eq!(p, 53.0),
                "http" => assert_eq!(p, 80.0),
                "smtp" => assert_eq!(p, 25.0),
                _ => {}
            }
        }
    }

    #[test]
    fn numeric_invariants() {
        let t = UnswSimulator::new(UnswSimConfig::small(800, 5))
            .generate()
            .unwrap();
        for (&sb, &sp) in t
            .num_column("sbytes")
            .unwrap()
            .iter()
            .zip(t.num_column("spkts").unwrap())
        {
            assert!(sb >= 28.0);
            assert!(sp >= 1.0);
        }
        for &ttl in t.num_column("sttl").unwrap() {
            assert!((1.0..=255.0).contains(&ttl));
        }
        let stimes = t.num_column("stime").unwrap();
        let ltimes = t.num_column("ltime").unwrap();
        for (s, l) in stimes.iter().zip(ltimes) {
            assert!(l >= s, "flow must end after it starts");
        }
    }

    #[test]
    fn dos_flows_are_heavier_than_generic() {
        let t = UnswSimulator::new(UnswSimConfig::small(6000, 6))
            .generate()
            .unwrap();
        let cats = t.cat_column("attack_cat").unwrap().to_vec();
        let spkts = t.num_column("spkts").unwrap();
        let mean_for = |name: &str| {
            let v: Vec<f64> = cats
                .iter()
                .zip(spkts)
                .filter(|(c, _)| c.as_str() == name)
                .map(|(_, &x)| x)
                .collect();
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        assert!(mean_for("dos") > mean_for("generic"));
    }
}
