//! Simulator for the paper's lab-collected IoT network capture (§IV-B-1).
//!
//! The paper's private dataset comprises 14,520 Wireshark records from a
//! Blink camera, a smart plug, a motion sensor and a tag manager, covering
//! benign device behaviours (motion detection, lamp activation, tag-manager
//! sync) and simulated attacks (traffic flooding and friends). This
//! simulator reproduces that setting with a seedable generative process
//! whose event semantics are exactly the rules of
//! [`NetworkKg::lab_default`] — so every clean record is KG-valid by
//! construction, imbalance matches the "mostly benign, few attacks"
//! profile, and per-event numeric signatures (packet counts, byte volumes,
//! durations) are distinguishable the way real NIDS features are.

use kinet_data::stream::ChunkSource;
use kinet_data::{ColumnMeta, DataError, Schema, Table, Value};
use kinet_kg::NetworkKg;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Configuration for [`LabSimulator`].
#[derive(Clone, Debug)]
pub struct LabSimConfig {
    /// Number of records to generate (paper: 14,520).
    pub n_records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of records that are attacks (default 0.08).
    pub attack_fraction: f64,
}

impl Default for LabSimConfig {
    fn default() -> Self {
        Self {
            n_records: 14_520,
            seed: 7,
            attack_fraction: 0.08,
        }
    }
}

impl LabSimConfig {
    /// A smaller configuration for unit tests and fast benches.
    pub fn small(n_records: usize, seed: u64) -> Self {
        Self {
            n_records,
            seed,
            ..Self::default()
        }
    }
}

struct DeviceInfo {
    name: &'static str,
    ip: &'static str,
}

const DEVICES: &[DeviceInfo] = &[
    DeviceInfo {
        name: "blink_camera",
        ip: "192.168.1.10",
    },
    DeviceInfo {
        name: "smart_plug",
        ip: "192.168.1.11",
    },
    DeviceInfo {
        name: "motion_sensor",
        ip: "192.168.1.12",
    },
    DeviceInfo {
        name: "tag_manager",
        ip: "192.168.1.13",
    },
    DeviceInfo {
        name: "hub",
        ip: "192.168.1.1",
    },
];

const CLOUD_DSTS: &[&str] = &[
    "34.206.10.5",
    "52.94.236.248",
    "142.250.80.46",
    "192.168.1.1",
];

/// Benign events with their relative frequencies.
const BENIGN_EVENTS: &[(&str, f64)] = &[
    ("heartbeat", 0.34),
    ("motion_detected", 0.22),
    ("dns_lookup", 0.16),
    ("tag_sync", 0.12),
    ("lamp_on", 0.07),
    ("lamp_off", 0.06),
    ("firmware_check", 0.03),
];

/// Attack events with their relative frequencies within attack traffic.
const ATTACK_EVENTS: &[(&str, f64)] = &[
    ("traffic_flooding", 0.55),
    ("port_scan", 0.30),
    ("cve_1999_0003", 0.15),
];

/// Generator for lab-style IoT network activity records.
///
/// ```
/// use kinet_datasets::lab::{LabSimConfig, LabSimulator};
/// let table = LabSimulator::new(LabSimConfig::small(200, 1)).generate().unwrap();
/// assert_eq!(table.n_rows(), 200);
/// assert!(table.schema().index_of("event").is_some());
/// ```
#[derive(Clone, Debug)]
pub struct LabSimulator {
    config: LabSimConfig,
}

impl LabSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: LabSimConfig) -> Self {
        Self { config }
    }

    /// The lab table schema: 6 discrete + 4 continuous columns.
    pub fn schema() -> Schema {
        // kinet-lint: allow(transitive-allocation) — on the pipeline hot cone only via a name-collision method edge; runs once at fit time
        Schema::new(vec![
            ColumnMeta::categorical("event"),
            ColumnMeta::categorical("device"),
            ColumnMeta::categorical("protocol"),
            ColumnMeta::categorical("src_ip"),
            ColumnMeta::categorical("dst_ip"),
            ColumnMeta::continuous("src_port"),
            ColumnMeta::continuous("dst_port"),
            ColumnMeta::continuous("pkt_count"),
            ColumnMeta::continuous("byte_count"),
            ColumnMeta::continuous("duration"),
        ])
    }

    /// Name of the label column used by NIDS classifiers.
    pub fn label_column() -> &'static str {
        "event"
    }

    /// The set of event names that are attacks.
    pub fn attack_events() -> Vec<&'static str> {
        ATTACK_EVENTS.iter().map(|(n, _)| *n).collect()
    }

    /// Generates the table eagerly — a thin wrapper draining
    /// [`LabSimulator::chunk_source`], so the one-shot and chunked paths
    /// are bit-identical by construction (same RNG draw sequence).
    /// Memory-bounded callers should stream the chunk source instead.
    ///
    /// # Errors
    ///
    /// Propagates row-construction failures (impossible for in-range
    /// configs; surfaced rather than panicking per workspace policy).
    pub fn generate(&self) -> Result<Table, DataError> {
        self.chunk_source().collect(GENERATE_CHUNK)
    }

    /// A [`ChunkSource`] over the configured record mix: yields
    /// `n_records` rows on demand without materializing them all, RNG
    /// state carried across chunks.
    pub fn chunk_source(&self) -> LabChunkSource {
        LabChunkSource {
            sim: self.clone(),
            schema: Self::schema(),
            rng: StdRng::seed_from_u64(self.config.seed),
            remaining: self.config.n_records,
        }
    }

    /// A [`ChunkSource`] over a single device's traffic: yields exactly
    /// `n` rows originating from `device`, chunk by chunk, consuming the
    /// RNG exactly like [`LabSimulator::generate_for_device`].
    pub fn device_chunk_source(&self, device: &str, n: usize) -> LabDeviceChunkSource {
        LabDeviceChunkSource {
            sim: self.clone(),
            schema: Self::schema(),
            rng: StdRng::seed_from_u64(self.config.seed ^ hash_name(device)),
            device: device.to_string(),
            remaining: n,
        }
    }

    /// Generates one record of the given event class (public so tests and
    /// the distributed simulator can drive per-event streams).
    pub fn record_for(&self, event: &str, rng: &mut StdRng) -> Vec<Value> {
        let (device, dst_ip, protocol, src_port, dst_port) = match event {
            "motion_detected" => {
                let device = if rng.random_bool(0.7) {
                    "blink_camera"
                } else {
                    "motion_sensor"
                };
                (device, cloud(rng), "tcp", ephemeral(rng), 443.0)
            }
            "lamp_on" | "lamp_off" => ("smart_plug", cloud(rng), "tcp", ephemeral(rng), 8883.0),
            "tag_sync" => ("tag_manager", cloud(rng), "tcp", ephemeral(rng), 443.0),
            "heartbeat" => (any_device(rng), cloud(rng), "udp", ephemeral(rng), 123.0),
            "dns_lookup" => {
                let dst = if rng.random_bool(0.8) {
                    "192.168.1.1"
                } else {
                    "142.250.80.46"
                };
                (any_device(rng), dst, "udp", ephemeral(rng), 53.0)
            }
            "firmware_check" => {
                let port = if rng.random_bool(0.6) { 443.0 } else { 80.0 };
                (any_device(rng), cloud(rng), "tcp", ephemeral(rng), port)
            }
            "traffic_flooding" => {
                let proto = if rng.random_bool(0.7) { "udp" } else { "icmp" };
                (
                    any_device(rng),
                    victim(rng),
                    proto,
                    ephemeral(rng),
                    rng.random_range(1..65535) as f64,
                )
            }
            "port_scan" => (
                any_device(rng),
                victim(rng),
                "tcp",
                ephemeral(rng),
                rng.random_range(1..=1024) as f64,
            ),
            "cve_1999_0003" => (
                any_device(rng),
                victim(rng),
                "udp",
                ephemeral(rng),
                rng.random_range(32771..=34000) as f64,
            ),
            other => panic!("unknown lab event class {other:?}"),
        };
        let (pkts, bytes, duration) = numeric_signature(event, rng);
        let src_ip = DEVICES
            .iter()
            .find(|d| d.name == device)
            .map(|d| d.ip)
            .unwrap_or("192.168.1.99");
        vec![
            Value::cat(event),
            Value::cat(device),
            Value::cat(protocol),
            Value::cat(src_ip),
            Value::cat(dst_ip),
            Value::num(src_port),
            Value::num(dst_port),
            Value::num(pkts),
            Value::num(bytes),
            Value::num(duration),
        ]
    }

    /// Generates records for a single device only (used by the distributed
    /// NIDS simulation, where each node sees its own traffic). Thin
    /// wrapper draining [`LabSimulator::device_chunk_source`].
    ///
    /// # Errors
    ///
    /// Propagates row-construction failures.
    pub fn generate_for_device(&self, device: &str, n: usize) -> Result<Table, DataError> {
        self.device_chunk_source(device, n).collect(GENERATE_CHUNK)
    }

    /// The knowledge graph this simulator is consistent with.
    pub fn knowledge_graph() -> NetworkKg {
        NetworkKg::lab_default()
    }

    /// Draws one event-class name from the configured benign/attack mix.
    fn draw_event(&self, rng: &mut StdRng) -> &'static str {
        let is_attack = rng.random::<f64>() < self.config.attack_fraction;
        if is_attack {
            weighted_choice(ATTACK_EVENTS, rng)
        } else {
            weighted_choice(BENIGN_EVENTS, rng)
        }
    }
}

/// Chunk size the eager wrappers drain their sources with. Any value gives
/// identical rows (RNG state persists across chunks); this one keeps the
/// transient allocation small.
const GENERATE_CHUNK: usize = 4096;

/// Streaming generator over the full lab record mix (see
/// [`LabSimulator::chunk_source`]).
#[derive(Clone, Debug)]
pub struct LabChunkSource {
    sim: LabSimulator,
    schema: Schema,
    rng: StdRng,
    remaining: usize,
}

impl ChunkSource for LabChunkSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Table>, DataError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let take = self.remaining.min(max_rows.max(1));
        let mut chunk = Table::empty(self.schema.clone());
        for _ in 0..take {
            let event = self.sim.draw_event(&mut self.rng);
            chunk.push_row(self.sim.record_for(event, &mut self.rng))?;
        }
        self.remaining -= take;
        Ok(Some(chunk))
    }
}

/// Streaming generator over one device's traffic (see
/// [`LabSimulator::device_chunk_source`]).
#[derive(Clone, Debug)]
pub struct LabDeviceChunkSource {
    sim: LabSimulator,
    schema: Schema,
    rng: StdRng,
    device: String,
    remaining: usize,
}

impl ChunkSource for LabDeviceChunkSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Table>, DataError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let take = self.remaining.min(max_rows.max(1));
        let mut chunk = Table::empty(self.schema.clone());
        while chunk.n_rows() < take {
            let event = self.sim.draw_event(&mut self.rng);
            let row = self.sim.record_for(event, &mut self.rng);
            // keep only rows originating from this device
            if row[1] == Value::cat(self.device.as_str()) {
                chunk.push_row(row)?;
            }
        }
        self.remaining -= take;
        Ok(Some(chunk))
    }
}

fn hash_name(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

fn weighted_choice(options: &[(&'static str, f64)], rng: &mut StdRng) -> &'static str {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut u = rng.random::<f64>() * total;
    for (name, w) in options {
        u -= w;
        if u <= 0.0 {
            return name;
        }
    }
    options.last().expect("non-empty options").0
}

fn cloud(rng: &mut StdRng) -> &'static str {
    CLOUD_DSTS[rng.random_range(0..CLOUD_DSTS.len())]
}

fn victim(rng: &mut StdRng) -> &'static str {
    DEVICES[rng.random_range(0..DEVICES.len())].ip
}

fn any_device(rng: &mut StdRng) -> &'static str {
    // hub excluded: it does not originate application traffic
    DEVICES[rng.random_range(0..DEVICES.len() - 1)].name
}

fn ephemeral(rng: &mut StdRng) -> f64 {
    rng.random_range(1024..=65535) as f64
}

/// Per-event (packets, bytes, duration) signature: log-normal-ish draws so
/// attacks are separable from benign chatter the way they are in practice.
fn numeric_signature(event: &str, rng: &mut StdRng) -> (f64, f64, f64) {
    let (pkt_mu, byte_per_pkt, dur_mu): (f64, f64, f64) = match event {
        "heartbeat" => (2.0, 80.0, 0.05),
        "dns_lookup" => (2.0, 120.0, 0.03),
        "motion_detected" => (40.0, 900.0, 4.0),
        "lamp_on" | "lamp_off" => (6.0, 200.0, 0.4),
        "tag_sync" => (20.0, 500.0, 2.0),
        "firmware_check" => (120.0, 1100.0, 15.0),
        "traffic_flooding" => (2500.0, 600.0, 8.0),
        "port_scan" => (300.0, 60.0, 20.0),
        "cve_1999_0003" => (12.0, 300.0, 1.0),
        _ => (5.0, 100.0, 0.5),
    };
    let jitter = |mu: f64, rng: &mut StdRng| {
        let z = gaussian(rng);
        (mu * (0.35 * z).exp()).max(1.0)
    };
    let pkts = jitter(pkt_mu, rng).round();
    let bytes = (pkts * jitter(byte_per_pkt, rng)).round();
    let duration = jitter(dur_mu.max(0.01), rng);
    (pkts, bytes, duration)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = (1.0f64 - rng.random::<f64>()).max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment_from_row;

    #[test]
    fn default_size_matches_paper() {
        assert_eq!(LabSimConfig::default().n_records, 14_520);
    }

    #[test]
    fn generates_requested_rows_with_schema() {
        let t = LabSimulator::new(LabSimConfig::small(500, 3))
            .generate()
            .unwrap();
        assert_eq!(t.n_rows(), 500);
        assert_eq!(t.n_cols(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = LabSimulator::new(LabSimConfig::small(100, 5))
            .generate()
            .unwrap();
        let b = LabSimulator::new(LabSimConfig::small(100, 5))
            .generate()
            .unwrap();
        assert_eq!(a, b);
        let c = LabSimulator::new(LabSimConfig::small(100, 6))
            .generate()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn attack_fraction_respected() {
        let t = LabSimulator::new(LabSimConfig::small(5000, 11))
            .generate()
            .unwrap();
        let attacks = LabSimulator::attack_events();
        let n_attack = t
            .cat_column("event")
            .unwrap()
            .iter()
            .filter(|e| attacks.contains(&e.as_str()))
            .count();
        let frac = n_attack as f64 / 5000.0;
        assert!((0.05..0.12).contains(&frac), "attack fraction {frac}");
    }

    #[test]
    fn every_clean_record_is_kg_valid() {
        let t = LabSimulator::new(LabSimConfig::small(800, 13))
            .generate()
            .unwrap();
        let kg = LabSimulator::knowledge_graph();
        for r in 0..t.n_rows() {
            let a = assignment_from_row(&t, r);
            let v = kg.reasoner().is_valid(&a);
            assert!(v.is_valid(), "row {r} invalid: {:?} ({a})", v.violations());
        }
    }

    #[test]
    fn class_imbalance_present() {
        let t = LabSimulator::new(LabSimConfig::small(4000, 17))
            .generate()
            .unwrap();
        let counts = t.category_counts("event").unwrap();
        let heartbeat = counts.get("heartbeat").copied().unwrap_or(0);
        let cve = counts.get("cve_1999_0003").copied().unwrap_or(0);
        assert!(
            heartbeat > 10 * cve.max(1),
            "expected heavy imbalance: {counts:?}"
        );
        assert!(cve > 0, "minority class must still appear");
    }

    #[test]
    fn flooding_has_heavy_packet_signature() {
        let t = LabSimulator::new(LabSimConfig::small(6000, 19))
            .generate()
            .unwrap();
        let events = t.cat_column("event").unwrap().to_vec();
        let pkts = t.num_column("pkt_count").unwrap();
        let mean_for = |name: &str| {
            let vals: Vec<f64> = events
                .iter()
                .zip(pkts)
                .filter(|(e, _)| e.as_str() == name)
                .map(|(_, &p)| p)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean_for("traffic_flooding") > 20.0 * mean_for("heartbeat"));
    }

    #[test]
    fn per_device_stream_filters() {
        let sim = LabSimulator::new(LabSimConfig::small(100, 23));
        let t = sim.generate_for_device("smart_plug", 50).unwrap();
        assert_eq!(t.n_rows(), 50);
        for d in t.cat_column("device").unwrap() {
            assert_eq!(d, "smart_plug");
        }
    }

    #[test]
    fn chunked_generation_is_bit_identical_to_eager() {
        let sim = LabSimulator::new(LabSimConfig::small(400, 31));
        let eager = sim.generate().unwrap();
        for chunk_rows in [1usize, 13, 128, 400, 999] {
            let streamed = sim.chunk_source().collect(chunk_rows).unwrap();
            assert_eq!(streamed, eager, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn chunked_device_stream_is_bit_identical_to_eager() {
        let sim = LabSimulator::new(LabSimConfig::small(100, 37));
        for device in ["blink_camera", "tag_manager"] {
            let eager = sim.generate_for_device(device, 75).unwrap();
            for chunk_rows in [1usize, 9, 75, 200] {
                let streamed = sim
                    .device_chunk_source(device, 75)
                    .collect(chunk_rows)
                    .unwrap();
                assert_eq!(streamed, eager, "{device} chunk_rows={chunk_rows}");
            }
        }
    }

    #[test]
    fn src_ip_always_in_subnet() {
        let t = LabSimulator::new(LabSimConfig::small(300, 29))
            .generate()
            .unwrap();
        for ip in t.cat_column("src_ip").unwrap() {
            assert!(ip.starts_with("192.168.1."), "{ip}");
        }
    }
}
