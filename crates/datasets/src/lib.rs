//! Dataset substrates for the KiNETGAN reproduction (§IV-B).
//!
//! The paper evaluates on (1) a privately collected lab IoT capture of
//! 14,520 Wireshark records and (2) the UNSW-NB15 corpus. Neither ships
//! with this repository — the lab capture was never released and UNSW-NB15
//! cannot be vendored offline — so this crate provides *simulated
//! substitutes* that preserve what the experiments actually exercise
//! (see `DESIGN.md` §3):
//!
//! * [`lab::LabSimulator`]: traffic from the same device/event/attack
//!   inventory as the paper's lab (Blink camera, smart plug, motion sensor,
//!   tag manager; motion/lamp/tag events; traffic flooding, port scanning
//!   and CVE-1999-0003), generated *consistently with*
//!   [`kinet_kg::NetworkKg::lab_default`] so knowledge-guided training has
//!   a well-defined ground truth;
//! * [`unsw::UnswSimulator`]: a schema-faithful UNSW-NB15 generator — all
//!   49 original attributes, 9 attack categories + normal with realistic
//!   imbalance — plus the smaller [`unsw::UnswSimulator::modeling_view`]
//!   used for model training;
//! * [`assignment_from_row`]: the bridge from table rows to reasoner
//!   queries.

pub mod lab;
pub mod unsw;

use kinet_data::{Table, Value};
use kinet_kg::{Assignment, AttrValue};

/// Converts one table row into a reasoner [`Assignment`] (all columns).
///
/// # Panics
///
/// Panics if `row` is out of bounds.
pub fn assignment_from_row(table: &Table, row: usize) -> Assignment {
    let mut a = Assignment::new();
    for (ci, col) in table.schema().iter().enumerate() {
        match table.value(row, ci) {
            Value::Cat(s) => a.set(col.name(), AttrValue::Cat(s)),
            Value::Num(v) => a.set(col.name(), AttrValue::Num(v)),
        };
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_data::{ColumnMeta, Schema};

    #[test]
    fn assignment_covers_all_columns() {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("proto"),
            ColumnMeta::continuous("port"),
        ]);
        let t = Table::from_rows(schema, vec![vec![Value::cat("udp"), Value::num(53.0)]]).unwrap();
        let a = assignment_from_row(&t, 0);
        assert_eq!(a.get_cat("proto"), Some("udp"));
        assert_eq!(a.get_num("port"), Some(53.0));
        assert_eq!(a.len(), 2);
    }
}
