//! The five baseline tabular generators the KiNETGAN paper compares
//! against (§V), each built from scratch on the workspace's own
//! autograd stack and implementing
//! [`kinet_data::synth::TabularSynthesizer`]:
//!
//! * [`ctgan::CtGan`] — conditional GAN with mode-specific normalization
//!   and training-by-sampling (Xu et al., NeurIPS 2019);
//! * [`tvae::Tvae`] — variational autoencoder over the same encoding
//!   (Xu et al., NeurIPS 2019);
//! * [`tablegan::TableGan`] — min-max-scaled GAN with information and
//!   classification losses (Park et al., VLDB 2018); the DCGAN
//!   convolutions of the original are replaced by MLP blocks (see
//!   `DESIGN.md` §3 — the behavioural signature lives in the losses);
//! * [`pategan::PateGan`] — teacher-ensemble GAN with noisy PATE vote
//!   aggregation for differential privacy (Jordon et al., ICLR 2019);
//! * [`octgan::OctGan`] — GAN whose networks contain unrolled neural-ODE
//!   blocks integrated with RK4 (Kim et al., WWW 2021; adjoint replaced by
//!   discretize-then-optimize, see `DESIGN.md` §3).

pub mod common;
pub mod ctgan;
pub mod octgan;
pub mod pategan;
pub mod tablegan;
pub mod tvae;

pub use ctgan::CtGan;
pub use octgan::OctGan;
pub use pategan::PateGan;
pub use tablegan::TableGan;
pub use tvae::Tvae;
