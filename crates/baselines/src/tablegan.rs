//! TableGAN (Park et al., *Data Synthesis based on Generative Adversarial
//! Networks*, VLDB 2018).
//!
//! TableGAN operates on a min-max-scaled numeric view of the record (it
//! predates mode-specific normalization) and adds two auxiliary losses:
//! an **information loss** matching first/second moments of real and
//! generated batches, and a **classification loss** from an auxiliary
//! classifier that keeps the label attribute consistent with the features.
//! Per `DESIGN.md` §3 the original DCGAN convolutions over a reshaped
//! record matrix are replaced by MLP blocks; the loss structure — which is
//! what drives its behaviour in the paper's comparison — is kept.

use crate::common::BaselineConfig;
use kinet_data::synth::{SynthError, TabularSynthesizer};
use kinet_data::{ColumnKind, Table, Value};
use kinet_nn::layers::{Activation, Mlp, MlpConfig};
use kinet_nn::optim::{Adam, Optimizer};
use kinet_nn::{Tape, Var};
use kinet_tensor::{Matrix, MatrixRandomExt};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Min-max encoder mapping every column (categorical codes included) into
/// `[-1, 1]` — TableGAN's representation.
#[derive(Clone, Debug)]
struct MinMaxCodec {
    /// Per column: categorical dictionary (empty for continuous).
    cats: Vec<Vec<String>>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxCodec {
    fn fit(table: &Table) -> Result<Self, SynthError> {
        let mut cats = Vec::new();
        let mut mins = Vec::new();
        let mut maxs = Vec::new();
        for col in table.schema().iter() {
            match col.kind() {
                ColumnKind::Categorical => {
                    let mut dict: Vec<String> = table.cat_column(col.name())?.to_vec();
                    dict.sort();
                    dict.dedup();
                    mins.push(0.0);
                    maxs.push((dict.len().max(2) - 1) as f64);
                    cats.push(dict);
                }
                ColumnKind::Continuous => {
                    let vals = table.num_column(col.name())?;
                    let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    mins.push(lo);
                    maxs.push(if hi > lo { hi } else { lo + 1.0 });
                    cats.push(Vec::new());
                }
            }
        }
        Ok(Self { cats, mins, maxs })
    }

    fn width(&self) -> usize {
        self.mins.len()
    }

    fn encode(&self, table: &Table) -> Matrix {
        let mut out = Matrix::zeros(table.n_rows(), self.width());
        for (ci, col) in table.schema().iter().enumerate() {
            for r in 0..table.n_rows() {
                let raw = match table.value(r, ci) {
                    Value::Cat(s) => self.cats[ci].iter().position(|c| c == &s).unwrap_or(0) as f64,
                    Value::Num(v) => v,
                };
                let scaled = 2.0 * (raw - self.mins[ci]) / (self.maxs[ci] - self.mins[ci]) - 1.0;
                out[(r, ci)] = scaled.clamp(-1.0, 1.0) as f32;
            }
            let _ = col;
        }
        out
    }

    fn decode(&self, m: &Matrix, schema: &kinet_data::Schema) -> Result<Table, SynthError> {
        let mut rows = Vec::with_capacity(m.rows());
        for r in 0..m.rows() {
            let mut row = Vec::with_capacity(self.width());
            for (ci, col) in schema.iter().enumerate() {
                let raw = (m[(r, ci)].clamp(-1.0, 1.0) as f64 + 1.0) / 2.0
                    * (self.maxs[ci] - self.mins[ci])
                    + self.mins[ci];
                match col.kind() {
                    ColumnKind::Categorical => {
                        let k = self.cats[ci].len();
                        let code = (raw.round() as usize).min(k.saturating_sub(1));
                        row.push(Value::cat(self.cats[ci][code].clone()));
                    }
                    ColumnKind::Continuous => row.push(Value::num(raw)),
                }
            }
            rows.push(row);
        }
        Ok(Table::from_rows(schema.clone(), rows)?)
    }
}

struct Fitted {
    codec: MinMaxCodec,
    gen: Mlp,
    disc: Mlp,
    table: Table,
}

/// The TableGAN baseline synthesizer.
pub struct TableGan {
    config: BaselineConfig,
    /// Index of the label column used by the classification loss (defaults
    /// to the last categorical column).
    label_column: Option<String>,
    fitted: Option<Fitted>,
}

impl TableGan {
    /// Creates an unfitted TableGAN.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            label_column: None,
            fitted: None,
        }
    }

    /// Overrides the label column used by the classification loss.
    pub fn with_label_column(mut self, name: &str) -> Self {
        self.label_column = Some(name.to_string());
        self
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

impl TabularSynthesizer for TableGan {
    fn name(&self) -> &str {
        "TableGAN"
    }

    fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
        if table.is_empty() {
            return Err(SynthError::Training("training table is empty".into()));
        }
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let codec = MinMaxCodec::fit(table)?;
        let width = codec.width();

        let label_idx = match &self.label_column {
            Some(name) => table
                .schema()
                .index_of(name)
                .ok_or_else(|| SynthError::Training(format!("unknown label column {name:?}")))?,
            None => {
                let mut found = 0;
                for (i, c) in table.schema().iter().enumerate() {
                    if c.kind() == ColumnKind::Categorical {
                        found = i;
                    }
                }
                found
            }
        };

        let gen_cfg =
            MlpConfig::new(cfg.z_dim, &cfg.hidden, width).with_activation(Activation::Relu);
        let gen = Mlp::new(&gen_cfg, &mut rng);
        let disc_cfg = MlpConfig::new(width, &cfg.hidden, 1)
            .with_activation(Activation::LeakyRelu(0.2))
            .with_dropout(0.25);
        let disc = Mlp::new(&disc_cfg, &mut rng);
        // classifier: predicts the scaled label from the other columns
        let clf_cfg = MlpConfig::new(width - 1, &cfg.hidden, 1).with_activation(Activation::Relu);
        let clf = Mlp::new(&clf_cfg, &mut rng);

        let g_params = gen.params();
        let d_params = disc.params();
        let c_params = clf.params();
        let mut g_opt = Adam::with_betas(g_params.clone(), cfg.lr, 0.5, 0.9);
        let mut d_opt = Adam::with_betas(d_params.clone(), cfg.lr, 0.5, 0.9);
        let mut c_opt = Adam::new(c_params.clone(), cfg.lr);

        let encoded = codec.encode(table);
        let steps = (table.n_rows() / cfg.batch_size).max(1);
        fn drop_label<'t>(v: Var<'t>, label_idx: usize) -> Var<'t> {
            // remove the label column for the classifier input
            let (_, w) = v.shape();
            let left = v.slice_cols(0, label_idx);
            let right = v.slice_cols(label_idx + 1, w);
            if label_idx == 0 {
                right
            } else if label_idx + 1 == w {
                left
            } else {
                Var::concat_cols(&[left, right])
            }
        }

        for _epoch in 0..cfg.epochs {
            for _step in 0..steps {
                let idx: Vec<usize> = (0..cfg.batch_size)
                    .map(|_| rng.random_range(0..table.n_rows()))
                    .collect();
                let real = encoded.select_rows(&idx);

                // classifier step (on real data)
                {
                    let tape = Tape::new();
                    let x = tape.constant(real.clone());
                    let features = drop_label(x, label_idx);
                    let pred = clf.forward(&tape, features, true, &mut rng);
                    let target = Matrix::from_fn(cfg.batch_size, 1, |r, _| real[(r, label_idx)]);
                    let loss = pred.tanh().mse(&target);
                    tape.backward(loss);
                    c_opt.step();
                    c_opt.zero_grad();
                }
                // discriminator step
                {
                    let tape = Tape::new();
                    let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                    let fake = gen.forward(&tape, tape.constant(z), true, &mut rng).tanh();
                    let d_real = disc.forward(&tape, tape.constant(real.clone()), true, &mut rng);
                    let d_fake = disc.forward(&tape, fake, true, &mut rng);
                    let loss = kinet_nn::loss::gan_discriminator_loss(d_real, d_fake, 0.9);
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        d_params.clip_grad_norm(cfg.clip_norm);
                    }
                    d_opt.step();
                    d_opt.zero_grad();
                    g_opt.zero_grad();
                }
                // generator step: adversarial + information + classification
                {
                    let tape = Tape::new();
                    let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                    let fake = gen.forward(&tape, tape.constant(z), true, &mut rng).tanh();
                    let d_fake = disc.forward(&tape, fake, true, &mut rng);
                    let adv = kinet_nn::loss::gan_generator_loss(d_fake);
                    // information loss: match batch mean and variance
                    let real_mu = real.mean_rows();
                    let real_var = real.var_rows();
                    let fake_mu = fake.mean_rows();
                    let centered = fake.sub_row(fake_mu);
                    let fake_var = centered.mul(centered).mean_rows();
                    let info = fake_mu.mse(&real_mu).add(fake_var.mse(&real_var));
                    // classification loss: generated label consistent with
                    // the (frozen) classifier's prediction
                    let features = drop_label(fake, label_idx);
                    let pred = clf.forward(&tape, features, false, &mut rng).tanh();
                    let label = fake.slice_cols(label_idx, label_idx + 1);
                    let class = label.sub(pred).mul(label.sub(pred)).mean();
                    let loss = adv.add(info.scale(1.0)).add(class.scale(1.0));
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        g_params.clip_grad_norm(cfg.clip_norm);
                    }
                    g_opt.step();
                    g_opt.zero_grad();
                    d_opt.zero_grad();
                    c_params.zero_grad();
                }
            }
        }
        self.fitted = Some(Fitted {
            codec,
            gen,
            disc,
            table: table.clone(),
        });
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
        let f = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let z = Matrix::randn(n, self.config.z_dim, 0.0, 1.0, &mut rng);
        let raw = f.gen.infer(&z).map(f32::tanh);
        f.codec.decode(&raw, f.table.schema())
    }

    fn critic_scores(&self, table: &Table) -> Option<Vec<f64>> {
        let f = self.fitted.as_ref()?;
        let encoded = f.codec.encode(table);
        let s = f.disc.infer(&encoded);
        Some(s.column(0).iter().map(|&v| v as f64).collect())
    }
}

impl std::fmt::Debug for TableGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TableGan(fitted={})", self.fitted.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    fn data(n: usize, seed: u64) -> Table {
        LabSimulator::new(LabSimConfig::small(n, seed))
            .generate()
            .unwrap()
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            epochs: 2,
            batch_size: 32,
            z_dim: 16,
            hidden: vec![32],
            ..Default::default()
        }
    }

    #[test]
    fn fit_sample_roundtrip() {
        let t = data(300, 1);
        let mut m = TableGan::new(cfg()).with_label_column("event");
        m.fit(&t).unwrap();
        let s = m.sample(50, 2).unwrap();
        assert_eq!(s.n_rows(), 50);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn codec_roundtrip_is_lossless_for_categories() {
        let t = data(100, 2);
        let codec = MinMaxCodec::fit(&t).unwrap();
        let enc = codec.encode(&t);
        let dec = codec.decode(&enc, t.schema()).unwrap();
        assert_eq!(
            dec.cat_column("event").unwrap(),
            t.cat_column("event").unwrap()
        );
        assert_eq!(
            dec.cat_column("protocol").unwrap(),
            t.cat_column("protocol").unwrap()
        );
    }

    #[test]
    fn unknown_label_column_rejected() {
        let t = data(60, 3);
        let mut m = TableGan::new(cfg()).with_label_column("ghost");
        assert!(m.fit(&t).is_err());
    }

    #[test]
    fn deterministic_sampling() {
        let t = data(200, 4);
        let mut m = TableGan::new(cfg());
        m.fit(&t).unwrap();
        assert_eq!(m.sample(30, 5).unwrap(), m.sample(30, 5).unwrap());
    }

    #[test]
    fn critic_scores_finite() {
        let t = data(150, 5);
        let mut m = TableGan::new(cfg());
        m.fit(&t).unwrap();
        assert!(m.critic_scores(&t).unwrap().iter().all(|v| v.is_finite()));
    }
}
