//! PATE-GAN (Jordon et al., *PATE-GAN: Generating Synthetic Data with
//! Differential Privacy Guarantees*, ICLR 2019).
//!
//! `k` teacher discriminators are trained on disjoint partitions of the
//! real data; a student discriminator never sees real data — it is trained
//! on generated samples labeled by the Laplace-noised majority vote of the
//! teachers (the PATE mechanism); the generator trains against the
//! student. The noise scale is `1/lambda` per query, giving the
//! data-dependent (ε, δ) guarantees of the original paper.

use crate::common::{apply_heads, fit_transformer, BaselineConfig};
use kinet_data::synth::{SynthError, TabularSynthesizer};
use kinet_data::transform::DataTransformer;
use kinet_data::Table;
use kinet_nn::layers::{Activation, Mlp, MlpConfig};
use kinet_nn::optim::{Adam, Optimizer};
use kinet_nn::Tape;
use kinet_tensor::{Matrix, MatrixRandomExt};
use rand::{rngs::StdRng, RngExt, SeedableRng};

struct Fitted {
    transformer: DataTransformer,
    gen: Mlp,
    student: Mlp,
    table: Table,
}

/// The PATE-GAN baseline synthesizer.
pub struct PateGan {
    config: BaselineConfig,
    n_teachers: usize,
    /// Laplace noise inverse-scale for the PATE vote (larger = less noise,
    /// weaker privacy).
    lambda: f64,
    fitted: Option<Fitted>,
}

impl PateGan {
    /// Creates an unfitted PATE-GAN with 5 teachers and `lambda = 1`.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            n_teachers: 5,
            lambda: 1.0,
            fitted: None,
        }
    }

    /// Sets the number of teacher discriminators.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_teachers(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one teacher");
        self.n_teachers = n;
        self
    }

    /// Sets the Laplace inverse-scale of the vote noise.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        self.lambda = lambda;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

fn laplace(scale: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-300).ln()
}

impl TabularSynthesizer for PateGan {
    fn name(&self) -> &str {
        "PATEGAN"
    }

    fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
        if table.n_rows() < self.n_teachers * 2 {
            return Err(SynthError::Training(format!(
                "need at least {} rows for {} teachers",
                self.n_teachers * 2,
                self.n_teachers
            )));
        }
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transformer = fit_transformer(table, cfg)?;
        let width = transformer.width();
        let heads = transformer.head_layout();

        let gen_cfg =
            MlpConfig::new(cfg.z_dim, &cfg.hidden, width).with_activation(Activation::Relu);
        let gen = Mlp::new(&gen_cfg, &mut rng);
        let disc_cfg =
            MlpConfig::new(width, &cfg.hidden, 1).with_activation(Activation::LeakyRelu(0.2));
        let teachers: Vec<Mlp> = (0..self.n_teachers)
            .map(|_| Mlp::new(&disc_cfg, &mut rng))
            .collect();
        let student = Mlp::new(&disc_cfg, &mut rng);

        let g_params = gen.params();
        let s_params = student.params();
        let mut g_opt = Adam::with_betas(g_params.clone(), cfg.lr, 0.5, 0.9);
        let mut s_opt = Adam::with_betas(s_params.clone(), cfg.lr, 0.5, 0.9);
        let mut t_opts: Vec<Adam> = teachers
            .iter()
            .map(|t| Adam::with_betas(t.params(), cfg.lr, 0.5, 0.9))
            .collect();

        // disjoint partitions, one per teacher
        let encoded = transformer.transform(table, &mut rng);
        let mut order: Vec<usize> = (0..table.n_rows()).collect();
        // deterministic shuffle
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let partition_size = order.len() / self.n_teachers;
        let partitions: Vec<Vec<usize>> = (0..self.n_teachers)
            .map(|t| order[t * partition_size..(t + 1) * partition_size].to_vec())
            .collect();

        let steps = (table.n_rows() / cfg.batch_size).max(1);
        for _epoch in 0..cfg.epochs {
            for _step in 0..steps {
                // --- teachers: each on its own partition vs fresh fakes ---
                let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                for (t_idx, teacher) in teachers.iter().enumerate() {
                    let part = &partitions[t_idx];
                    let idx: Vec<usize> = (0..cfg.batch_size)
                        .map(|_| part[rng.random_range(0..part.len())])
                        .collect();
                    let real = encoded.select_rows(&idx);
                    let tape = Tape::new();
                    let logits = gen.forward(&tape, tape.constant(z.clone()), true, &mut rng);
                    let (fake, _) = apply_heads(logits, &heads, cfg.tau, &mut rng);
                    let d_real = teacher.forward(&tape, tape.constant(real), true, &mut rng);
                    let d_fake = teacher.forward(&tape, fake, true, &mut rng);
                    let loss = kinet_nn::loss::gan_discriminator_loss(d_real, d_fake, 1.0);
                    tape.backward(loss);
                    t_opts[t_idx].step();
                    t_opts[t_idx].zero_grad();
                    g_params.zero_grad();
                }

                // --- student: on generated samples with noisy PATE labels ---
                {
                    let tape = Tape::new();
                    let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                    let logits = gen.forward(&tape, tape.constant(z), true, &mut rng);
                    let (fake, _) = apply_heads(logits, &heads, cfg.tau, &mut rng);
                    let fake_value = fake.value();
                    // PATE vote: each teacher classifies; add Laplace noise
                    let mut votes = vec![0.0f64; cfg.batch_size];
                    for teacher in &teachers {
                        let scores = teacher.infer(&fake_value);
                        for (r, v) in votes.iter_mut().enumerate() {
                            if scores[(r, 0)] > 0.0 {
                                *v += 1.0;
                            }
                        }
                    }
                    let target = Matrix::from_fn(cfg.batch_size, 1, |r, _| {
                        let noisy = votes[r] + laplace(1.0 / self.lambda, &mut rng);
                        if noisy > self.n_teachers as f64 / 2.0 {
                            1.0
                        } else {
                            0.0
                        }
                    });
                    let s_logits = student.forward(&tape, fake, true, &mut rng);
                    let loss = s_logits.bce_with_logits(&target);
                    tape.backward(loss);
                    s_opt.step();
                    s_opt.zero_grad();
                    g_params.zero_grad();
                }

                // --- generator: fool the student ---
                {
                    let tape = Tape::new();
                    let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                    let logits = gen.forward(&tape, tape.constant(z), true, &mut rng);
                    let (fake, _) = apply_heads(logits, &heads, cfg.tau, &mut rng);
                    let s_logits = student.forward(&tape, fake, true, &mut rng);
                    let loss = kinet_nn::loss::gan_generator_loss(s_logits);
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        g_params.clip_grad_norm(cfg.clip_norm);
                    }
                    g_opt.step();
                    g_opt.zero_grad();
                    s_params.zero_grad();
                }
            }
        }
        self.fitted = Some(Fitted {
            transformer,
            gen,
            student,
            table: table.clone(),
        });
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
        let f = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let heads = f.transformer.head_layout();
        crate::common::sample_in_batches(
            f.table.schema().clone(),
            n,
            self.config.batch_size,
            &mut rng,
            |want, rng| {
                let z = Matrix::randn(want, self.config.z_dim, 0.0, 1.0, rng);
                let tape = Tape::new();
                let logits = f.gen.forward(&tape, tape.constant(z), false, rng);
                let (fake, _) = apply_heads(logits, &heads, self.config.tau, rng);
                f.transformer
                    .inverse_transform(&fake.value())
                    .map_err(Into::into)
            },
        )
    }

    fn critic_scores(&self, table: &Table) -> Option<Vec<f64>> {
        // The student never saw real data — by construction its scores leak
        // little membership signal. This is the property Figure 7 rewards.
        let f = self.fitted.as_ref()?;
        let encoded = f.transformer.transform_deterministic(table);
        let s = f.student.infer(&encoded);
        Some(s.column(0).iter().map(|&v| v as f64).collect())
    }
}

impl std::fmt::Debug for PateGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PateGan(teachers={}, lambda={}, fitted={})",
            self.n_teachers,
            self.lambda,
            self.fitted.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    fn data(n: usize, seed: u64) -> Table {
        LabSimulator::new(LabSimConfig::small(n, seed))
            .generate()
            .unwrap()
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            epochs: 2,
            batch_size: 32,
            z_dim: 16,
            hidden: vec![32],
            max_modes: 3,
            ..Default::default()
        }
    }

    #[test]
    fn fit_sample_roundtrip() {
        let t = data(300, 1);
        let mut m = PateGan::new(cfg()).with_teachers(3);
        m.fit(&t).unwrap();
        let s = m.sample(60, 2).unwrap();
        assert_eq!(s.n_rows(), 60);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn too_few_rows_for_teachers() {
        let t = data(8, 2);
        let mut m = PateGan::new(cfg()).with_teachers(5);
        assert!(m.fit(&t).is_err());
    }

    #[test]
    fn laplace_noise_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..5000).map(|_| laplace(1.0, &mut rng)).sum::<f64>() / 5000.0;
        assert!(mean.abs() < 0.1, "laplace mean {mean}");
    }

    #[test]
    fn deterministic_sampling() {
        let t = data(200, 4);
        let mut m = PateGan::new(cfg()).with_teachers(2);
        m.fit(&t).unwrap();
        assert_eq!(m.sample(30, 6).unwrap(), m.sample(30, 6).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one teacher")]
    fn zero_teachers_panics() {
        let _ = PateGan::new(cfg()).with_teachers(0);
    }
}
