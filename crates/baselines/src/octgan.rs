//! OCT-GAN (Kim et al., *OCT-GAN: Neural ODE-based Conditional Tabular
//! GANs*, WWW 2021).
//!
//! Both networks carry a neural-ODE block: the hidden state evolves as
//! `dh/dt = f(h, t)` with `f` an MLP, integrated over `t ∈ [0, 1]`. The
//! original uses the adjoint method; per `DESIGN.md` §3 we integrate with
//! a fixed-step RK4 unroll and backpropagate through the steps
//! (discretize-then-optimize) — identical forward semantics, simpler
//! reverse pass.

use crate::common::{apply_heads, fit_transformer, BaselineConfig};
use kinet_data::synth::{SynthError, TabularSynthesizer};
use kinet_data::transform::DataTransformer;
use kinet_data::Table;
use kinet_nn::layers::{Activation, Linear, Mlp, MlpConfig};
use kinet_nn::optim::{Adam, Optimizer};
use kinet_nn::{ParamSet, Tape, Var};
use kinet_tensor::{Matrix, MatrixRandomExt};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// An ODE block `dh/dt = f(h, t)` with `f` a two-layer MLP over `[h, t]`,
/// integrated by RK4 in `steps` fixed steps over `t ∈ [0, 1]`.
pub struct OdeBlock {
    fc1: Linear,
    fc2: Linear,
    dim: usize,
    steps: usize,
}

impl OdeBlock {
    /// Creates a block over `dim`-wide states.
    pub fn new(dim: usize, hidden: usize, steps: usize, rng: &mut impl rand::Rng) -> Self {
        assert!(steps > 0, "ODE integration needs at least one step");
        Self {
            fc1: Linear::new(dim + 1, hidden, rng),
            fc2: Linear::new(hidden, dim, rng),
            dim,
            steps,
        }
    }

    fn dynamics<'t>(&self, tape: &'t Tape, h: Var<'t>, t: f32) -> Var<'t> {
        let (batch, _) = h.shape();
        let t_col = tape.constant(Matrix::full(batch, 1, t));
        let input = Var::concat_cols(&[h, t_col]);
        let mid = self.fc1.forward(tape, input).tanh();
        self.fc2.forward(tape, mid)
    }

    /// Integrates the state forward with RK4.
    pub fn forward<'t>(&self, tape: &'t Tape, h0: Var<'t>) -> Var<'t> {
        assert_eq!(h0.shape().1, self.dim, "ODE state width mismatch");
        let dt = 1.0 / self.steps as f32;
        let mut h = h0;
        for s in 0..self.steps {
            let t = s as f32 * dt;
            let k1 = self.dynamics(tape, h, t);
            let k2 = self.dynamics(tape, h.add(k1.scale(dt / 2.0)), t + dt / 2.0);
            let k3 = self.dynamics(tape, h.add(k2.scale(dt / 2.0)), t + dt / 2.0);
            let k4 = self.dynamics(tape, h.add(k3.scale(dt)), t + dt);
            let incr = k1
                .add(k2.scale(2.0))
                .add(k3.scale(2.0))
                .add(k4)
                .scale(dt / 6.0);
            h = h.add(incr);
        }
        h
    }

    /// Trainable parameters of the dynamics network.
    pub fn params(&self) -> ParamSet {
        let mut p = self.fc1.params();
        p.extend(&self.fc2.params());
        p
    }
}

struct Fitted {
    transformer: DataTransformer,
    gen_in: Linear,
    gen_ode: OdeBlock,
    gen_out: Linear,
    disc_in: Linear,
    disc_ode: OdeBlock,
    disc_out: Mlp,
    table: Table,
}

/// The OCT-GAN baseline synthesizer.
pub struct OctGan {
    config: BaselineConfig,
    ode_steps: usize,
    fitted: Option<Fitted>,
}

impl OctGan {
    /// Creates an unfitted OCT-GAN with 4 RK4 steps per block.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            ode_steps: 4,
            fitted: None,
        }
    }

    /// Sets the RK4 step count.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn with_ode_steps(mut self, steps: usize) -> Self {
        assert!(steps > 0, "ODE integration needs at least one step");
        self.ode_steps = steps;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    fn gen_forward<'t>(
        &self,
        f: &Fitted,
        tape: &'t Tape,
        z: &Matrix,
        tau: f32,
        rng: &mut StdRng,
    ) -> Var<'t> {
        let h0 = f.gen_in.forward(tape, tape.constant(z.clone())).tanh();
        let h1 = f.gen_ode.forward(tape, h0);
        let logits = f.gen_out.forward(tape, h1);
        let (fake, _) = apply_heads(logits, &f.transformer.head_layout(), tau, rng);
        fake
    }

    fn disc_forward<'t>(
        &self,
        f: &Fitted,
        tape: &'t Tape,
        rows: Var<'t>,
        training: bool,
        rng: &mut StdRng,
    ) -> Var<'t> {
        let h0 = f.disc_in.forward(tape, rows).leaky_relu(0.2);
        let h1 = f.disc_ode.forward(tape, h0);
        f.disc_out.forward(tape, h1, training, rng)
    }
}

impl TabularSynthesizer for OctGan {
    fn name(&self) -> &str {
        "OCTGAN"
    }

    fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
        if table.is_empty() {
            return Err(SynthError::Training("training table is empty".into()));
        }
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transformer = fit_transformer(table, cfg)?;
        let width = transformer.width();
        let h = cfg.hidden[0];

        let fitted = Fitted {
            gen_in: Linear::new(cfg.z_dim, h, &mut rng),
            gen_ode: OdeBlock::new(h, h, self.ode_steps, &mut rng),
            gen_out: Linear::new(h, width, &mut rng),
            disc_in: Linear::new(width, h, &mut rng),
            disc_ode: OdeBlock::new(h, h, self.ode_steps, &mut rng),
            disc_out: Mlp::new(
                &MlpConfig::new(h, &[h], 1).with_activation(Activation::LeakyRelu(0.2)),
                &mut rng,
            ),
            transformer,
            table: table.clone(),
        };

        let mut g_params = fitted.gen_in.params();
        g_params.extend(&fitted.gen_ode.params());
        g_params.extend(&fitted.gen_out.params());
        let mut d_params = fitted.disc_in.params();
        d_params.extend(&fitted.disc_ode.params());
        d_params.extend(&fitted.disc_out.params());
        let mut g_opt = Adam::with_betas(g_params.clone(), cfg.lr, 0.5, 0.9);
        let mut d_opt = Adam::with_betas(d_params.clone(), cfg.lr, 0.5, 0.9);

        let encoded = fitted.transformer.transform(table, &mut rng);
        let steps = (table.n_rows() / cfg.batch_size).max(1);

        for _epoch in 0..cfg.epochs {
            for _step in 0..steps {
                let idx: Vec<usize> = (0..cfg.batch_size)
                    .map(|_| rng.random_range(0..table.n_rows()))
                    .collect();
                let real = encoded.select_rows(&idx);
                // discriminator
                {
                    let tape = Tape::new();
                    let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                    let fake = self.gen_forward(&fitted, &tape, &z, cfg.tau, &mut rng);
                    let d_real = self.disc_forward(
                        &fitted,
                        &tape,
                        tape.constant(real.clone()),
                        true,
                        &mut rng,
                    );
                    let d_fake = self.disc_forward(&fitted, &tape, fake, true, &mut rng);
                    let loss = kinet_nn::loss::gan_discriminator_loss(d_real, d_fake, 0.9);
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        d_params.clip_grad_norm(cfg.clip_norm);
                    }
                    d_opt.step();
                    d_opt.zero_grad();
                    g_opt.zero_grad();
                }
                // generator
                {
                    let tape = Tape::new();
                    let z = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                    let fake = self.gen_forward(&fitted, &tape, &z, cfg.tau, &mut rng);
                    let d_fake = self.disc_forward(&fitted, &tape, fake, true, &mut rng);
                    let loss = kinet_nn::loss::gan_generator_loss(d_fake);
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        g_params.clip_grad_norm(cfg.clip_norm);
                    }
                    g_opt.step();
                    g_opt.zero_grad();
                    d_opt.zero_grad();
                }
            }
        }
        self.fitted = Some(fitted);
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
        let f = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(seed);
        crate::common::sample_in_batches(
            f.table.schema().clone(),
            n,
            self.config.batch_size,
            &mut rng,
            |want, rng| {
                let z = Matrix::randn(want, self.config.z_dim, 0.0, 1.0, rng);
                let tape = Tape::new();
                let fake = self.gen_forward(f, &tape, &z, self.config.tau, rng);
                f.transformer
                    .inverse_transform(&fake.value())
                    .map_err(Into::into)
            },
        )
    }

    fn critic_scores(&self, table: &Table) -> Option<Vec<f64>> {
        let f = self.fitted.as_ref()?;
        let encoded = f.transformer.transform_deterministic(table);
        let mut rng = StdRng::seed_from_u64(0);
        let tape = Tape::new();
        let s = self
            .disc_forward(f, &tape, tape.constant(encoded), false, &mut rng)
            .value();
        Some(s.column(0).iter().map(|&v| v as f64).collect())
    }
}

impl std::fmt::Debug for OctGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OctGan(ode_steps={}, fitted={})",
            self.ode_steps,
            self.fitted.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    fn data(n: usize, seed: u64) -> Table {
        LabSimulator::new(LabSimConfig::small(n, seed))
            .generate()
            .unwrap()
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            epochs: 2,
            batch_size: 32,
            z_dim: 16,
            hidden: vec![32],
            max_modes: 3,
            ..Default::default()
        }
    }

    #[test]
    fn ode_block_identity_dynamics_limit() {
        // With zeroed dynamics weights the block is the identity map.
        let mut rng = StdRng::seed_from_u64(0);
        let block = OdeBlock::new(3, 8, 4, &mut rng);
        for p in block.params().iter() {
            p.update(|m| *m = kinet_tensor::Matrix::zeros(m.rows(), m.cols()));
        }
        let tape = Tape::new();
        let h0 = tape.constant(Matrix::from_rows(&[&[1.0, -2.0, 0.5]]));
        let h1 = block.forward(&tape, h0);
        assert_eq!(h1.value(), Matrix::from_rows(&[&[1.0, -2.0, 0.5]]));
    }

    #[test]
    fn ode_block_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = OdeBlock::new(4, 8, 3, &mut rng);
        let tape = Tape::new();
        let h0 = tape.constant(Matrix::ones(2, 4));
        let h1 = block.forward(&tape, h0);
        let loss = h1.mse(&Matrix::zeros(2, 4));
        tape.backward(loss);
        assert!(block.params().grad_norm() > 0.0);
    }

    #[test]
    fn fit_sample_roundtrip() {
        let t = data(300, 1);
        let mut m = OctGan::new(cfg()).with_ode_steps(2);
        m.fit(&t).unwrap();
        let s = m.sample(50, 2).unwrap();
        assert_eq!(s.n_rows(), 50);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn deterministic_sampling() {
        let t = data(200, 3);
        let mut m = OctGan::new(cfg()).with_ode_steps(2);
        m.fit(&t).unwrap();
        assert_eq!(m.sample(25, 4).unwrap(), m.sample(25, 4).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_ode_steps_panics() {
        let _ = OctGan::new(cfg()).with_ode_steps(0);
    }
}
