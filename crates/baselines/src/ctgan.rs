//! CTGAN (Xu et al., *Modeling Tabular Data using Conditional GAN*,
//! NeurIPS 2019) — the strongest general-purpose baseline in the paper's
//! comparison and the architecture KiNETGAN extends.
//!
//! Faithful elements: mode-specific normalization, a single-column
//! condition vector with log-frequency training-by-sampling, a residual
//! generator, Gumbel-Softmax heads, and the generator's cross-entropy
//! penalty on the conditioned column. Deviation (documented in `DESIGN.md`
//! §3): the WGAN-GP critic is replaced by a non-saturating GAN loss, since
//! gradient penalties need second-order autograd.

use crate::common::{apply_heads, fit_transformer, BaselineConfig};
use kinet_data::condition::ConditionVectorSpec;
use kinet_data::sampler::{BalanceMode, TrainingSampler};
use kinet_data::synth::{SynthError, TabularSynthesizer};
use kinet_data::transform::DataTransformer;
use kinet_data::{ColumnKind, Table};
use kinet_nn::layers::{Activation, Linear, Mlp, MlpConfig, ResidualBlock};
use kinet_nn::optim::{Adam, Optimizer};
use kinet_nn::{ParamSet, Tape, Var};
use kinet_tensor::{Matrix, MatrixRandomExt};
use rand::{rngs::StdRng, SeedableRng};

struct Nets {
    blocks: Vec<ResidualBlock>,
    out: Linear,
    disc: Mlp,
}

struct Fitted {
    transformer: DataTransformer,
    cond_spec: ConditionVectorSpec,
    sampler: TrainingSampler,
    nets: Nets,
    table: Table,
    head_of_col: Vec<usize>,
}

/// The CTGAN baseline synthesizer.
///
/// ```no_run
/// use kinet_baselines::{common::BaselineConfig, CtGan};
/// use kinet_data::synth::TabularSynthesizer;
/// use kinet_datasets::lab::{LabSimConfig, LabSimulator};
///
/// let data = LabSimulator::new(LabSimConfig::small(1000, 0)).generate()?;
/// let mut model = CtGan::new(BaselineConfig::fast_demo());
/// model.fit(&data)?;
/// let synth = model.sample(500, 1)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CtGan {
    config: BaselineConfig,
    fitted: Option<Fitted>,
}

impl CtGan {
    /// Creates an unfitted CTGAN.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            fitted: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    fn gen_forward<'t>(
        &self,
        nets: &Nets,
        tape: &'t Tape,
        c: &Matrix,
        heads: &[kinet_data::transform::HeadSpec],
        training: bool,
        rng: &mut StdRng,
    ) -> (Var<'t>, Vec<Var<'t>>) {
        let z = Matrix::randn(c.rows(), self.config.z_dim, 0.0, 1.0, rng);
        let mut h = tape.constant(Matrix::hstack(&[&z, c]));
        for b in &nets.blocks {
            h = b.forward(tape, h, training);
        }
        let logits = nets.out.forward(tape, h);
        apply_heads(logits, heads, self.config.tau, rng)
    }
}

impl TabularSynthesizer for CtGan {
    fn name(&self) -> &str {
        "CTGAN"
    }

    fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
        if table.is_empty() {
            return Err(SynthError::Training("training table is empty".into()));
        }
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transformer = fit_transformer(table, cfg)?;
        let cat_cols = table.schema().categorical_names();
        if cat_cols.is_empty() {
            return Err(SynthError::Training(
                "CTGAN requires at least one categorical column".into(),
            ));
        }
        let cond_spec = ConditionVectorSpec::fit(table, &cat_cols)?;
        let sampler = TrainingSampler::fit(table, &cond_spec)?;

        // map conditional (categorical) columns to head indices
        let mut head_of_col = Vec::new();
        let mut h = 0;
        for col in table.schema().iter() {
            head_of_col.push(h);
            h += match col.kind() {
                ColumnKind::Categorical => 1,
                ColumnKind::Continuous => 2,
            };
        }

        let mut dim = cfg.z_dim + cond_spec.width();
        let mut blocks = Vec::new();
        for &w in &cfg.hidden {
            let b = ResidualBlock::new(dim, w, &mut rng);
            dim = b.out_dim();
            blocks.push(b);
        }
        let out = Linear::new(dim, transformer.width(), &mut rng);
        let disc_cfg = MlpConfig::new(transformer.width() + cond_spec.width(), &cfg.hidden, 1)
            .with_activation(Activation::LeakyRelu(0.2))
            .with_dropout(0.25);
        let disc = Mlp::new(&disc_cfg, &mut rng);
        let nets = Nets { blocks, out, disc };

        let mut g_params = ParamSet::new();
        for b in &nets.blocks {
            g_params.extend(&b.params());
        }
        g_params.extend(&nets.out.params());
        let d_params = nets.disc.params();
        let mut g_opt = Adam::with_betas(g_params.clone(), cfg.lr, 0.5, 0.9);
        let mut d_opt = Adam::with_betas(d_params.clone(), cfg.lr, 0.5, 0.9);

        let encoded = transformer.transform(table, &mut rng);
        let steps = (table.n_rows() / cfg.batch_size).max(1);
        let fitted = Fitted {
            transformer,
            cond_spec,
            sampler,
            nets,
            table: table.clone(),
            head_of_col,
        };

        for _epoch in 0..cfg.epochs {
            for _step in 0..steps {
                // CTGAN: single-column condition, log-frequency category
                let conds = fitted.sampler.sample_batch(
                    &fitted.table,
                    &fitted.cond_spec,
                    BalanceMode::LogFreq,
                    false,
                    cfg.batch_size,
                    &mut rng,
                )?;
                let c = Matrix::from_fn(cfg.batch_size, fitted.cond_spec.width(), |r, j| {
                    conds[r].vector[j]
                });
                let rows: Vec<usize> = conds.iter().map(|s| s.row).collect();
                let real = encoded.select_rows(&rows);

                // discriminator step
                {
                    let tape = Tape::new();
                    let (fake, _) = self.gen_forward(
                        &fitted.nets,
                        &tape,
                        &c,
                        &fitted.transformer.head_layout(),
                        true,
                        &mut rng,
                    );
                    let real_in = tape.constant(Matrix::hstack(&[&real, &c]));
                    let d_real = fitted.nets.disc.forward(&tape, real_in, true, &mut rng);
                    let fake_in = Var::concat_cols(&[fake, tape.constant(c.clone())]);
                    let d_fake = fitted.nets.disc.forward(&tape, fake_in, true, &mut rng);
                    let loss = kinet_nn::loss::gan_discriminator_loss(d_real, d_fake, 0.9);
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        d_params.clip_grad_norm(cfg.clip_norm);
                    }
                    d_opt.step();
                    d_opt.zero_grad();
                    g_opt.zero_grad();
                }
                // generator step
                {
                    let tape = Tape::new();
                    let (fake, head_logits) = self.gen_forward(
                        &fitted.nets,
                        &tape,
                        &c,
                        &fitted.transformer.head_layout(),
                        true,
                        &mut rng,
                    );
                    let fake_in = Var::concat_cols(&[fake, tape.constant(c.clone())]);
                    let d_fake = fitted.nets.disc.forward(&tape, fake_in, true, &mut rng);
                    let mut loss = kinet_nn::loss::gan_generator_loss(d_fake);
                    // cross-entropy on the boosted column only (CTGAN)
                    // group conditions by boosted column for batched CE
                    for (spec_idx, name) in fitted.cond_spec.columns().iter().enumerate() {
                        let members: Vec<usize> = conds
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.boosted_column == Some(spec_idx))
                            .map(|(i, _)| i)
                            .collect();
                        if members.is_empty() {
                            continue;
                        }
                        let sidx = fitted.table.schema().index_of(name).expect("known column");
                        let head = fitted.head_of_col[sidx];
                        let w = fitted.cond_spec.encoder(spec_idx).n_categories();
                        let target = Matrix::from_fn(members.len(), w, |i, j| {
                            conds[members[i]].vector[fitted.cond_spec.offset(spec_idx) + j]
                        });
                        // select member rows of the head logits
                        let head_slice = head_logits[head];
                        let sel = Matrix::from_fn(members.len(), cfg.batch_size, |i, j| {
                            if members[i] == j {
                                1.0
                            } else {
                                0.0
                            }
                        });
                        let selected = tape.constant(sel).matmul(head_slice);
                        loss = loss.add(selected.softmax_cross_entropy(&target));
                    }
                    tape.backward(loss);
                    if cfg.clip_norm > 0.0 {
                        g_params.clip_grad_norm(cfg.clip_norm);
                    }
                    g_opt.step();
                    g_opt.zero_grad();
                    d_opt.zero_grad();
                }
            }
        }
        self.fitted = Some(fitted);
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
        let f = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(seed);
        crate::common::sample_in_batches(
            f.table.schema().clone(),
            n,
            self.config.batch_size,
            &mut rng,
            |want, rng| {
                let conds = f.sampler.sample_batch(
                    &f.table,
                    &f.cond_spec,
                    BalanceMode::None,
                    true,
                    want,
                    rng,
                )?;
                let c = Matrix::from_fn(want, f.cond_spec.width(), |r, j| conds[r].vector[j]);
                let tape = Tape::new();
                let (fake, _) =
                    self.gen_forward(&f.nets, &tape, &c, &f.transformer.head_layout(), false, rng);
                f.transformer
                    .inverse_transform(&fake.value())
                    .map_err(Into::into)
            },
        )
    }

    fn critic_scores(&self, table: &Table) -> Option<Vec<f64>> {
        let f = self.fitted.as_ref()?;
        let encoded = f.transformer.transform_deterministic(table);
        let c = Matrix::from_fn(table.n_rows(), f.cond_spec.width(), |r, j| {
            f.cond_spec
                .vector_from_row(table, r)
                .map(|v| v[j])
                .unwrap_or(0.0)
        });
        let scores = f.nets.disc.infer(&Matrix::hstack(&[&encoded, &c]));
        Some(scores.column(0).iter().map(|&v| v as f64).collect())
    }
}

impl std::fmt::Debug for CtGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CtGan(fitted={})", self.fitted.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    fn data(n: usize, seed: u64) -> Table {
        LabSimulator::new(LabSimConfig::small(n, seed))
            .generate()
            .unwrap()
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            epochs: 2,
            batch_size: 32,
            z_dim: 16,
            hidden: vec![32],
            max_modes: 3,
            ..Default::default()
        }
    }

    #[test]
    fn fit_sample_roundtrip() {
        let t = data(300, 1);
        let mut m = CtGan::new(cfg());
        m.fit(&t).unwrap();
        let s = m.sample(80, 3).unwrap();
        assert_eq!(s.n_rows(), 80);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn not_fitted() {
        assert!(matches!(
            CtGan::new(cfg()).sample(5, 0),
            Err(SynthError::NotFitted)
        ));
    }

    #[test]
    fn deterministic_sampling() {
        let t = data(200, 2);
        let mut m = CtGan::new(cfg());
        m.fit(&t).unwrap();
        assert_eq!(m.sample(40, 9).unwrap(), m.sample(40, 9).unwrap());
    }

    #[test]
    fn critic_scores_finite() {
        let t = data(200, 3);
        let mut m = CtGan::new(cfg());
        m.fit(&t).unwrap();
        let s = m.critic_scores(&t).unwrap();
        assert_eq!(s.len(), t.n_rows());
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_empty_table() {
        let t = data(50, 4);
        let empty = Table::empty(t.schema().clone());
        assert!(CtGan::new(cfg()).fit(&empty).is_err());
    }
}
