//! Shared building blocks for the baseline generators.

use kinet_data::synth::SynthError;
use kinet_data::transform::{DataTransformer, HeadKind, HeadSpec};
use kinet_nn::layers::gumbel_softmax;
use kinet_nn::Var;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Applies the per-column output heads (tanh for alphas, Gumbel-Softmax
/// for one-hot blocks) to raw generator logits.
///
/// Returns the activated, re-concatenated batch plus the per-head logit
/// slices (used by conditional losses).
pub fn apply_heads<'t>(
    logits: Var<'t>,
    heads: &[HeadSpec],
    tau: f32,
    rng: &mut impl Rng,
) -> (Var<'t>, Vec<Var<'t>>) {
    let mut activated = Vec::with_capacity(heads.len());
    let mut slices = Vec::with_capacity(heads.len());
    let mut offset = 0;
    for head in heads {
        let slice = logits.slice_cols(offset, offset + head.width);
        slices.push(slice);
        activated.push(match head.kind {
            HeadKind::Tanh => slice.tanh(),
            HeadKind::Softmax => gumbel_softmax(slice, tau, rng),
        });
        offset += head.width;
    }
    (Var::concat_cols(&activated), slices)
}

/// Reconstruction loss in encoded space: MSE on tanh (alpha) blocks plus
/// softmax cross-entropy on one-hot blocks — the TVAE decoder loss and a
/// useful general-purpose target.
pub fn reconstruction_loss<'t>(
    logits: Var<'t>,
    target: &kinet_tensor::Matrix,
    heads: &[HeadSpec],
) -> Var<'t> {
    let mut loss: Option<Var<'t>> = None;
    let mut offset = 0;
    for head in heads {
        let slice = logits.slice_cols(offset, offset + head.width);
        let t = target_block(target, offset, head.width);
        let term = match head.kind {
            HeadKind::Tanh => slice.tanh().mse(&t),
            HeadKind::Softmax => slice.softmax_cross_entropy(&t),
        };
        loss = Some(match loss {
            Some(l) => l.add(term),
            None => term,
        });
        offset += head.width;
    }
    loss.expect("head layout is never empty")
}

fn target_block(m: &kinet_tensor::Matrix, offset: usize, width: usize) -> kinet_tensor::Matrix {
    kinet_tensor::Matrix::from_fn(m.rows(), width, |r, j| m[(r, offset + j)])
}

/// Common hyperparameters shared by every baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Latent / noise dimension.
    pub z_dim: usize,
    /// Hidden widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Gumbel-Softmax temperature (GAN baselines).
    pub tau: f32,
    /// Maximum mixture modes per continuous column.
    pub max_modes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Global gradient-clip norm (0 disables).
    pub clip_norm: f32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 128,
            z_dim: 64,
            hidden: vec![128, 128],
            lr: 2e-4,
            tau: 0.2,
            max_modes: 8,
            seed: 99,
            clip_norm: 5.0,
        }
    }
}

impl BaselineConfig {
    /// A configuration small enough for unit tests and smoke benches.
    pub fn fast_demo() -> Self {
        Self {
            epochs: 6,
            batch_size: 64,
            z_dim: 32,
            hidden: vec![64],
            max_modes: 4,
            ..Self::default()
        }
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

pub use kinet_data::synth::sample_in_batches;

/// Fits the shared data transformer, mapping `DataError` into the trait's
/// error space.
pub fn fit_transformer(
    table: &kinet_data::Table,
    cfg: &BaselineConfig,
) -> Result<DataTransformer, SynthError> {
    Ok(DataTransformer::fit(table, cfg.max_modes, cfg.seed)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_data::{ColumnMeta, Schema, Table, Value};
    use kinet_nn::Tape;
    use kinet_tensor::Matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn tx() -> DataTransformer {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("c"),
            ColumnMeta::continuous("x"),
        ]);
        let rows = (0..40)
            .map(|i| {
                vec![
                    Value::cat(if i % 2 == 0 { "a" } else { "b" }),
                    Value::num(i as f64),
                ]
            })
            .collect();
        DataTransformer::fit(&Table::from_rows(schema, rows).unwrap(), 3, 0).unwrap()
    }

    #[test]
    fn apply_heads_width_and_simplex() {
        let t = tx();
        let mut rng = StdRng::seed_from_u64(0);
        let tape = Tape::new();
        let logits = tape.constant(Matrix::zeros(5, t.width()));
        let (out, slices) = apply_heads(logits, &t.head_layout(), 0.4, &mut rng);
        assert_eq!(out.shape(), (5, t.width()));
        assert_eq!(slices.len(), t.head_layout().len());
        let v = out.value();
        for r in 0..5 {
            let s = v[(r, 0)] + v[(r, 1)]; // categorical block
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn reconstruction_loss_zero_at_target_softmax_peak() {
        let t = tx();
        let tape = Tape::new();
        // logits strongly peaked at the target categories, alphas exact
        let mut target = Matrix::zeros(2, t.width());
        target[(0, 0)] = 1.0;
        target[(1, 1)] = 1.0;
        let mut logits = Matrix::zeros(2, t.width());
        logits[(0, 0)] = 50.0;
        logits[(1, 1)] = 50.0;
        let loss =
            reconstruction_loss(tape.constant(logits), &target, &t.head_layout()).value()[(0, 0)];
        assert!(
            loss < 0.2,
            "near-perfect reconstruction should be cheap: {loss}"
        );
    }

    #[test]
    fn baseline_config_builders() {
        let cfg = BaselineConfig::fast_demo().with_epochs(3).with_seed(7);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.seed, 7);
    }
}
