//! TVAE (Xu et al., NeurIPS 2019): a variational autoencoder over the
//! mode-specific-normalized encoding — typically the strongest baseline on
//! pure fidelity, which is exactly how it behaves in the paper's Table I.

use crate::common::{fit_transformer, reconstruction_loss, BaselineConfig};
use kinet_data::synth::{SynthError, TabularSynthesizer};
use kinet_data::transform::{DataTransformer, HeadKind};
use kinet_data::Table;
use kinet_nn::layers::{Activation, Linear, Mlp, MlpConfig};
use kinet_nn::loss::gaussian_kl;
use kinet_nn::optim::{Adam, Optimizer};
use kinet_nn::{ParamSet, Tape};
use kinet_tensor::{Matrix, MatrixRandomExt};
use rand::{rngs::StdRng, RngExt, SeedableRng};

struct Fitted {
    transformer: DataTransformer,
    encoder: Mlp,
    mu_head: Linear,
    #[allow(dead_code)] // retained for checkpoint completeness / future use
    logvar_head: Linear,
    decoder: Mlp,
    table: Table,
}

/// The TVAE baseline synthesizer.
///
/// ```no_run
/// use kinet_baselines::{common::BaselineConfig, Tvae};
/// use kinet_data::synth::TabularSynthesizer;
/// use kinet_datasets::lab::{LabSimConfig, LabSimulator};
///
/// let data = LabSimulator::new(LabSimConfig::small(1000, 0)).generate()?;
/// let mut model = Tvae::new(BaselineConfig::fast_demo());
/// model.fit(&data)?;
/// let synth = model.sample(200, 1)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Tvae {
    config: BaselineConfig,
    fitted: Option<Fitted>,
}

impl Tvae {
    /// Creates an unfitted TVAE.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            fitted: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

impl TabularSynthesizer for Tvae {
    fn name(&self) -> &str {
        "TVAE"
    }

    fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
        if table.is_empty() {
            return Err(SynthError::Training("training table is empty".into()));
        }
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let transformer = fit_transformer(table, cfg)?;
        let width = transformer.width();

        let enc_cfg = MlpConfig::new(width, &cfg.hidden, *cfg.hidden.last().unwrap())
            .with_activation(Activation::Relu);
        let encoder = Mlp::new(&enc_cfg, &mut rng);
        let mu_head = Linear::new(*cfg.hidden.last().unwrap(), cfg.z_dim, &mut rng);
        let logvar_head = Linear::new(*cfg.hidden.last().unwrap(), cfg.z_dim, &mut rng);
        let dec_cfg =
            MlpConfig::new(cfg.z_dim, &cfg.hidden, width).with_activation(Activation::Relu);
        let decoder = Mlp::new(&dec_cfg, &mut rng);

        let mut params = ParamSet::new();
        params.extend(&encoder.params());
        params.extend(&mu_head.params());
        params.extend(&logvar_head.params());
        params.extend(&decoder.params());
        let mut opt = Adam::new(params.clone(), cfg.lr);

        let encoded = transformer.transform(table, &mut rng);
        let heads = transformer.head_layout();
        let steps = (table.n_rows() / cfg.batch_size).max(1);

        for _epoch in 0..cfg.epochs {
            for _step in 0..steps {
                let idx: Vec<usize> = (0..cfg.batch_size)
                    .map(|_| rng.random_range(0..table.n_rows()))
                    .collect();
                let batch = encoded.select_rows(&idx);
                let tape = Tape::new();
                let x = tape.constant(batch.clone());
                let h = encoder.forward(&tape, x, true, &mut rng);
                let h = h.relu();
                let mu = mu_head.forward(&tape, h);
                let logvar = logvar_head.forward(&tape, h);
                // reparameterization: z = mu + exp(0.5 logvar) * eps
                let eps = Matrix::randn(cfg.batch_size, cfg.z_dim, 0.0, 1.0, &mut rng);
                let z = mu.add(logvar.scale(0.5).exp().mul_const(&eps));
                let logits = decoder.forward(&tape, z, true, &mut rng);
                let recon = reconstruction_loss(logits, &batch, &heads);
                let kl = gaussian_kl(mu, logvar);
                let loss = recon.add(kl.scale(0.2));
                tape.backward(loss);
                if cfg.clip_norm > 0.0 {
                    params.clip_grad_norm(cfg.clip_norm);
                }
                opt.step();
                opt.zero_grad();
            }
        }

        self.fitted = Some(Fitted {
            transformer,
            encoder,
            mu_head,
            logvar_head,
            decoder,
            table: table.clone(),
        });
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
        let f = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let heads = f.transformer.head_layout();
        crate::common::sample_in_batches(
            f.table.schema().clone(),
            n,
            self.config.batch_size,
            &mut rng,
            |want, rng| {
                let z = Matrix::randn(want, self.config.z_dim, 0.0, 1.0, rng);
                let logits = f.decoder.infer(&z);
                // activate heads: tanh for alphas, gumbel-argmax for one-hots
                let mut activated = Matrix::zeros(want, logits.cols());
                let mut offset = 0;
                for head in &heads {
                    match head.kind {
                        HeadKind::Tanh => {
                            for r in 0..want {
                                activated[(r, offset)] = logits[(r, offset)].tanh();
                            }
                        }
                        HeadKind::Softmax => {
                            let noise = Matrix::gumbel(want, head.width, rng);
                            for r in 0..want {
                                let mut best = 0;
                                let mut best_v = f32::NEG_INFINITY;
                                for j in 0..head.width {
                                    let v = logits[(r, offset + j)] + noise[(r, j)];
                                    if v > best_v {
                                        best_v = v;
                                        best = j;
                                    }
                                }
                                activated[(r, offset + best)] = 1.0;
                            }
                        }
                    }
                    offset += head.width;
                }
                f.transformer
                    .inverse_transform(&activated)
                    .map_err(Into::into)
            },
        )
    }

    fn critic_scores(&self, table: &Table) -> Option<Vec<f64>> {
        // White-box signal for a VAE: negative reconstruction error (higher
        // = more "real" to the model), the standard MI surrogate.
        let f = self.fitted.as_ref()?;
        let encoded = f.transformer.transform_deterministic(table);
        let h = f.encoder.infer(&encoded).map(|v| v.max(0.0));
        let mu = h
            .matmul(&f.mu_head.weight().value())
            .add_row_broadcast(&f.mu_head.bias().value());
        let logits = f.decoder.infer(&mu);
        let scores = (0..table.n_rows())
            .map(|r| {
                let mut err = 0.0f64;
                for c in 0..encoded.cols() {
                    let d = (logits[(r, c)].tanh() - encoded[(r, c)]) as f64;
                    err += d * d;
                }
                -err
            })
            .collect();
        Some(scores)
    }
}

impl std::fmt::Debug for Tvae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tvae(fitted={})", self.fitted.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    fn data(n: usize, seed: u64) -> Table {
        LabSimulator::new(LabSimConfig::small(n, seed))
            .generate()
            .unwrap()
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            epochs: 3,
            batch_size: 32,
            z_dim: 16,
            hidden: vec![32],
            max_modes: 3,
            lr: 1e-3,
            ..Default::default()
        }
    }

    #[test]
    fn fit_sample_roundtrip() {
        let t = data(300, 1);
        let mut m = Tvae::new(cfg());
        m.fit(&t).unwrap();
        let s = m.sample(64, 5).unwrap();
        assert_eq!(s.n_rows(), 64);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn deterministic_sampling() {
        let t = data(200, 2);
        let mut m = Tvae::new(cfg());
        m.fit(&t).unwrap();
        assert_eq!(m.sample(32, 11).unwrap(), m.sample(32, 11).unwrap());
    }

    #[test]
    fn critic_prefers_training_data_direction() {
        let t = data(400, 3);
        let mut m = Tvae::new(BaselineConfig {
            epochs: 10,
            ..cfg()
        });
        m.fit(&t).unwrap();
        let scores = m.critic_scores(&t).unwrap();
        assert!(scores.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn not_fitted() {
        assert!(matches!(
            Tvae::new(cfg()).sample(5, 0),
            Err(SynthError::NotFitted)
        ));
    }
}
