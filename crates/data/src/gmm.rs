//! One-dimensional Gaussian mixtures fitted with expectation–maximization.
//!
//! These power CTGAN-style *mode-specific normalization*: each continuous
//! column is modeled as a mixture; a value is encoded as the identity of its
//! (sampled or most-responsible) mode plus its offset within that mode.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

const SQRT_TAU: f64 = 2.5066282746310002; // sqrt(2π)
const MIN_STD: f64 = 1e-4;

/// A 1-D Gaussian mixture model.
///
/// ```
/// use kinet_data::gmm::GaussianMixture1d;
/// // two clearly separated clusters
/// let mut xs: Vec<f64> = Vec::new();
/// xs.extend((0..100).map(|i| 10.0 + 0.01 * i as f64));
/// xs.extend((0..100).map(|i| 500.0 + 0.01 * i as f64));
/// let gmm = GaussianMixture1d::fit(&xs, 4, 50, 42);
/// assert!(gmm.n_components() >= 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture1d {
    weights: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl GaussianMixture1d {
    /// Fits a mixture with up to `max_components` components by EM,
    /// pruning components whose weight collapses below 0.5 %.
    ///
    /// Deterministic for a fixed `seed`. Degenerate inputs (constant or
    /// tiny columns) yield a single-component model.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `max_components == 0`.
    pub fn fit(data: &[f64], max_components: usize, max_iters: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a mixture to an empty column");
        assert!(max_components > 0, "max_components must be at least 1");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(MIN_STD);

        // Degenerate: constant column or fewer points than components.
        let k = max_components.min(n);
        if std <= MIN_STD || k == 1 {
            return Self {
                weights: vec![1.0],
                means: vec![mean],
                stds: vec![std],
            };
        }

        // Quantile-based deterministic init, jittered by the seed.
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut means: Vec<f64> = (0..k)
            .map(|i| {
                let q = (i as f64 + 0.5) / k as f64;
                let idx = ((q * n as f64) as usize).min(n - 1);
                sorted[idx] + rng.random_range(-0.01..0.01) * std
            })
            .collect();
        let mut stds = vec![std / k as f64 + MIN_STD; k];
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![0.0f64; n * k];
        for _ in 0..max_iters {
            // E-step
            for (i, &x) in data.iter().enumerate() {
                let mut total = 0.0;
                for j in 0..k {
                    let p = weights[j] * gaussian_pdf(x, means[j], stds[j]);
                    resp[i * k + j] = p;
                    total += p;
                }
                if total <= f64::MIN_POSITIVE {
                    // point far from every component: uniform responsibility
                    for j in 0..k {
                        resp[i * k + j] = 1.0 / k as f64;
                    }
                } else {
                    for j in 0..k {
                        resp[i * k + j] /= total;
                    }
                }
            }
            // M-step
            let mut changed = 0.0f64;
            for j in 0..k {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                let w = (nj / n as f64).max(1e-12);
                let mu = (0..n).map(|i| resp[i * k + j] * data[i]).sum::<f64>() / nj.max(1e-12);
                let sd = ((0..n)
                    .map(|i| resp[i * k + j] * (data[i] - mu) * (data[i] - mu))
                    .sum::<f64>()
                    / nj.max(1e-12))
                .sqrt()
                .max(MIN_STD);
                changed += (means[j] - mu).abs();
                weights[j] = w;
                means[j] = mu;
                stds[j] = sd;
            }
            if changed < 1e-7 {
                break;
            }
        }

        // prune negligible components and renormalize
        let mut kept: Vec<(f64, f64, f64)> = weights
            .iter()
            .zip(&means)
            .zip(&stds)
            .filter(|((&w, _), _)| w > 0.005)
            .map(|((&w, &m), &s)| (w, m, s))
            .collect();
        if kept.is_empty() {
            kept.push((1.0, mean, std));
        }
        let total_w: f64 = kept.iter().map(|(w, _, _)| w).sum();
        Self {
            weights: kept.iter().map(|(w, _, _)| w / total_w).collect(),
            means: kept.iter().map(|(_, m, _)| *m).collect(),
            stds: kept.iter().map(|(_, _, s)| *s).collect(),
        }
    }

    /// Number of (surviving) components.
    pub fn n_components(&self) -> usize {
        self.weights.len()
    }

    /// Mixture weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Component standard deviations (each ≥ a small floor).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Posterior responsibilities `P(component | x)`; sums to 1.
    pub fn responsibilities(&self, x: f64) -> Vec<f64> {
        let mut r: Vec<f64> = (0..self.n_components())
            .map(|j| self.weights[j] * gaussian_pdf(x, self.means[j], self.stds[j]))
            .collect();
        let total: f64 = r.iter().sum();
        if total <= f64::MIN_POSITIVE {
            let k = r.len();
            r.iter_mut().for_each(|v| *v = 1.0 / k as f64);
        } else {
            r.iter_mut().for_each(|v| *v /= total);
        }
        r
    }

    /// Most responsible component for `x`.
    pub fn most_likely_component(&self, x: f64) -> usize {
        // Argmax of the *unnormalized* posterior: dividing by the total
        // (or the degenerate uniform fallback) never changes which
        // component wins, so the hot encode path skips the `Vec` that
        // `responsibilities` builds. Ties keep the last maximum, exactly
        // as `max_by` over the normalized vector did.
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let mut total = 0.0;
        for (j, ((w, m), s)) in self
            .weights
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .enumerate()
        {
            let score = w * gaussian_pdf(x, *m, *s);
            total += score;
            if score.total_cmp(&best_score) != std::cmp::Ordering::Less {
                best = j;
                best_score = score;
            }
        }
        if total <= f64::MIN_POSITIVE {
            // `responsibilities` falls back to a uniform posterior here;
            // argmax over uniform keeps the last component.
            return self.n_components().saturating_sub(1);
        }
        best
    }

    /// Samples a component index from the posterior `P(component | x)`.
    pub fn sample_component(&self, x: f64, rng: &mut impl Rng) -> usize {
        let r = self.responsibilities(x);
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (i, p) in r.iter().enumerate() {
            acc += p;
            if u <= acc {
                return i;
            }
        }
        r.len() - 1
    }

    /// Mixture log-likelihood of `x`.
    pub fn log_likelihood(&self, x: f64) -> f64 {
        let p: f64 = (0..self.n_components())
            .map(|j| self.weights[j] * gaussian_pdf(x, self.means[j], self.stds[j]))
            .sum();
        p.max(f64::MIN_POSITIVE).ln()
    }

    /// Mean log-likelihood over a slice (likelihood-fitness metric).
    pub fn mean_log_likelihood(&self, xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().map(|&x| self.log_likelihood(x)).sum::<f64>() / xs.len() as f64
    }

    /// Draws a sample from the mixture.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        let mut comp = self.weights.len() - 1;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if u <= acc {
                comp = i;
                break;
            }
        }
        let (z1, _) = gaussian_pair_f64(rng);
        self.means[comp] + self.stds[comp] * z1
    }
}

fn gaussian_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * SQRT_TAU)
}

fn gaussian_pair_f64(rng: &mut impl Rng) -> (f64, f64) {
    let u1: f64 = (1.0f64 - rng.random::<f64>()).max(1e-300);
    let u2: f64 = rng.random::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn bimodal(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let (z, _) = gaussian_pair_f64(&mut rng);
                if i % 2 == 0 {
                    10.0 + z
                } else {
                    100.0 + 2.0 * z
                }
            })
            .collect()
    }

    #[test]
    fn finds_two_modes() {
        let data = bimodal(2000, 1);
        let gmm = GaussianMixture1d::fit(&data, 5, 100, 7);
        assert!(
            gmm.n_components() >= 2,
            "components: {}",
            gmm.n_components()
        );
        // the two dominant means should be near 10 and 100
        let mut means = gmm.means().to_vec();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means.first().unwrap() - 10.0).abs() < 3.0, "{means:?}");
        assert!((means.last().unwrap() - 100.0).abs() < 6.0, "{means:?}");
    }

    #[test]
    fn weights_sum_to_one() {
        let gmm = GaussianMixture1d::fit(&bimodal(500, 2), 6, 60, 3);
        let s: f64 = gmm.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_column_degenerates_gracefully() {
        let gmm = GaussianMixture1d::fit(&[5.0; 100], 8, 50, 1);
        assert_eq!(gmm.n_components(), 1);
        assert!((gmm.means()[0] - 5.0).abs() < 1e-9);
        assert!(gmm.stds()[0] >= MIN_STD);
    }

    #[test]
    fn single_point_fits() {
        let gmm = GaussianMixture1d::fit(&[1.0], 4, 10, 1);
        assert_eq!(gmm.n_components(), 1);
    }

    #[test]
    fn responsibilities_are_distributions() {
        let gmm = GaussianMixture1d::fit(&bimodal(500, 4), 4, 60, 2);
        for &x in &[-1e6, 0.0, 10.0, 55.0, 100.0, 1e6] {
            let r = gmm.responsibilities(x);
            let s: f64 = r.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "x={x}: {r:?}");
            assert!(r.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn most_likely_component_tracks_cluster() {
        let data = bimodal(2000, 5);
        let gmm = GaussianMixture1d::fit(&data, 5, 100, 9);
        let lo = gmm.most_likely_component(10.0);
        let hi = gmm.most_likely_component(100.0);
        assert_ne!(lo, hi);
    }

    #[test]
    fn sample_component_is_posterior_biased() {
        // Several components may overlap within one cluster, so assert on
        // the *location* of the sampled component rather than its identity:
        // sampling at x=10 must overwhelmingly pick components near 10, not
        // the far cluster at 100.
        let gmm = GaussianMixture1d::fit(&bimodal(1000, 6), 4, 80, 11);
        let mut rng = StdRng::seed_from_u64(0);
        let near = (0..200)
            .filter(|_| {
                let c = gmm.sample_component(10.0, &mut rng);
                (gmm.means()[c] - 10.0).abs() < 20.0
            })
            .count();
        assert!(
            near > 190,
            "posterior sampling should stay in the local cluster: {near}"
        );
    }

    #[test]
    fn likelihood_prefers_in_distribution_points() {
        let gmm = GaussianMixture1d::fit(&bimodal(1000, 7), 4, 80, 13);
        assert!(gmm.log_likelihood(10.0) > gmm.log_likelihood(55.0));
        assert!(gmm.mean_log_likelihood(&[10.0, 100.0]) > gmm.mean_log_likelihood(&[50.0, 60.0]));
    }

    #[test]
    fn sampling_reproduces_spread() {
        let gmm = GaussianMixture1d::fit(&bimodal(2000, 8), 4, 80, 17);
        let mut rng = StdRng::seed_from_u64(21);
        let samples: Vec<f64> = (0..2000).map(|_| gmm.sample(&mut rng)).collect();
        let near_lo = samples.iter().filter(|&&x| (x - 10.0).abs() < 5.0).count();
        let near_hi = samples
            .iter()
            .filter(|&&x| (x - 100.0).abs() < 10.0)
            .count();
        assert!(near_lo > 500, "{near_lo}");
        assert!(near_hi > 500, "{near_hi}");
    }

    #[test]
    fn deterministic_for_seed() {
        let data = bimodal(400, 9);
        let a = GaussianMixture1d::fit(&data, 4, 50, 5);
        let b = GaussianMixture1d::fit(&data, 4, 50, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_input() {
        let _ = GaussianMixture1d::fit(&[], 3, 10, 0);
    }
}
