//! Tabular-data substrate for the KiNETGAN reproduction.
//!
//! Network-activity data is tabular: a mix of sparse categorical attributes
//! (protocol, event class, IP addresses) and skewed continuous ones (ports,
//! packet counts, durations). This crate provides everything the generative
//! models and the evaluation harness need to work with such data:
//!
//! * [`Table`], [`Schema`], [`Value`]: columnar storage with categorical
//!   dictionaries, CSV I/O and deterministic splits;
//! * [`gmm::GaussianMixture1d`]: EM-fitted mixtures powering CTGAN-style
//!   **mode-specific normalization** ([`transform::ModeSpecificNormalizer`]);
//! * [`transform::DataTransformer`]: whole-table encoding into the GAN's
//!   input space (one-hot categoricals + per-mode normalized continuous
//!   values) and back;
//! * [`condition::ConditionVectorSpec`]: the paper's condition vector `C`
//!   (Eq. 1–2) over the discrete conditional attributes, with both
//!   log-frequency (CTGAN) and uniform minority-boosting (§III-A-3)
//!   sampling;
//! * [`encoded::EncodedTable`]: the interned fast-path encoding (category
//!   strings → `kinet_kg` symbols) plus compiled KG validity scoring over
//!   whole tables, parallelized on the kernel worker pool;
//! * [`sampler::TrainingSampler`]: training-by-sampling row lookup;
//! * [`stream::ChunkSource`] / [`stream::StreamingShard`]: out-of-core
//!   chunked row streams with deterministic reservoir sampling and a
//!   decoded-rows peak tracker, the substrate of the fleet simulation;
//! * [`synth::TabularSynthesizer`]: the trait every generative model in the
//!   workspace implements, so evaluation code is model-agnostic.

pub mod condition;
pub mod encoded;
pub mod gmm;
pub mod sampler;
pub mod stream;
pub mod synth;
pub mod transform;

mod schema;
mod table;
mod value;

pub use schema::{ColumnKind, ColumnMeta, Schema};
pub use table::{DataError, Table};
pub use value::Value;
