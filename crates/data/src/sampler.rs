//! Training-by-sampling: drawing conditions and matching real rows.
//!
//! CTGAN's *training-by-sampling* picks a conditional column, samples one of
//! its categories by log-frequency (so rare categories still appear), then
//! draws a real row having that category. KiNETGAN extends this with the
//! §III-A-3 *uniform* mode, which samples the boosted category uniformly
//! from the attribute's range so minority values are represented even more
//! aggressively, and conditions on the *full* set of discrete attributes of
//! the drawn row.

use crate::condition::ConditionVectorSpec;
use crate::table::{DataError, Table};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the boosted category of the chosen conditional column is sampled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum BalanceMode {
    /// Log-frequency weights over categories (CTGAN).
    #[default]
    LogFreq,
    /// Uniform over the category range (KiNETGAN §III-A-3).
    Uniform,
    /// No balancing: draw a random row and condition on its values.
    None,
}

impl fmt::Display for BalanceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceMode::LogFreq => f.write_str("log-freq"),
            BalanceMode::Uniform => f.write_str("uniform"),
            BalanceMode::None => f.write_str("none"),
        }
    }
}

/// A sampled training condition: the vector `C`, the boosted pick, and a
/// real row consistent with it.
#[derive(Clone, Debug)]
pub struct SampledCondition {
    /// The condition vector (width = [`ConditionVectorSpec::width`]).
    pub vector: Vec<f32>,
    /// Index of the boosted conditional column (into the spec's columns),
    /// `None` for [`BalanceMode::None`].
    pub boosted_column: Option<usize>,
    /// Category code of the boosted value within its column.
    pub boosted_category: Option<usize>,
    /// Index of a real row matching the condition.
    pub row: usize,
}

/// Pre-indexed sampler over a table and a condition-vector layout.
pub struct TrainingSampler {
    /// `rows_by_cat[col][cat]` = indices of rows with that category.
    rows_by_cat: Vec<Vec<Vec<usize>>>,
    /// Per column: cumulative log-frequency distribution over categories.
    logfreq_cdf: Vec<Vec<f64>>,
    n_rows: usize,
}

impl TrainingSampler {
    /// Indexes `table` against `spec`.
    ///
    /// # Errors
    ///
    /// Propagates column-access failures; fails on an empty table.
    pub fn fit(table: &Table, spec: &ConditionVectorSpec) -> Result<Self, DataError> {
        if table.is_empty() {
            return Err(DataError::SchemaMismatch(
                "cannot sample from an empty table".into(),
            ));
        }
        let mut rows_by_cat = Vec::with_capacity(spec.n_columns());
        let mut logfreq_cdf = Vec::with_capacity(spec.n_columns());
        for i in 0..spec.n_columns() {
            let name = &spec.columns()[i];
            let enc = spec.encoder(i);
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); enc.n_categories()];
            for (r, v) in table.cat_column(name)?.iter().enumerate() {
                if let Some(code) = enc.encode(v) {
                    buckets[code].push(r);
                }
            }
            // log-frequency mass per category: ln(1 + count)
            let masses: Vec<f64> = buckets
                .iter()
                .map(|b| (1.0 + b.len() as f64).ln())
                .collect();
            let total: f64 = masses.iter().sum();
            let mut acc = 0.0;
            let cdf: Vec<f64> = masses
                .iter()
                .map(|m| {
                    acc += m / total.max(f64::MIN_POSITIVE);
                    acc
                })
                .collect();
            rows_by_cat.push(buckets);
            logfreq_cdf.push(cdf);
        }
        Ok(Self {
            rows_by_cat,
            logfreq_cdf,
            n_rows: table.n_rows(),
        })
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Rows having category `cat` in conditional column `col`.
    pub fn rows_with(&self, col: usize, cat: usize) -> &[usize] {
        &self.rows_by_cat[col][cat]
    }

    /// Normalized log-frequency weights over the categories of conditional
    /// column `col` — the distribution [`BalanceMode::LogFreq`] draws the
    /// boosted category from (weights sum to 1; empty categories get 0).
    pub fn log_freq_weights(&self, col: usize) -> Vec<f64> {
        let cdf = &self.logfreq_cdf[col];
        let mut prev = 0.0;
        cdf.iter()
            .map(|&c| {
                let w = c - prev;
                prev = c;
                w
            })
            .collect()
    }

    /// Samples one training condition.
    ///
    /// With `full_condition = true` the returned vector one-hots *all*
    /// conditional columns from the matched row (KiNETGAN); with `false`
    /// only the boosted column's block is set (CTGAN).
    ///
    /// # Errors
    ///
    /// Propagates encoding failures from the spec.
    pub fn sample_condition(
        &self,
        table: &Table,
        spec: &ConditionVectorSpec,
        mode: BalanceMode,
        full_condition: bool,
        rng: &mut impl Rng,
    ) -> Result<SampledCondition, DataError> {
        match mode {
            BalanceMode::None => {
                let row = rng.random_range(0..self.n_rows);
                let vector = if full_condition {
                    spec.vector_from_row(table, row)?
                } else {
                    vec![0.0; spec.width()]
                };
                Ok(SampledCondition {
                    vector,
                    boosted_column: None,
                    boosted_category: None,
                    row,
                })
            }
            BalanceMode::LogFreq | BalanceMode::Uniform => {
                let col = rng.random_range(0..spec.n_columns());
                let n_cats = spec.encoder(col).n_categories();
                let cat = match mode {
                    BalanceMode::Uniform => rng.random_range(0..n_cats),
                    _ => {
                        let u: f64 = rng.random::<f64>();
                        self.logfreq_cdf[col]
                            .iter()
                            .position(|&c| u <= c)
                            .unwrap_or(n_cats - 1)
                    }
                };
                // If the uniform draw hit an empty bucket (possible only if
                // a category exists in the encoder but not the table, which
                // fit() precludes) fall back to any row.
                let bucket = &self.rows_by_cat[col][cat];
                let row = if bucket.is_empty() {
                    rng.random_range(0..self.n_rows)
                } else {
                    bucket[rng.random_range(0..bucket.len())]
                };
                let vector = if full_condition {
                    spec.vector_from_row(table, row)?
                } else {
                    let mut v = vec![0.0f32; spec.width()];
                    v[spec.offset(col) + cat] = 1.0;
                    v
                };
                Ok(SampledCondition {
                    vector,
                    boosted_column: Some(col),
                    boosted_category: Some(cat),
                    row,
                })
            }
        }
    }

    /// Samples a batch of conditions plus the matching real-row indices.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainingSampler::sample_condition`] failures.
    pub fn sample_batch(
        &self,
        table: &Table,
        spec: &ConditionVectorSpec,
        mode: BalanceMode,
        full_condition: bool,
        batch: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<SampledCondition>, DataError> {
        (0..batch)
            .map(|_| self.sample_condition(table, spec, mode, full_condition, rng))
            .collect()
    }
}

impl fmt::Debug for TrainingSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TrainingSampler({} rows, {} cond cols)",
            self.n_rows,
            self.rows_by_cat.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, Schema};
    use crate::value::Value;
    use rand::{rngs::StdRng, SeedableRng};

    /// 95 "common" rows and 5 "rare" rows.
    fn imbalanced() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("event"),
            ColumnMeta::continuous("x"),
        ]);
        let mut rows = Vec::new();
        for i in 0..100 {
            let ev = if i < 95 { "common" } else { "rare" };
            rows.push(vec![Value::cat(ev), Value::num(i as f64)]);
        }
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn index_buckets() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        assert_eq!(s.rows_with(0, 0).len(), 95); // "common" sorts first
        assert_eq!(s.rows_with(0, 1).len(), 5);
        assert_eq!(s.n_rows(), 100);
    }

    #[test]
    fn uniform_mode_boosts_minority() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut rare = 0;
        for _ in 0..1000 {
            let c = s
                .sample_condition(&t, &spec, BalanceMode::Uniform, true, &mut rng)
                .unwrap();
            if c.boosted_category == Some(1) {
                rare += 1;
            }
        }
        assert!(
            (400..600).contains(&rare),
            "uniform should hit ~50% rare, got {rare}"
        );
    }

    #[test]
    fn logfreq_mode_oversamples_relative_to_frequency() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut rare = 0;
        for _ in 0..1000 {
            let c = s
                .sample_condition(&t, &spec, BalanceMode::LogFreq, true, &mut rng)
                .unwrap();
            if c.boosted_category == Some(1) {
                rare += 1;
            }
        }
        // raw frequency would give ~5%; log-frequency gives ln6/(ln96+ln6) ≈ 28%
        assert!(
            rare > 150,
            "log-freq should oversample the rare class, got {rare}"
        );
        assert!(rare < 450, "but not reach uniform, got {rare}");
    }

    #[test]
    fn sampled_row_matches_condition() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let c = s
                .sample_condition(&t, &spec, BalanceMode::Uniform, true, &mut rng)
                .unwrap();
            assert!(spec.row_matches(&t, c.row, &c.vector).unwrap());
        }
    }

    #[test]
    fn partial_condition_only_sets_boosted_block() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let c = s
            .sample_condition(&t, &spec, BalanceMode::LogFreq, false, &mut rng)
            .unwrap();
        let set: usize = c.vector.iter().filter(|&&v| v > 0.0).count();
        assert_eq!(set, 1);
    }

    #[test]
    fn none_mode_returns_row_condition() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let c = s
            .sample_condition(&t, &spec, BalanceMode::None, true, &mut rng)
            .unwrap();
        assert!(c.boosted_column.is_none());
        assert!(spec.row_matches(&t, c.row, &c.vector).unwrap());
    }

    #[test]
    fn batch_has_requested_size() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let s = TrainingSampler::fit(&t, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = s
            .sample_batch(&t, &spec, BalanceMode::Uniform, true, 32, &mut rng)
            .unwrap();
        assert_eq!(batch.len(), 32);
    }

    #[test]
    fn empty_table_rejected() {
        let t = imbalanced();
        let spec = ConditionVectorSpec::fit(&t, &["event"]).unwrap();
        let empty = Table::empty(t.schema().clone());
        assert!(TrainingSampler::fit(&empty, &spec).is_err());
    }
}
