//! The model-agnostic synthesizer interface.
//!
//! Every generative model in the workspace — KiNETGAN and all five
//! baselines — implements [`TabularSynthesizer`], so fidelity, utility and
//! privacy evaluations are written once against the trait.

use crate::table::{DataError, Table};
use std::error::Error;
use std::fmt;

/// Errors produced by synthesizer training and sampling.
#[derive(Debug)]
pub enum SynthError {
    /// `sample` was called before a successful `fit`.
    NotFitted,
    /// A data-layer failure (schema mismatch, unseen category, …).
    Data(DataError),
    /// Training diverged or hit an invalid configuration.
    Training(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NotFitted => f.write_str("synthesizer has not been fitted"),
            SynthError::Data(e) => write!(f, "data error: {e}"),
            SynthError::Training(m) => write!(f, "training error: {m}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for SynthError {
    fn from(e: DataError) -> Self {
        SynthError::Data(e)
    }
}

/// A generative model over tabular data.
///
/// Implementations are deterministic given their configured seed and the
/// `seed` passed to [`TabularSynthesizer::sample`].
pub trait TabularSynthesizer {
    /// Short human-readable model name (e.g. `"KiNETGAN"`, `"CTGAN"`).
    fn name(&self) -> &str;

    /// Trains on `table`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError`] when the table is unusable or training
    /// diverges.
    fn fit(&mut self, table: &Table) -> Result<(), SynthError>;

    /// Draws `n` synthetic rows with the given sampling seed.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::NotFitted`] before [`TabularSynthesizer::fit`].
    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError>;

    /// Optional white-box critic scores (higher = "more real" according to
    /// the model's own discriminator). Used by the white-box membership
    /// inference attack; models without an accessible critic return `None`.
    fn critic_scores(&self, _table: &Table) -> Option<Vec<f64>> {
        None
    }
}

/// The shared batched sampling loop every generator-backed synthesizer in
/// the workspace runs: draw batches of at most `batch.max(32)` rows from
/// `gen_batch` until `n` rows are collected. The result holds **exactly**
/// `n` rows for every `n`/`batch` combination.
///
/// `gen_batch(want, rng)` should return exactly `want` decoded rows; it
/// owns whatever model-specific work a batch needs (condition sampling,
/// forward pass, inverse transform, KG rejection rounds). A batch that
/// overshoots is truncated to its requested size — keeping each batch's
/// contribution at `want` rows is what preserves the condition-sampler's
/// class marginals independently of how `n` splits into batches. A batch
/// that undershoots is tolerated (the remainder is re-requested), but a
/// batch that returns no rows at all is an error: looping on it would
/// never terminate.
///
/// RNG consumption order is exactly the per-model loops this replaces, so
/// fixed-seed releases are unchanged.
///
/// # Errors
///
/// Propagates `gen_batch` and table-append failures, and reports a
/// [`SynthError::Training`] when `gen_batch` makes no progress.
pub fn sample_in_batches<R: rand::Rng>(
    schema: crate::Schema,
    n: usize,
    batch: usize,
    rng: &mut R,
    mut gen_batch: impl FnMut(usize, &mut R) -> Result<Table, SynthError>,
) -> Result<Table, SynthError> {
    let mut out = Table::empty(schema);
    let batch = batch.max(32);
    while out.n_rows() < n {
        let want = (n - out.n_rows()).min(batch);
        let got = gen_batch(want, rng)?;
        if got.is_empty() {
            return Err(SynthError::Training(format!(
                "batch generator returned no rows (requested {want}); \
                 sampling cannot make progress"
            )));
        }
        if got.n_rows() > want {
            // Truncate the overshoot so this batch contributes exactly the
            // rows that were requested of it.
            let idx: Vec<usize> = (0..want).collect();
            out.append(&got.select_rows(&idx))?;
        } else {
            out.append(&got)?;
        }
    }
    debug_assert_eq!(out.n_rows(), n, "batched sampling must deliver exactly n");
    Ok(out)
}

/// Blanket helper: fit then sample in one call.
///
/// # Errors
///
/// Propagates errors from either phase.
pub fn fit_and_sample<S: TabularSynthesizer>(
    model: &mut S,
    table: &Table,
    n: usize,
    seed: u64,
) -> Result<Table, SynthError> {
    model.fit(table)?;
    model.sample(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, Schema};
    use crate::value::Value;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// A trivial synthesizer that resamples training rows — used to test
    /// the trait contract and downstream evaluation code.
    struct Resampler {
        data: Option<Table>,
    }

    impl TabularSynthesizer for Resampler {
        fn name(&self) -> &str {
            "Resampler"
        }

        fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
            if table.is_empty() {
                return Err(SynthError::Training("empty training table".into()));
            }
            self.data = Some(table.clone());
            Ok(())
        }

        fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
            let data = self.data.as_ref().ok_or(SynthError::NotFitted)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..data.n_rows())).collect();
            Ok(data.select_rows(&idx))
        }
    }

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("c"),
            ColumnMeta::continuous("x"),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::cat("a"), Value::num(1.0)],
                vec![Value::cat("b"), Value::num(2.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn contract_not_fitted() {
        let r = Resampler { data: None };
        assert!(matches!(r.sample(3, 0), Err(SynthError::NotFitted)));
    }

    #[test]
    fn fit_then_sample_shapes() {
        let mut r = Resampler { data: None };
        let t = table();
        let s = fit_and_sample(&mut r, &t, 10, 42).unwrap();
        assert_eq!(s.n_rows(), 10);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut r = Resampler { data: None };
        r.fit(&table()).unwrap();
        assert_eq!(r.sample(5, 7).unwrap(), r.sample(5, 7).unwrap());
    }

    #[test]
    fn default_critic_is_none() {
        let mut r = Resampler { data: None };
        r.fit(&table()).unwrap();
        assert!(r.critic_scores(&table()).is_none());
    }

    /// 90% "common" / 10% "rare" rows, for marginal checks.
    fn imbalanced() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("c"),
            ColumnMeta::continuous("x"),
        ]);
        let rows = (0..100)
            .map(|i| {
                vec![
                    Value::cat(if i < 90 { "common" } else { "rare" }),
                    Value::num(i as f64),
                ]
            })
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn batched_sampling_is_exact_for_every_combination() {
        let data = imbalanced();
        for n in [0usize, 1, 31, 32, 33, 63, 64, 65, 100, 257] {
            for batch in [0usize, 1, 32, 50, 64, 333] {
                let mut rng = StdRng::seed_from_u64(9);
                let out =
                    sample_in_batches(data.schema().clone(), n, batch, &mut rng, |want, rng| {
                        let idx: Vec<usize> = (0..want)
                            .map(|_| rng.random_range(0..data.n_rows()))
                            .collect();
                        Ok(data.select_rows(&idx))
                    })
                    .unwrap();
                assert_eq!(out.n_rows(), n, "n={n} batch={batch}");
            }
        }
    }

    #[test]
    fn overshooting_batches_are_truncated_to_request() {
        let data = imbalanced();
        let mut rng = StdRng::seed_from_u64(4);
        // A misbehaving generator that always returns 48 rows.
        let out = sample_in_batches(data.schema().clone(), 70, 32, &mut rng, |_want, rng| {
            let idx: Vec<usize> = (0..48)
                .map(|_| rng.random_range(0..data.n_rows()))
                .collect();
            Ok(data.select_rows(&idx))
        })
        .unwrap();
        assert_eq!(out.n_rows(), 70);
    }

    #[test]
    fn empty_batches_error_instead_of_spinning() {
        let data = imbalanced();
        let mut rng = StdRng::seed_from_u64(5);
        let err = sample_in_batches(data.schema().clone(), 10, 32, &mut rng, |_, _| {
            Ok(Table::empty(imbalanced().schema().clone()))
        })
        .unwrap_err();
        assert!(matches!(err, SynthError::Training(_)), "{err}");
        assert!(err.to_string().contains("no rows"), "{err}");
    }

    #[test]
    fn class_marginals_survive_batch_splitting() {
        // The same resampling generator must produce statistically
        // indistinguishable class marginals no matter how n splits into
        // batches: each batch contributes exactly its requested rows, so
        // no batch-boundary effect can skew the class mix.
        let data = imbalanced();
        let rare_fraction = |batch: usize| {
            let mut rng = StdRng::seed_from_u64(11);
            let out =
                sample_in_batches(data.schema().clone(), 600, batch, &mut rng, |want, rng| {
                    let idx: Vec<usize> = (0..want)
                        .map(|_| rng.random_range(0..data.n_rows()))
                        .collect();
                    Ok(data.select_rows(&idx))
                })
                .unwrap();
            let rare = out
                .cat_column("c")
                .unwrap()
                .iter()
                .filter(|v| v.as_str() == "rare")
                .count();
            rare as f64 / 600.0
        };
        for batch in [32, 64, 123, 600] {
            let frac = rare_fraction(batch);
            assert!(
                (0.05..0.17).contains(&frac),
                "batch={batch}: rare fraction {frac} strayed from the 10% marginal"
            );
        }
    }

    #[test]
    fn error_display() {
        assert!(SynthError::NotFitted
            .to_string()
            .contains("not been fitted"));
        let e = SynthError::Training("nan".into());
        assert!(e.to_string().contains("nan"));
    }
}
