//! The model-agnostic synthesizer interface.
//!
//! Every generative model in the workspace — KiNETGAN and all five
//! baselines — implements [`TabularSynthesizer`], so fidelity, utility and
//! privacy evaluations are written once against the trait.

use crate::table::{DataError, Table};
use std::error::Error;
use std::fmt;

/// Errors produced by synthesizer training and sampling.
#[derive(Debug)]
pub enum SynthError {
    /// `sample` was called before a successful `fit`.
    NotFitted,
    /// A data-layer failure (schema mismatch, unseen category, …).
    Data(DataError),
    /// Training diverged or hit an invalid configuration.
    Training(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NotFitted => f.write_str("synthesizer has not been fitted"),
            SynthError::Data(e) => write!(f, "data error: {e}"),
            SynthError::Training(m) => write!(f, "training error: {m}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for SynthError {
    fn from(e: DataError) -> Self {
        SynthError::Data(e)
    }
}

/// A generative model over tabular data.
///
/// Implementations are deterministic given their configured seed and the
/// `seed` passed to [`TabularSynthesizer::sample`].
pub trait TabularSynthesizer {
    /// Short human-readable model name (e.g. `"KiNETGAN"`, `"CTGAN"`).
    fn name(&self) -> &str;

    /// Trains on `table`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError`] when the table is unusable or training
    /// diverges.
    fn fit(&mut self, table: &Table) -> Result<(), SynthError>;

    /// Draws `n` synthetic rows with the given sampling seed.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::NotFitted`] before [`TabularSynthesizer::fit`].
    fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError>;

    /// Optional white-box critic scores (higher = "more real" according to
    /// the model's own discriminator). Used by the white-box membership
    /// inference attack; models without an accessible critic return `None`.
    fn critic_scores(&self, _table: &Table) -> Option<Vec<f64>> {
        None
    }
}

/// The shared batched sampling loop every generator-backed synthesizer in
/// the workspace runs: draw batches of at most `batch.max(32)` rows from
/// `gen_batch` until `n` rows are collected, then trim to exactly `n`.
///
/// `gen_batch(want, rng)` must return exactly `want` decoded rows; it owns
/// whatever model-specific work a batch needs (condition sampling, forward
/// pass, inverse transform, KG rejection rounds). RNG consumption order is
/// exactly the per-model loops this replaces, so fixed-seed releases are
/// unchanged.
///
/// # Errors
///
/// Propagates `gen_batch` and table-append failures.
pub fn sample_in_batches<R: rand::Rng>(
    schema: crate::Schema,
    n: usize,
    batch: usize,
    rng: &mut R,
    mut gen_batch: impl FnMut(usize, &mut R) -> Result<Table, SynthError>,
) -> Result<Table, SynthError> {
    let mut out = Table::empty(schema);
    let batch = batch.max(32);
    while out.n_rows() < n {
        let want = (n - out.n_rows()).min(batch);
        out.append(&gen_batch(want, rng)?)?;
    }
    let idx: Vec<usize> = (0..n).collect();
    Ok(out.select_rows(&idx))
}

/// Blanket helper: fit then sample in one call.
///
/// # Errors
///
/// Propagates errors from either phase.
pub fn fit_and_sample<S: TabularSynthesizer>(
    model: &mut S,
    table: &Table,
    n: usize,
    seed: u64,
) -> Result<Table, SynthError> {
    model.fit(table)?;
    model.sample(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, Schema};
    use crate::value::Value;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// A trivial synthesizer that resamples training rows — used to test
    /// the trait contract and downstream evaluation code.
    struct Resampler {
        data: Option<Table>,
    }

    impl TabularSynthesizer for Resampler {
        fn name(&self) -> &str {
            "Resampler"
        }

        fn fit(&mut self, table: &Table) -> Result<(), SynthError> {
            if table.is_empty() {
                return Err(SynthError::Training("empty training table".into()));
            }
            self.data = Some(table.clone());
            Ok(())
        }

        fn sample(&self, n: usize, seed: u64) -> Result<Table, SynthError> {
            let data = self.data.as_ref().ok_or(SynthError::NotFitted)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..data.n_rows())).collect();
            Ok(data.select_rows(&idx))
        }
    }

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("c"),
            ColumnMeta::continuous("x"),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::cat("a"), Value::num(1.0)],
                vec![Value::cat("b"), Value::num(2.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn contract_not_fitted() {
        let r = Resampler { data: None };
        assert!(matches!(r.sample(3, 0), Err(SynthError::NotFitted)));
    }

    #[test]
    fn fit_then_sample_shapes() {
        let mut r = Resampler { data: None };
        let t = table();
        let s = fit_and_sample(&mut r, &t, 10, 42).unwrap();
        assert_eq!(s.n_rows(), 10);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut r = Resampler { data: None };
        r.fit(&table()).unwrap();
        assert_eq!(r.sample(5, 7).unwrap(), r.sample(5, 7).unwrap());
    }

    #[test]
    fn default_critic_is_none() {
        let mut r = Resampler { data: None };
        r.fit(&table()).unwrap();
        assert!(r.critic_scores(&table()).is_none());
    }

    #[test]
    fn error_display() {
        assert!(SynthError::NotFitted
            .to_string()
            .contains("not been fitted"));
        let e = SynthError::Training("nan".into());
        assert!(e.to_string().contains("nan"));
    }
}
