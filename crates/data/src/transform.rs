//! Encoding tables into the GAN representation and back.
//!
//! Following CTGAN (Xu et al., 2019), which KiNETGAN builds on:
//!
//! * a **categorical** column with `k` categories becomes a one-hot block of
//!   width `k`;
//! * a **continuous** column becomes `1 + m` values: a scalar `alpha` (the
//!   offset within the chosen mixture mode, scaled to roughly `[-1, 1]`)
//!   followed by a one-hot block over the `m` modes of an EM-fitted
//!   [`GaussianMixture1d`] — *mode-specific normalization*.

use crate::gmm::GaussianMixture1d;
use crate::schema::{ColumnKind, Schema};
use crate::table::{DataError, Table};
use crate::value::Value;
use kinet_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bidirectional mapping between category strings and dense codes.
///
/// ```
/// use kinet_data::transform::CategoricalEncoder;
/// let enc = CategoricalEncoder::fit(["b", "a", "b"].iter().map(|s| s.to_string()));
/// assert_eq!(enc.n_categories(), 2);
/// assert_eq!(enc.encode("a"), Some(0));
/// assert_eq!(enc.decode(1), Some("b"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalEncoder {
    categories: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl CategoricalEncoder {
    /// Learns the dictionary (sorted for determinism).
    pub fn fit(values: impl IntoIterator<Item = String>) -> Self {
        let mut categories: Vec<String> = values.into_iter().collect();
        categories.sort();
        categories.dedup();
        let index = categories
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        Self { categories, index }
    }

    /// Number of distinct categories.
    pub fn n_categories(&self) -> usize {
        self.categories.len()
    }

    /// The dense code of `value`, if known.
    pub fn encode(&self, value: &str) -> Option<usize> {
        self.index.get(value).copied()
    }

    /// The category string for `code`, if in range.
    pub fn decode(&self, code: usize) -> Option<&str> {
        self.categories.get(code).map(String::as_str)
    }

    /// All categories in code order.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }
}

/// Mode-specific normalizer for one continuous column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModeSpecificNormalizer {
    gmm: GaussianMixture1d,
    /// Every training value was integral (ports, packet counts); decoded
    /// values are rounded so domain rules over exact integers stay
    /// satisfiable.
    integral: bool,
}

impl ModeSpecificNormalizer {
    /// Fits the column's mixture (up to `max_modes` components).
    pub fn fit(data: &[f64], max_modes: usize, seed: u64) -> Self {
        let integral = data.iter().all(|v| v.fract() == 0.0);
        Self {
            gmm: GaussianMixture1d::fit(data, max_modes, 100, seed),
            integral,
        }
    }

    /// Number of mixture modes (encoded width is `1 + n_modes`).
    pub fn n_modes(&self) -> usize {
        self.gmm.n_components()
    }

    /// The underlying mixture.
    pub fn gmm(&self) -> &GaussianMixture1d {
        &self.gmm
    }

    /// Encodes `x` as `(alpha, mode)`, sampling the mode from the
    /// posterior (CTGAN's stochastic assignment).
    pub fn encode(&self, x: f64, rng: &mut impl Rng) -> (f32, usize) {
        let mode = self.gmm.sample_component(x, rng);
        (self.alpha_for(x, mode), mode)
    }

    /// Encodes `x` deterministically with the most responsible mode.
    pub fn encode_deterministic(&self, x: f64) -> (f32, usize) {
        let mode = self.gmm.most_likely_component(x);
        (self.alpha_for(x, mode), mode)
    }

    fn alpha_for(&self, x: f64, mode: usize) -> f32 {
        let mu = self.gmm.means()[mode];
        let sd = self.gmm.stds()[mode];
        (((x - mu) / (4.0 * sd)) as f32).clamp(-1.0, 1.0)
    }

    /// Decodes `(alpha, mode)` back to a raw value. Non-finite alphas
    /// (from a diverged generator) decode to the mode mean rather than
    /// propagating NaNs into releases.
    pub fn decode(&self, alpha: f32, mode: usize) -> f64 {
        let mode = mode.min(self.n_modes() - 1);
        let mu = self.gmm.means()[mode];
        let sd = self.gmm.stds()[mode];
        let alpha = if alpha.is_finite() {
            alpha.clamp(-1.0, 1.0)
        } else {
            0.0
        };
        let raw = mu + (alpha as f64) * 4.0 * sd;
        if self.integral {
            raw.round()
        } else {
            raw
        }
    }
}

/// How one encoded column block should be produced by a generator head.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeadKind {
    /// A single `tanh` scalar (continuous alpha).
    Tanh,
    /// A softmax/Gumbel-softmax block (mode or category one-hot).
    Softmax,
}

/// One output-head block: kind plus width in the encoded row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadSpec {
    /// Activation kind for this block.
    pub kind: HeadKind,
    /// Number of encoded columns in this block.
    pub width: usize,
}

/// The location of one source column inside the encoded row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSpan {
    /// First encoded column index.
    pub start: usize,
    /// Total encoded width (1 + modes for continuous, k for categorical).
    pub width: usize,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum ColumnEncoding {
    Categorical(CategoricalEncoder),
    Continuous(ModeSpecificNormalizer),
}

/// Whole-table encoder: fits per-column encoders, transforms tables to
/// matrices for GAN training and inverts generated matrices back to tables.
///
/// ```
/// use kinet_data::{transform::DataTransformer, ColumnMeta, Schema, Table, Value};
/// use rand::{rngs::StdRng, SeedableRng};
/// let schema = Schema::new(vec![
///     ColumnMeta::categorical("proto"),
///     ColumnMeta::continuous("port"),
/// ]);
/// let t = Table::from_rows(schema, vec![
///     vec![Value::cat("udp"), Value::num(53.0)],
///     vec![Value::cat("tcp"), Value::num(443.0)],
/// ]).unwrap();
/// let tx = DataTransformer::fit(&t, 3, 0).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let m = tx.transform(&t, &mut rng);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), tx.width());
/// let back = tx.inverse_transform(&m).unwrap();
/// assert_eq!(back.cat_column("proto").unwrap(), t.cat_column("proto").unwrap());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataTransformer {
    schema: Schema,
    encodings: Vec<ColumnEncoding>,
    spans: Vec<ColumnSpan>,
    width: usize,
}

impl DataTransformer {
    /// Fits per-column encoders on `table`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] when `table` is empty (there is
    /// nothing to fit).
    pub fn fit(table: &Table, max_modes: usize, seed: u64) -> Result<Self, DataError> {
        if table.is_empty() {
            return Err(DataError::SchemaMismatch(
                "cannot fit a transformer on an empty table".into(),
            ));
        }
        let schema = table.schema().clone();
        let mut encodings = Vec::with_capacity(schema.len());
        let mut spans = Vec::with_capacity(schema.len());
        let mut offset = 0;
        for (ci, col) in schema.iter().enumerate() {
            match col.kind() {
                ColumnKind::Categorical => {
                    let enc =
                        CategoricalEncoder::fit(table.cat_column(col.name())?.iter().cloned());
                    let w = enc.n_categories();
                    spans.push(ColumnSpan {
                        start: offset,
                        width: w,
                    });
                    offset += w;
                    encodings.push(ColumnEncoding::Categorical(enc));
                }
                ColumnKind::Continuous => {
                    let norm = ModeSpecificNormalizer::fit(
                        table.num_column(col.name())?,
                        max_modes,
                        seed.wrapping_add(ci as u64),
                    );
                    let w = 1 + norm.n_modes();
                    spans.push(ColumnSpan {
                        start: offset,
                        width: w,
                    });
                    offset += w;
                    encodings.push(ColumnEncoding::Continuous(norm));
                }
            }
        }
        Ok(Self {
            schema,
            encodings,
            spans,
            width: offset,
        })
    }

    /// Total encoded width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The fitted schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-column encoded spans, in schema order.
    pub fn spans(&self) -> &[ColumnSpan] {
        &self.spans
    }

    /// The generator head layout matching [`DataTransformer::width`]:
    /// `Tanh(1) + Softmax(modes)` per continuous column, `Softmax(k)` per
    /// categorical column, in schema order.
    pub fn head_layout(&self) -> Vec<HeadSpec> {
        let mut heads = Vec::new();
        for enc in &self.encodings {
            match enc {
                ColumnEncoding::Categorical(e) => {
                    heads.push(HeadSpec {
                        kind: HeadKind::Softmax,
                        width: e.n_categories(),
                    });
                }
                ColumnEncoding::Continuous(n) => {
                    heads.push(HeadSpec {
                        kind: HeadKind::Tanh,
                        width: 1,
                    });
                    heads.push(HeadSpec {
                        kind: HeadKind::Softmax,
                        width: n.n_modes(),
                    });
                }
            }
        }
        heads
    }

    /// The categorical encoder for column `name`, if that column is
    /// categorical.
    pub fn categorical_encoder(&self, name: &str) -> Option<&CategoricalEncoder> {
        let idx = self.schema.index_of(name)?;
        match &self.encodings[idx] {
            ColumnEncoding::Categorical(e) => Some(e),
            ColumnEncoding::Continuous(_) => None,
        }
    }

    /// The normalizer for column `name`, if that column is continuous.
    pub fn normalizer(&self, name: &str) -> Option<&ModeSpecificNormalizer> {
        let idx = self.schema.index_of(name)?;
        match &self.encodings[idx] {
            ColumnEncoding::Continuous(n) => Some(n),
            ColumnEncoding::Categorical(_) => None,
        }
    }

    /// Encodes a table (stochastic mode assignment, as in CTGAN training).
    ///
    /// # Panics
    ///
    /// Panics if `table`'s schema differs from the fitted schema or if a
    /// categorical value was never seen during [`DataTransformer::fit`].
    pub fn transform(&self, table: &Table, rng: &mut impl Rng) -> Matrix {
        self.transform_impl(table, Some(rng))
    }

    /// Encodes a table deterministically (most-likely mode assignment).
    ///
    /// # Panics
    ///
    /// Same conditions as [`DataTransformer::transform`].
    pub fn transform_deterministic(&self, table: &Table) -> Matrix {
        self.transform_impl::<rand::rngs::StdRng>(table, None)
    }

    fn transform_impl<R: Rng>(&self, table: &Table, mut rng: Option<&mut R>) -> Matrix {
        assert_eq!(
            table.schema(),
            &self.schema,
            "table schema differs from fitted schema"
        );
        let n = table.n_rows();
        let mut out = Matrix::zeros(n, self.width);
        for (ci, enc) in self.encodings.iter().enumerate() {
            let span = self.spans[ci];
            let name = self.schema.column(ci).name();
            match enc {
                ColumnEncoding::Categorical(e) => {
                    let col = table.cat_column(name).expect("schema checked");
                    for (r, v) in col.iter().enumerate() {
                        let code = e
                            .encode(v)
                            .unwrap_or_else(|| panic!("unseen category {v:?} in column {name:?}"));
                        out[(r, span.start + code)] = 1.0;
                    }
                }
                ColumnEncoding::Continuous(norm) => {
                    let col = table.num_column(name).expect("schema checked");
                    for (r, &x) in col.iter().enumerate() {
                        let (alpha, mode) = match rng.as_deref_mut() {
                            Some(rng) => norm.encode(x, rng),
                            None => norm.encode_deterministic(x),
                        };
                        out[(r, span.start)] = alpha;
                        out[(r, span.start + 1 + mode)] = 1.0;
                    }
                }
            }
        }
        out
    }

    /// Decodes an encoded (or generated) matrix back into a table, taking
    /// `argmax` over one-hot blocks and clamping alphas.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] when the matrix width differs
    /// from [`DataTransformer::width`].
    pub fn inverse_transform(&self, m: &Matrix) -> Result<Table, DataError> {
        if m.cols() != self.width {
            return Err(DataError::SchemaMismatch(format!(
                "matrix width {} does not match encoded width {}",
                m.cols(),
                self.width
            )));
        }
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(m.rows());
        for r in 0..m.rows() {
            let mut row = Vec::with_capacity(self.schema.len());
            for (ci, enc) in self.encodings.iter().enumerate() {
                let span = self.spans[ci];
                match enc {
                    ColumnEncoding::Categorical(e) => {
                        let code = argmax_block(m, r, span.start, span.width);
                        let cat = e.decode(code).expect("argmax in range");
                        row.push(Value::cat(cat));
                    }
                    ColumnEncoding::Continuous(norm) => {
                        let alpha = m[(r, span.start)];
                        let mode = argmax_block(m, r, span.start + 1, span.width - 1);
                        row.push(Value::num(norm.decode(alpha, mode)));
                    }
                }
            }
            rows.push(row);
        }
        Table::from_rows(self.schema.clone(), rows)
    }
}

fn argmax_block(m: &Matrix, row: usize, start: usize, width: usize) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for j in 0..width {
        let v = m[(row, start + j)];
        if v > best_v {
            best_v = v;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;
    use rand::{rngs::StdRng, SeedableRng};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("proto"),
            ColumnMeta::continuous("port"),
            ColumnMeta::categorical("event"),
        ]);
        let mut rows = Vec::new();
        for i in 0..60 {
            let proto = if i % 3 == 0 { "udp" } else { "tcp" };
            let port = if i % 3 == 0 {
                53.0 + (i % 5) as f64
            } else {
                443.0 + (i % 7) as f64
            };
            let event = if i % 2 == 0 { "dns" } else { "web" };
            rows.push(vec![Value::cat(proto), Value::num(port), Value::cat(event)]);
        }
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn encoder_sorted_and_total() {
        let enc = CategoricalEncoder::fit(["z", "a", "m", "a"].iter().map(|s| s.to_string()));
        assert_eq!(enc.categories(), &["a", "m", "z"]);
        assert_eq!(enc.encode("m"), Some(1));
        assert_eq!(enc.encode("q"), None);
        assert_eq!(enc.decode(2), Some("z"));
        assert_eq!(enc.decode(9), None);
    }

    #[test]
    fn normalizer_roundtrip_within_mode() {
        let data: Vec<f64> = (0..200).map(|i| 100.0 + (i % 10) as f64).collect();
        let n = ModeSpecificNormalizer::fit(&data, 4, 0);
        let (alpha, mode) = n.encode_deterministic(105.0);
        let back = n.decode(alpha, mode);
        assert!((back - 105.0).abs() < 1.0, "decoded {back}");
    }

    #[test]
    fn normalizer_alpha_bounded() {
        let n = ModeSpecificNormalizer::fit(&[0.0, 1.0, 2.0, 3.0], 2, 0);
        let (alpha, _) = n.encode_deterministic(1e9);
        assert!((-1.0..=1.0).contains(&alpha));
    }

    #[test]
    fn transformer_width_consistency() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 0).unwrap();
        let span_total: usize = tx.spans().iter().map(|s| s.width).sum();
        assert_eq!(span_total, tx.width());
        let head_total: usize = tx.head_layout().iter().map(|h| h.width).sum();
        assert_eq!(head_total, tx.width());
    }

    #[test]
    fn one_hot_blocks_are_one_hot() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let m = tx.transform(&t, &mut rng);
        // proto block is the first span
        let span = tx.spans()[0];
        for r in 0..m.rows() {
            let s: f32 = (0..span.width).map(|j| m[(r, span.start + j)]).sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn roundtrip_categoricals_exact_continuous_close() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = tx.transform(&t, &mut rng);
        let back = tx.inverse_transform(&m).unwrap();
        assert_eq!(
            back.cat_column("proto").unwrap(),
            t.cat_column("proto").unwrap()
        );
        assert_eq!(
            back.cat_column("event").unwrap(),
            t.cat_column("event").unwrap()
        );
        let orig = t.num_column("port").unwrap();
        let dec = back.num_column("port").unwrap();
        for (a, b) in orig.iter().zip(dec) {
            assert!((a - b).abs() < 5.0, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_transform_is_stable() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 3).unwrap();
        assert_eq!(
            tx.transform_deterministic(&t),
            tx.transform_deterministic(&t)
        );
    }

    #[test]
    fn accessors_by_kind() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 0).unwrap();
        assert!(tx.categorical_encoder("proto").is_some());
        assert!(tx.categorical_encoder("port").is_none());
        assert!(tx.normalizer("port").is_some());
        assert!(tx.normalizer("event").is_none());
    }

    #[test]
    fn empty_table_rejected() {
        let t = Table::empty(table().schema().clone());
        assert!(DataTransformer::fit(&t, 4, 0).is_err());
    }

    #[test]
    fn inverse_rejects_wrong_width() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 0).unwrap();
        let bad = Matrix::zeros(1, tx.width() + 1);
        assert!(tx.inverse_transform(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "unseen category")]
    fn unseen_category_panics() {
        let t = table();
        let tx = DataTransformer::fit(&t, 4, 0).unwrap();
        let mut other = Table::empty(t.schema().clone());
        other
            .push_row(vec![
                Value::cat("gopher"),
                Value::num(1.0),
                Value::cat("dns"),
            ])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = tx.transform(&other, &mut rng);
    }
}
