//! Cell values for tabular data.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One cell of a [`crate::Table`]: categorical or continuous.
///
/// ```
/// use kinet_data::Value;
/// let v = Value::cat("udp");
/// assert_eq!(v.as_cat(), Some("udp"));
/// assert!(Value::num(443.0).is_num());
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Value {
    /// A categorical value.
    Cat(String),
    /// A continuous (numeric) value.
    Num(f64),
}

impl Value {
    /// Builds a categorical value.
    pub fn cat(s: impl Into<String>) -> Self {
        Value::Cat(s.into())
    }

    /// Builds a numeric value.
    pub fn num(v: f64) -> Self {
        Value::Num(v)
    }

    /// The categorical payload, if any.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Cat(_) => None,
        }
    }

    /// `true` for [`Value::Cat`].
    pub fn is_cat(&self) -> bool {
        matches!(self, Value::Cat(_))
    }

    /// `true` for [`Value::Num`].
    pub fn is_num(&self) -> bool {
        matches!(self, Value::Num(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Cat(s) => f.write_str(s),
            Value::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::cat(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Cat(s)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::cat("x").as_cat(), Some("x"));
        assert_eq!(Value::cat("x").as_num(), None);
        assert_eq!(Value::num(1.5).as_num(), Some(1.5));
        assert!(Value::num(0.0).is_num());
        assert!(Value::cat("c").is_cat());
    }

    #[test]
    fn display_integral_floats_without_fraction() {
        assert_eq!(Value::num(443.0).to_string(), "443");
        assert_eq!(Value::num(1.5).to_string(), "1.5");
        assert_eq!(Value::cat("tcp").to_string(), "tcp");
    }

    #[test]
    fn conversions() {
        let v: Value = "udp".into();
        assert!(v.is_cat());
        let v: Value = 5i64.into();
        assert_eq!(v.as_num(), Some(5.0));
    }
}
