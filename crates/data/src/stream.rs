//! Streaming chunked access to tabular data.
//!
//! The fleet-scale simulation ("millions of users" in ROADMAP terms) cannot
//! materialize every device's shard as one decoded [`Table`]: a 32-device ×
//! 5k-row run would hold 160k decoded rows at once, and real deployments
//! are orders of magnitude beyond that. This module provides the
//! out-of-core substrate:
//!
//! * [`ChunkSource`]: anything that can yield fixed-size row chunks on
//!   demand (dataset simulators implement it with persistent RNG state, so
//!   chunked and eager generation are bit-identical);
//! * [`StreamingShard`]: a chunk-size-bound driver over a source that
//!   tracks how many decoded rows were ever resident at once;
//! * [`Reservoir`]: deterministic uniform row sampling over a stream of
//!   unknown length (Algorithm R), for bounded training windows and
//!   bounded share pools;
//! * [`PeakRows`]: a shareable high-water-mark counter, so a fleet report
//!   can state its actual decoded-rows peak instead of promising one.

use crate::encoded::KgTableChecker;
use crate::table::{DataError, Table};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A source of table rows yielded in bounded chunks.
///
/// Implementations own whatever state the stream needs (RNG, file cursor,
/// row index); calling [`ChunkSource::next_chunk`] repeatedly must visit
/// each row exactly once, in a deterministic order for deterministic
/// sources.
pub trait ChunkSource {
    /// Schema of every chunk this source yields.
    fn schema(&self) -> &crate::Schema;

    /// Yields the next chunk with **at most** `max_rows` rows, or `None`
    /// when the stream is exhausted. A returned chunk is never empty.
    ///
    /// # Errors
    ///
    /// Propagates row-construction failures from the underlying generator.
    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Table>, DataError>;

    /// Drains the whole stream into one eager table (the legacy path;
    /// memory-bounded callers should iterate chunks instead).
    ///
    /// # Errors
    ///
    /// Propagates [`ChunkSource::next_chunk`] failures.
    fn collect(&mut self, chunk_rows: usize) -> Result<Table, DataError>
    where
        Self: Sized,
    {
        let mut out = Table::empty(self.schema().clone());
        while let Some(chunk) = self.next_chunk(chunk_rows.max(1))? {
            out.append(&chunk)?;
        }
        Ok(out)
    }
}

/// Chunked view over an existing in-memory table (adapter for code paths
/// that already hold a `Table` but feed a streaming consumer).
#[derive(Clone, Debug)]
pub struct TableChunks<'a> {
    table: &'a Table,
    next_row: usize,
}

impl<'a> TableChunks<'a> {
    /// Wraps `table` for chunked iteration from the first row.
    pub fn new(table: &'a Table) -> Self {
        Self { table, next_row: 0 }
    }
}

impl ChunkSource for TableChunks<'_> {
    fn schema(&self) -> &crate::Schema {
        self.table.schema()
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Table>, DataError> {
        if self.next_row >= self.table.n_rows() {
            return Ok(None);
        }
        let end = (self.next_row + max_rows.max(1)).min(self.table.n_rows());
        let idx: Vec<usize> = (self.next_row..end).collect();
        self.next_row = end;
        Ok(Some(self.table.select_rows(&idx)))
    }
}

/// Shareable high-water mark of decoded rows resident at one moment.
///
/// Consumers call [`PeakRows::observe`] with their current residency
/// (chunk in flight + any retained window); the maximum across all
/// observations is the number a fleet report can honestly claim as its
/// decoded-rows peak.
#[derive(Clone, Debug, Default)]
pub struct PeakRows(Arc<AtomicUsize>);

impl PeakRows {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `resident_rows` as a candidate peak.
    pub fn observe(&self, resident_rows: usize) {
        self.0.fetch_max(resident_rows, Ordering::Relaxed);
        kinet_obs::metrics::DATA_PEAK_DECODED_ROWS.record_max(resident_rows as u64);
    }

    /// The largest residency observed so far.
    pub fn peak(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// Deterministic uniform reservoir sample over a row stream (Algorithm R).
///
/// Offers rows one chunk at a time; after `n` offered rows, each holds a
/// `min(1, capacity/n)` chance of being in the sample. The RNG is owned and
/// seeded, so the sample depends only on the seed and the stream order —
/// not on chunk boundaries (the per-row accept/replace draws consume the
/// RNG identically however the stream is chunked).
#[derive(Debug)]
pub struct Reservoir {
    sample: Table,
    seen: usize,
    capacity: usize,
    rng: StdRng,
}

impl Reservoir {
    /// An empty reservoir holding at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(schema: crate::Schema, capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            sample: Table::empty(schema),
            seen: 0,
            capacity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offers every row of `chunk` to the sample.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] when `chunk` disagrees with
    /// the reservoir's schema.
    pub fn offer(&mut self, chunk: &Table) -> Result<(), DataError> {
        for r in 0..chunk.n_rows() {
            self.seen += 1;
            if self.sample.n_rows() < self.capacity {
                self.sample.push_row(chunk.row(r))?;
            } else {
                let slot = self.rng.random_range(0..self.seen);
                if slot < self.capacity {
                    // Replace in place: rebuild via select_rows would be
                    // O(capacity) per row; swapping one row keeps offers
                    // O(columns).
                    self.sample.set_row(slot, chunk.row(r))?;
                }
            }
        }
        Ok(())
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.sample.n_rows()
    }

    /// `true` when no row has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Total rows offered so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Consumes the reservoir into its sample table.
    pub fn into_table(self) -> Table {
        self.sample
    }
}

/// Running KG-validity tally over streamed chunks: each chunk is interned
/// and scored through the compiled reasoner ([`KgTableChecker`]) and then
/// dropped, so validity of an arbitrarily long stream costs one chunk of
/// decoded rows.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamValidity {
    valid: usize,
    total: usize,
}

impl StreamValidity {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores `chunk` and folds it into the tally.
    ///
    /// # Errors
    ///
    /// Propagates checker failures (schema mismatch).
    pub fn observe(
        &mut self,
        checker: &KgTableChecker<'_>,
        chunk: &Table,
    ) -> Result<(), DataError> {
        self.valid += checker.count_valid(chunk)?;
        self.total += chunk.n_rows();
        Ok(())
    }

    /// Folds another tally into this one (e.g. a per-share tally into a
    /// pool-wide aggregate). Pure addition, so folding order never matters.
    pub fn absorb(&mut self, other: &StreamValidity) {
        self.valid += other.valid;
        self.total += other.total;
    }

    /// Valid fraction of every row observed (1.0 before any row).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.valid as f64 / self.total as f64
        }
    }

    /// Rows observed.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Drives a [`ChunkSource`] with a fixed chunk size, reporting each chunk
/// to a callback and recording residency in a shared [`PeakRows`].
#[derive(Debug)]
pub struct StreamingShard<S> {
    source: S,
    chunk_rows: usize,
    peak: PeakRows,
    rows_seen: usize,
}

impl<S: ChunkSource> StreamingShard<S> {
    /// Wraps `source` with the given chunk size and peak tracker.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_rows` is zero.
    pub fn new(source: S, chunk_rows: usize, peak: PeakRows) -> Self {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        Self {
            source,
            chunk_rows,
            peak,
            rows_seen: 0,
        }
    }

    /// The wrapped source's schema.
    pub fn schema(&self) -> &crate::Schema {
        self.source.schema()
    }

    /// Total rows streamed so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Streams the source to exhaustion. `retained_rows(chunk)` must
    /// return how many decoded rows the consumer keeps resident *besides*
    /// the chunk itself (its window/reservoir length) so the peak tracker
    /// sees the true residency; `consume` processes the chunk, which is
    /// dropped afterwards.
    ///
    /// # Errors
    ///
    /// Propagates source and consumer failures.
    pub fn for_each_chunk<E: From<DataError>>(
        &mut self,
        mut consume: impl FnMut(&Table) -> Result<usize, E>,
    ) -> Result<(), E> {
        while let Some(chunk) = self.source.next_chunk(self.chunk_rows)? {
            self.rows_seen += chunk.n_rows();
            kinet_obs::metrics::DATA_CHUNKS_DECODED.incr(1);
            let retained = consume(&chunk)?;
            self.peak.observe(chunk.n_rows() + retained);
        }
        Ok(())
    }
}

/// Stream-level fault shape for a [`FaultedSource`] wrapper. Offsets are
/// row counts from the start of the stream; `None` disables that fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkFaultSpec {
    /// Stream ends (cleanly) after this many rows: a truncated shard.
    pub truncate_after: Option<usize>,
    /// Numeric cells of rows at stream offset ≥ this arrive as NaN: a
    /// corrupt wire.
    pub poison_from: Option<usize>,
    /// The source returns an error once this many rows were yielded: a
    /// mid-stream crash.
    pub fail_after: Option<usize>,
}

impl ChunkFaultSpec {
    /// `true` when no fault is configured.
    pub fn is_clean(&self) -> bool {
        self.truncate_after.is_none() && self.poison_from.is_none() && self.fail_after.is_none()
    }
}

/// A [`ChunkSource`] wrapper that injects stream-level faults —
/// truncation, NaN corruption, or a mid-stream failure — at deterministic
/// row offsets. With a clean spec it is a transparent pass-through, so
/// fault-aware callers can wrap unconditionally.
#[derive(Debug)]
pub struct FaultedSource<S> {
    inner: S,
    spec: ChunkFaultSpec,
    yielded: usize,
}

impl<S: ChunkSource> FaultedSource<S> {
    /// Wraps `inner` with the given fault shape.
    pub fn new(inner: S, spec: ChunkFaultSpec) -> Self {
        Self {
            inner,
            spec,
            yielded: 0,
        }
    }

    /// Rows yielded so far (post-fault view).
    pub fn yielded(&self) -> usize {
        self.yielded
    }
}

impl<S: ChunkSource> ChunkSource for FaultedSource<S> {
    fn schema(&self) -> &crate::Schema {
        self.inner.schema()
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Table>, DataError> {
        if let Some(fail_at) = self.spec.fail_after {
            if self.yielded >= fail_at {
                return Err(DataError::Parse(format!(
                    "injected stream fault after {} row(s)",
                    self.yielded
                )));
            }
        }
        if let Some(cut) = self.spec.truncate_after {
            if self.yielded >= cut {
                return Ok(None);
            }
        }
        // Clamp the request so fault offsets land on chunk boundaries:
        // the wrapper never yields a row past a configured horizon.
        let mut want = max_rows.max(1);
        for horizon in [self.spec.fail_after, self.spec.truncate_after]
            .into_iter()
            .flatten()
        {
            want = want.min(horizon.saturating_sub(self.yielded).max(1));
        }
        let Some(mut chunk) = self.inner.next_chunk(want)? else {
            return Ok(None);
        };
        if let Some(poison_from) = self.spec.poison_from {
            let start = self.yielded;
            let numeric: Vec<usize> = chunk
                .schema()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.kind() == crate::ColumnKind::Continuous)
                .map(|(i, _)| i)
                .collect();
            for r in 0..chunk.n_rows() {
                if start + r >= poison_from {
                    let mut row = chunk.row(r);
                    for &c in &numeric {
                        row[c] = crate::Value::num(f64::NAN);
                    }
                    chunk.set_row(r, row)?;
                }
            }
        }
        self.yielded += chunk.n_rows();
        Ok(Some(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, Schema};
    use crate::value::Value;

    fn numbered(n: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("c"),
            ColumnMeta::continuous("x"),
        ]);
        Table::from_rows(
            schema,
            (0..n)
                .map(|i| vec![Value::cat(format!("r{i}")), Value::num(i as f64)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn table_chunks_visit_every_row_once() {
        let t = numbered(10);
        let mut src = TableChunks::new(&t);
        let mut sizes = Vec::new();
        let mut collected = Table::empty(t.schema().clone());
        while let Some(chunk) = src.next_chunk(4).unwrap() {
            sizes.push(chunk.n_rows());
            collected.append(&chunk).unwrap();
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(collected, t);
        assert!(src.next_chunk(4).unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn collect_equals_source_table() {
        let t = numbered(23);
        let collected = TableChunks::new(&t).collect(7).unwrap();
        assert_eq!(collected, t);
    }

    #[test]
    fn reservoir_keeps_all_rows_under_capacity() {
        let t = numbered(5);
        let mut res = Reservoir::new(t.schema().clone(), 8, 1);
        res.offer(&t).unwrap();
        assert_eq!(res.len(), 5);
        assert_eq!(res.seen(), 5);
        assert_eq!(res.into_table(), t);
    }

    #[test]
    fn reservoir_bounds_capacity_and_ignores_chunking() {
        let t = numbered(200);
        // Whole table at once vs. awkward chunk sizes: identical sample.
        let mut whole = Reservoir::new(t.schema().clone(), 16, 9);
        whole.offer(&t).unwrap();
        let mut chunked = Reservoir::new(t.schema().clone(), 16, 9);
        let mut src = TableChunks::new(&t);
        while let Some(chunk) = src.next_chunk(13).unwrap() {
            chunked.offer(&chunk).unwrap();
        }
        let (a, b) = (whole.into_table(), chunked.into_table());
        assert_eq!(a.n_rows(), 16);
        assert_eq!(a, b, "reservoir must not depend on chunk boundaries");
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Sampling 50 of 500 rows repeatedly: early and late rows must both
        // appear — Algorithm R without the replacement step would keep only
        // the first 50.
        let t = numbered(500);
        let mut late = 0;
        for seed in 0..20 {
            let mut res = Reservoir::new(t.schema().clone(), 50, seed);
            res.offer(&t).unwrap();
            let sample = res.into_table();
            late += sample
                .num_column("x")
                .unwrap()
                .iter()
                .filter(|&&x| x >= 250.0)
                .count();
        }
        let frac = late as f64 / (20.0 * 50.0);
        assert!(
            (0.35..0.65).contains(&frac),
            "late-half fraction {frac} strays from uniform"
        );
    }

    #[test]
    fn peak_rows_tracks_maximum() {
        let peak = PeakRows::new();
        peak.observe(10);
        peak.observe(3);
        let clone = peak.clone();
        clone.observe(7);
        assert_eq!(peak.peak(), 10);
        peak.observe(12);
        assert_eq!(clone.peak(), 12, "clones share the counter");
    }

    #[test]
    fn streaming_shard_reports_residency() {
        let t = numbered(20);
        let peak = PeakRows::new();
        let mut shard = StreamingShard::new(TableChunks::new(&t), 6, peak.clone());
        let mut window = 0usize;
        shard
            .for_each_chunk(|chunk: &Table| -> Result<usize, DataError> {
                window += chunk.n_rows() / 2; // consumer retains half
                Ok(window)
            })
            .unwrap();
        assert_eq!(shard.rows_seen(), 20);
        // final chunk: 2 rows + 9 retained rows residency
        assert!(peak.peak() >= 11, "peak {}", peak.peak());
        assert!(peak.peak() < 20, "peak must not reach eager size");
    }

    #[test]
    fn stream_validity_rate_is_one_before_any_row() {
        // Regression: a device that shared zero rows must not poison
        // aggregate validity with NaN.
        let v = StreamValidity::new();
        assert_eq!(v.total(), 0);
        assert_eq!(v.rate(), 1.0);
        assert!(v.rate().is_finite());
    }

    #[test]
    fn clean_faulted_source_is_transparent() {
        let t = numbered(17);
        let collected = FaultedSource::new(TableChunks::new(&t), ChunkFaultSpec::default())
            .collect(5)
            .unwrap();
        assert_eq!(collected, t);
        assert!(ChunkFaultSpec::default().is_clean());
    }

    #[test]
    fn truncation_ends_the_stream_early() {
        let t = numbered(20);
        let spec = ChunkFaultSpec {
            truncate_after: Some(7),
            ..ChunkFaultSpec::default()
        };
        let mut src = FaultedSource::new(TableChunks::new(&t), spec);
        let collected = src.collect(4).unwrap();
        assert_eq!(
            collected.n_rows(),
            7,
            "cut mid-chunk, exactly at the horizon"
        );
        assert_eq!(src.yielded(), 7);
    }

    #[test]
    fn poisoning_nans_numeric_cells_from_the_offset() {
        let t = numbered(10);
        let spec = ChunkFaultSpec {
            poison_from: Some(4),
            ..ChunkFaultSpec::default()
        };
        let collected = FaultedSource::new(TableChunks::new(&t), spec)
            .collect(3)
            .unwrap();
        let xs = collected.num_column("x").unwrap();
        assert!(xs[..4].iter().all(|v| v.is_finite()), "clean prefix");
        assert!(xs[4..].iter().all(|v| v.is_nan()), "poisoned suffix");
        // Categorical cells are untouched.
        assert_eq!(collected.cat_column("c").unwrap()[9], "r9");
    }

    #[test]
    fn mid_stream_failure_surfaces_as_a_data_error() {
        let t = numbered(12);
        let spec = ChunkFaultSpec {
            fail_after: Some(5),
            ..ChunkFaultSpec::default()
        };
        let mut src = FaultedSource::new(TableChunks::new(&t), spec);
        let mut rows = 0;
        let err = loop {
            match src.next_chunk(4) {
                Ok(Some(chunk)) => rows += chunk.n_rows(),
                Ok(None) => panic!("stream must fail, not end"),
                Err(e) => break e,
            }
        };
        assert_eq!(rows, 5, "exactly the pre-fault rows arrive");
        assert!(err.to_string().contains("injected stream fault"), "{err}");
    }
}
