//! Column metadata and table schemas.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The statistical kind of a column.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ColumnKind {
    /// Discrete values from a finite dictionary.
    Categorical,
    /// Real-valued.
    Continuous,
}

impl fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnKind::Categorical => f.write_str("categorical"),
            ColumnKind::Continuous => f.write_str("continuous"),
        }
    }
}

/// Name and kind of one column.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ColumnMeta {
    name: String,
    kind: ColumnKind,
}

impl ColumnMeta {
    /// Creates metadata for a categorical column.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ColumnKind::Categorical,
        }
    }

    /// Creates metadata for a continuous column.
    pub fn continuous(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ColumnKind::Continuous,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column kind.
    pub fn kind(&self) -> ColumnKind {
        self.kind
    }
}

/// An ordered list of column metadata.
///
/// ```
/// use kinet_data::{ColumnMeta, Schema};
/// let schema = Schema::new(vec![
///     ColumnMeta::categorical("protocol"),
///     ColumnMeta::continuous("dst_port"),
/// ]);
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.index_of("dst_port"), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Builds a schema from column metadata.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name() == c.name()),
                "duplicate column name {:?}",
                c.name()
            );
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column metadata by position.
    pub fn column(&self, idx: usize) -> &ColumnMeta {
        &self.columns[idx]
    }

    /// Iterates over columns in order.
    pub fn iter(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.columns.iter()
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Metadata of the column named `name`.
    pub fn by_name(&self, name: &str) -> Option<&ColumnMeta> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Names of all categorical columns, in order.
    pub fn categorical_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.kind() == ColumnKind::Categorical)
            .map(ColumnMeta::name)
            .collect()
    }

    /// Names of all continuous columns, in order.
    pub fn continuous_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.kind() == ColumnKind::Continuous)
            .map(ColumnMeta::name)
            .collect()
    }

    /// A new schema with only the named columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown.
    pub fn project(&self, names: &[&str]) -> Schema {
        let columns = names
            .iter()
            .map(|n| {
                self.by_name(n)
                    .unwrap_or_else(|| panic!("unknown column {n:?}"))
                    .clone()
            })
            .collect();
        Schema { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnMeta::categorical("protocol"),
            ColumnMeta::continuous("dst_port"),
            ColumnMeta::categorical("event"),
        ])
    }

    #[test]
    fn lookup() {
        let s = schema();
        assert_eq!(s.index_of("event"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(
            s.by_name("protocol").unwrap().kind(),
            ColumnKind::Categorical
        );
    }

    #[test]
    fn kind_partitions() {
        let s = schema();
        assert_eq!(s.categorical_names(), vec!["protocol", "event"]);
        assert_eq!(s.continuous_names(), vec!["dst_port"]);
    }

    #[test]
    fn project_reorders() {
        let s = schema().project(&["event", "protocol"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).name(), "event");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn rejects_duplicates() {
        let _ = Schema::new(vec![
            ColumnMeta::categorical("x"),
            ColumnMeta::continuous("x"),
        ]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn project_rejects_unknown() {
        let _ = schema().project(&["ghost"]);
    }
}
