//! Columnar table storage with CSV I/O and deterministic splits.

use crate::schema::{ColumnKind, ColumnMeta, Schema};
use crate::value::Value;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced by table construction and I/O.
#[derive(Debug)]
pub enum DataError {
    /// A row's arity or a value's kind does not match the schema.
    SchemaMismatch(String),
    /// A named column does not exist.
    UnknownColumn(String),
    /// CSV parsing failed.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DataError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            DataError::Parse(m) => write!(f, "parse error: {m}"),
            DataError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum ColumnData {
    Cat(Vec<String>),
    Num(Vec<f64>),
}

/// A column-oriented table of mixed categorical/continuous data.
///
/// ```
/// use kinet_data::{ColumnMeta, Schema, Table, Value};
/// let schema = Schema::new(vec![
///     ColumnMeta::categorical("proto"),
///     ColumnMeta::continuous("port"),
/// ]);
/// let mut t = Table::empty(schema);
/// t.push_row(vec![Value::cat("udp"), Value::num(53.0)]).unwrap();
/// assert_eq!(t.n_rows(), 1);
/// assert_eq!(t.value(0, 0), Value::cat("udp"));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .iter()
            .map(|c| match c.kind() {
                ColumnKind::Categorical => ColumnData::Cat(Vec::new()),
                ColumnKind::Continuous => ColumnData::Num(Vec::new()),
            })
            .collect();
        Self { schema, columns }
    }

    /// Builds a table from rows.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] when any row disagrees with the
    /// schema.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self, DataError> {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        match self.columns.first() {
            Some(ColumnData::Cat(v)) => v.len(),
            Some(ColumnData::Num(v)) => v.len(),
            None => 0,
        }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] on arity or kind mismatch.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::SchemaMismatch(format!(
                "row has {} values but schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        // validate kinds first so a failed push leaves the table unchanged
        for (i, v) in row.iter().enumerate() {
            let kind = self.schema.column(i).kind();
            let ok = matches!(
                (kind, v),
                (ColumnKind::Categorical, Value::Cat(_)) | (ColumnKind::Continuous, Value::Num(_))
            );
            if !ok {
                return Err(DataError::SchemaMismatch(format!(
                    "column {:?} expects {kind} but got {v:?}",
                    self.schema.column(i).name()
                )));
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            match (&mut self.columns[i], v) {
                (ColumnData::Cat(col), Value::Cat(s)) => col.push(s),
                (ColumnData::Num(col), Value::Num(x)) => col.push(x),
                _ => unreachable!("validated above"),
            }
        }
        Ok(())
    }

    /// Overwrites row `row` with `values` (same validation as
    /// [`Table::push_row`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] on arity, kind, or row-index
    /// mismatch; a failed call leaves the table unchanged.
    pub fn set_row(&mut self, row: usize, values: Vec<Value>) -> Result<(), DataError> {
        if row >= self.n_rows() {
            return Err(DataError::SchemaMismatch(format!(
                "row {row} out of bounds for table of {} rows",
                self.n_rows()
            )));
        }
        if values.len() != self.schema.len() {
            return Err(DataError::SchemaMismatch(format!(
                "row has {} values but schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            let kind = self.schema.column(i).kind();
            let ok = matches!(
                (kind, v),
                (ColumnKind::Categorical, Value::Cat(_)) | (ColumnKind::Continuous, Value::Num(_))
            );
            if !ok {
                return Err(DataError::SchemaMismatch(format!(
                    "column {:?} expects {kind} but got {v:?}",
                    self.schema.column(i).name()
                )));
            }
        }
        for (i, v) in values.into_iter().enumerate() {
            match (&mut self.columns[i], v) {
                (ColumnData::Cat(col), Value::Cat(s)) => col[row] = s,
                (ColumnData::Num(col), Value::Num(x)) => col[row] = x,
                _ => unreachable!("validated above"),
            }
        }
        Ok(())
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn value(&self, row: usize, col: usize) -> Value {
        match &self.columns[col] {
            // kinet-lint: allow(transitive-allocation) — on the tape hot cone only via the `.row()`/`.value()` name-collision edges (the tape walks Matrix rows in place)
            ColumnData::Cat(v) => Value::Cat(v[row].clone()),
            ColumnData::Num(v) => Value::Num(v[row]),
        }
    }

    /// One full row as values.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn row(&self, row: usize) -> Vec<Value> {
        // kinet-lint: allow(transitive-allocation) — on the tape hot cone only via the `.row()`/`.value()` name-collision edges (the tape walks Matrix rows in place)
        (0..self.n_cols()).map(|c| self.value(row, c)).collect()
    }

    /// Borrow of a categorical column's strings.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownColumn`] or
    /// [`DataError::SchemaMismatch`] when the column is continuous.
    pub fn cat_column(&self, name: &str) -> Result<&[String], DataError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))?;
        match &self.columns[idx] {
            ColumnData::Cat(v) => Ok(v),
            ColumnData::Num(_) => Err(DataError::SchemaMismatch(format!(
                "column {name:?} is continuous"
            ))),
        }
    }

    /// Borrow of a continuous column's values.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownColumn`] or
    /// [`DataError::SchemaMismatch`] when the column is categorical.
    pub fn num_column(&self, name: &str) -> Result<&[f64], DataError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))?;
        match &self.columns[idx] {
            ColumnData::Num(v) => Ok(v),
            ColumnData::Cat(_) => Err(DataError::SchemaMismatch(format!(
                "column {name:?} is categorical"
            ))),
        }
    }

    /// Distinct values and counts of a categorical column, in first-seen
    /// order of the distinct values sorted lexicographically.
    ///
    /// # Errors
    ///
    /// Propagates [`Table::cat_column`] errors.
    pub fn category_counts(&self, name: &str) -> Result<BTreeMap<String, usize>, DataError> {
        let col = self.cat_column(name)?;
        let mut counts = BTreeMap::new();
        for v in col {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        Ok(counts)
    }

    /// A new table with only the given rows (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        let mut out = Table::empty(self.schema.clone());
        for (col_out, col_in) in out.columns.iter_mut().zip(&self.columns) {
            match (col_out, col_in) {
                (ColumnData::Cat(o), ColumnData::Cat(i)) => {
                    o.extend(indices.iter().map(|&r| i[r].clone()))
                }
                (ColumnData::Num(o), ColumnData::Num(i)) => o.extend(indices.iter().map(|&r| i[r])),
                _ => unreachable!("same schema"),
            }
        }
        out
    }

    /// A new table with only the named columns.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownColumn`] for unknown names.
    pub fn project(&self, names: &[&str]) -> Result<Table, DataError> {
        let mut metas = Vec::new();
        let mut cols = Vec::new();
        for n in names {
            let idx = self
                .schema
                .index_of(n)
                .ok_or_else(|| DataError::UnknownColumn(n.to_string()))?;
            metas.push(self.schema.column(idx).clone());
            cols.push(self.columns[idx].clone());
        }
        Ok(Table {
            schema: Schema::new(metas),
            columns: cols,
        })
    }

    /// Appends all rows of `other` (schemas must match).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] when schemas differ.
    pub fn append(&mut self, other: &Table) -> Result<(), DataError> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch(
                "append with different schema".into(),
            ));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            match (a, b) {
                (ColumnData::Cat(a), ColumnData::Cat(b)) => a.extend(b.iter().cloned()),
                (ColumnData::Num(a), ColumnData::Num(b)) => a.extend(b.iter().copied()),
                _ => unreachable!("same schema"),
            }
        }
        Ok(())
    }

    /// Deterministic shuffled split into `(train, test)` with `test_frac`
    /// of rows in the test set.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_frac < 1`.
    pub fn train_test_split(&self, test_frac: f64, rng: &mut impl Rng) -> (Table, Table) {
        assert!(
            test_frac > 0.0 && test_frac < 1.0,
            "test_frac must be in (0, 1), got {test_frac}"
        );
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        let n_test = ((self.n_rows() as f64) * test_frac).round() as usize;
        let n_test = n_test.clamp(1, self.n_rows().saturating_sub(1));
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.select_rows(train_idx), self.select_rows(test_idx))
    }

    /// A uniformly subsampled table of at most `n` rows.
    pub fn subsample(&self, n: usize, rng: &mut impl Rng) -> Table {
        if n >= self.n_rows() {
            return self.clone();
        }
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        self.select_rows(&idx)
    }

    /// Writes the table as headered CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), DataError> {
        let header: Vec<&str> = self.schema.iter().map(ColumnMeta::name).collect();
        writeln!(w, "{}", header.join(","))?;
        for r in 0..self.n_rows() {
            let row: Vec<String> = (0..self.n_cols())
                .map(|c| self.value(r, c).to_string())
                .collect();
            writeln!(w, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Reads a headered CSV produced by [`Table::write_csv`] against a
    /// known schema.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Parse`] on malformed input.
    pub fn read_csv<R: BufRead>(schema: Schema, r: R) -> Result<Table, DataError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| DataError::Parse("empty csv".into()))??;
        let names: Vec<&str> = header.split(',').collect();
        if names.len() != schema.len() {
            return Err(DataError::Parse(format!(
                "csv has {} columns but schema has {}",
                names.len(),
                schema.len()
            )));
        }
        for (n, c) in names.iter().zip(schema.iter()) {
            if *n != c.name() {
                return Err(DataError::Parse(format!(
                    "csv column {n:?} does not match schema column {:?}",
                    c.name()
                )));
            }
        }
        let mut t = Table::empty(schema);
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != t.schema.len() {
                return Err(DataError::Parse(format!(
                    "line {}: wrong arity",
                    lineno + 2
                )));
            }
            let row: Result<Vec<Value>, DataError> = fields
                .iter()
                .zip(t.schema.clone().iter())
                .map(|(f, c)| match c.kind() {
                    ColumnKind::Categorical => Ok(Value::cat(*f)),
                    ColumnKind::Continuous => f
                        .parse::<f64>()
                        .map(Value::Num)
                        .map_err(|e| DataError::Parse(format!("line {}: {e}", lineno + 2))),
                })
                .collect();
            t.push_row(row?)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("proto"),
            ColumnMeta::continuous("port"),
            ColumnMeta::categorical("event"),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec!["udp".into(), 53.0.into(), "dns".into()],
                vec!["tcp".into(), 443.0.into(), "web".into()],
                vec!["udp".into(), 123.0.into(), "ntp".into()],
                vec!["tcp".into(), 443.0.into(), "web".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = small_table();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.value(1, 0), Value::cat("tcp"));
        assert_eq!(t.value(2, 1), Value::num(123.0));
        assert_eq!(t.row(0).len(), 3);
    }

    #[test]
    fn push_row_validates_arity_and_kind() {
        let mut t = small_table();
        assert!(matches!(
            t.push_row(vec!["udp".into()]),
            Err(DataError::SchemaMismatch(_))
        ));
        assert!(matches!(
            t.push_row(vec!["udp".into(), "oops".into(), "dns".into()]),
            Err(DataError::SchemaMismatch(_))
        ));
        assert_eq!(t.n_rows(), 4, "failed pushes must not mutate");
    }

    #[test]
    fn column_accessors() {
        let t = small_table();
        assert_eq!(t.cat_column("proto").unwrap()[0], "udp");
        assert_eq!(t.num_column("port").unwrap()[1], 443.0);
        assert!(t.cat_column("port").is_err());
        assert!(t.num_column("ghost").is_err());
    }

    #[test]
    fn category_counts_aggregate() {
        let t = small_table();
        let counts = t.category_counts("proto").unwrap();
        assert_eq!(counts["udp"], 2);
        assert_eq!(counts["tcp"], 2);
    }

    #[test]
    fn select_and_project() {
        let t = small_table();
        let sel = t.select_rows(&[3, 0]);
        assert_eq!(sel.n_rows(), 2);
        assert_eq!(sel.value(0, 2), Value::cat("web"));
        let proj = t.project(&["event", "port"]).unwrap();
        assert_eq!(proj.n_cols(), 2);
        assert_eq!(proj.schema().column(0).name(), "event");
        assert!(t.project(&["ghost"]).is_err());
    }

    #[test]
    fn append_same_schema() {
        let mut a = small_table();
        let b = small_table();
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 8);
        let other = Table::empty(Schema::new(vec![ColumnMeta::categorical("x")]));
        assert!(a.append(&other).is_err());
    }

    #[test]
    fn split_deterministic_and_partitioning() {
        let t = small_table();
        let (tr1, te1) = t.train_test_split(0.25, &mut StdRng::seed_from_u64(9));
        let (tr2, te2) = t.train_test_split(0.25, &mut StdRng::seed_from_u64(9));
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.n_rows() + te1.n_rows(), 4);
        assert_eq!(te1.n_rows(), 1);
    }

    #[test]
    fn subsample_caps_rows() {
        let t = small_table();
        let s = t.subsample(2, &mut StdRng::seed_from_u64(1));
        assert_eq!(s.n_rows(), 2);
        let all = t.subsample(100, &mut StdRng::seed_from_u64(1));
        assert_eq!(all.n_rows(), 4);
    }

    #[test]
    fn csv_roundtrip() {
        let t = small_table();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Table::read_csv(t.schema().clone(), buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_rejects_bad_header() {
        let t = small_table();
        let csv = "a,b,c\nudp,53,dns\n";
        assert!(matches!(
            Table::read_csv(t.schema().clone(), csv.as_bytes()),
            Err(DataError::Parse(_))
        ));
    }

    #[test]
    fn csv_rejects_bad_number() {
        let t = small_table();
        let csv = "proto,port,event\nudp,notanum,dns\n";
        assert!(matches!(
            Table::read_csv(t.schema().clone(), csv.as_bytes()),
            Err(DataError::Parse(_))
        ));
    }

    #[test]
    fn json_roundtrip_preserves_table() {
        // Exercises the shim's full derive surface: named structs, tuple
        // enum variants (ColumnData), Vec<String>/Vec<f64> payloads.
        let t = small_table();
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn error_display_messages() {
        let e = DataError::UnknownColumn("x".into());
        assert!(e.to_string().contains("unknown column"));
        let e = DataError::Parse("bad".into());
        assert!(e.to_string().contains("parse"));
    }
}
