//! Interned table encodings and the compiled-validity bridge.
//!
//! [`Table`] stores categorical cells as owned `String`s — right for I/O,
//! wrong for the train/sample hot loop, where every knowledge-graph query
//! used to re-clone rows into string-keyed assignments. [`EncodedTable`]
//! is the pre-encoded counterpart: every categorical column becomes a
//! `Vec<Sym>` of interned codes (interned once, at encode time), numeric
//! columns stay `f64`, and the per-column code tables line up with
//! [`crate::transform::CategoricalEncoder`]'s lexicographic dictionary so
//! one-hot offsets and interned symbols translate in O(1).
//!
//! [`KgColumnBinding`] maps schema columns onto a
//! [`CompiledReasoner`]'s field ids once; after that, validity scoring is
//! an integer loop per row, parallelized over the `KINET_THREADS` worker
//! pool (a deterministic count: workers own disjoint row ranges and
//! integer addition is order-independent).

use crate::schema::{ColumnKind, Schema};
use crate::table::{DataError, Table};
use crate::value::Value;
use kinet_kg::{Assignment, AttrValue, Cell, CompiledReasoner, Interner, Sym};
use kinet_tensor::pool;

/// One table row as a string-keyed [`Assignment`] — the reference
/// reasoner's input format. The fast paths avoid this conversion entirely;
/// it exists for the string reference pipeline and its benchmarks.
pub fn row_to_assignment(table: &Table, row: usize) -> Assignment {
    let mut a = Assignment::new();
    for (ci, col) in table.schema().iter().enumerate() {
        match table.value(row, ci) {
            Value::Cat(s) => a.set(col.name(), AttrValue::Cat(s)),
            Value::Num(v) => a.set(col.name(), AttrValue::Num(v)),
        };
    }
    a
}

/// Rows per worker below which validity scoring stays serial (the check is
/// tens of nanoseconds per row; spawning costs tens of microseconds).
const MIN_ROWS_PER_THREAD: usize = 4096;

/// Sentinel for "symbol not in this column's dictionary".
const NO_CODE: u32 = u32::MAX;

#[derive(Clone, Debug)]
enum EncodedColumn {
    Cat {
        /// Per-row interned symbols.
        syms: Vec<Sym>,
        /// Dictionary code → symbol, in lexicographic (code) order —
        /// identical layout to [`crate::transform::CategoricalEncoder`]
        /// fitted on the same column.
        code_syms: Vec<Sym>,
    },
    Num(Vec<f64>),
}

/// A table pre-encoded onto an [`Interner`]: the zero-allocation substrate
/// for compiled validity scoring and the training batch pipeline.
#[derive(Clone, Debug)]
pub struct EncodedTable {
    schema: Schema,
    interner: Interner,
    columns: Vec<EncodedColumn>,
    /// Dense `sym → dictionary code` per column (`NO_CODE` when the symbol
    /// is not in that column's dictionary), sized to the final interner.
    sym_codes: Vec<Vec<u32>>,
    n_rows: usize,
}

impl EncodedTable {
    /// Encodes `table` on top of `interner` (typically a clone of the
    /// knowledge graph's base interner, so rule symbols and data symbols
    /// share one space). Interns each distinct categorical value once.
    pub fn encode(table: &Table, mut interner: Interner) -> Self {
        let schema = table.schema().clone();
        let mut columns = Vec::with_capacity(schema.len());
        for col in schema.iter() {
            match col.kind() {
                ColumnKind::Categorical => {
                    let raw = table.cat_column(col.name()).expect("schema-checked");
                    let mut dict: Vec<&str> = raw.iter().map(String::as_str).collect();
                    dict.sort_unstable();
                    dict.dedup();
                    let code_syms: Vec<Sym> = dict.iter().map(|v| interner.intern(v)).collect();
                    let syms: Vec<Sym> = raw.iter().map(|v| interner.intern(v)).collect();
                    columns.push(EncodedColumn::Cat { syms, code_syms });
                }
                ColumnKind::Continuous => {
                    let raw = table.num_column(col.name()).expect("schema-checked");
                    columns.push(EncodedColumn::Num(raw.to_vec()));
                }
            }
        }
        let sym_codes = columns
            .iter()
            .map(|c| match c {
                EncodedColumn::Cat { code_syms, .. } => {
                    let mut map = vec![NO_CODE; interner.len()];
                    for (code, &sym) in code_syms.iter().enumerate() {
                        map[sym as usize] = code as u32;
                    }
                    map
                }
                EncodedColumn::Num(_) => Vec::new(),
            })
            .collect();
        Self {
            schema,
            interner,
            columns,
            sym_codes,
            n_rows: table.n_rows(),
        }
    }

    /// The encoded schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of encoded rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The symbol table (base interner plus this table's vocabulary).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// A categorical column's per-row symbols.
    pub fn cat_syms(&self, col: usize) -> Option<&[Sym]> {
        match &self.columns[col] {
            EncodedColumn::Cat { syms, .. } => Some(syms),
            EncodedColumn::Num(_) => None,
        }
    }

    /// A continuous column's values.
    pub fn num_values(&self, col: usize) -> Option<&[f64]> {
        match &self.columns[col] {
            EncodedColumn::Num(v) => Some(v),
            EncodedColumn::Cat { .. } => None,
        }
    }

    /// A categorical column's dictionary as symbols, in code
    /// (lexicographic) order.
    pub fn code_syms(&self, col: usize) -> Option<&[Sym]> {
        match &self.columns[col] {
            EncodedColumn::Cat { code_syms, .. } => Some(code_syms),
            EncodedColumn::Num(_) => None,
        }
    }

    /// The dictionary code of `sym` in column `col`, if the symbol occurs
    /// in that column's training vocabulary.
    pub fn code_of_sym(&self, col: usize, sym: Sym) -> Option<usize> {
        let map = &self.sym_codes[col];
        match map.get(sym as usize) {
            Some(&code) if code != NO_CODE => Some(code as usize),
            _ => None,
        }
    }

    /// Counts KG-valid rows with the compiled reasoner, in parallel over
    /// the worker pool. Deterministic for every `KINET_THREADS`.
    pub fn count_valid(&self, compiled: &CompiledReasoner, binding: &KgColumnBinding) -> usize {
        let scope = binding
            .scope_col
            .and_then(|c| self.cat_syms(c))
            .unwrap_or(&[]);
        let rules = compiled.rules();
        pool::parallel_count(self.n_rows, MIN_ROWS_PER_THREAD, &|row| {
            let event_row = if scope.is_empty() {
                rules.wildcard_row()
            } else {
                rules.event_row(Cell::Cat(scope[row]))
            };
            binding
                .checked
                .iter()
                .all(|&(col, fid)| match &self.columns[col] {
                    EncodedColumn::Cat { syms, .. } => {
                        compiled.cat_ok(event_row, fid, syms[row], &self.interner)
                    }
                    EncodedColumn::Num(vals) => compiled.num_ok(event_row, fid, vals[row]),
                })
        })
    }

    /// Fraction of KG-valid rows (1.0 for an empty table, like the string
    /// reasoner's `validity_rate`).
    pub fn validity_rate(&self, compiled: &CompiledReasoner, binding: &KgColumnBinding) -> f64 {
        if self.n_rows == 0 {
            return 1.0;
        }
        self.count_valid(compiled, binding) as f64 / self.n_rows as f64
    }
}

/// The one-time mapping from a schema's columns onto a compiled rule
/// grid's field ids. Columns no rule mentions are skipped entirely.
///
/// Bindings are **positional**: they must be built from the same schema
/// as the [`EncodedTable`] they are used with (the table's own
/// `schema()`). For scoring arbitrary string tables, use
/// [`KgTableChecker`], which resolves columns by name.
#[derive(Clone, Debug)]
pub struct KgColumnBinding {
    /// The categorical scope (event-class) column, if present.
    scope_col: Option<usize>,
    /// `(schema column, compiled field id)` for every constrained column.
    checked: Vec<(usize, usize)>,
}

impl KgColumnBinding {
    /// Binds `schema` onto `compiled`'s field table.
    pub fn bind(compiled: &CompiledReasoner, schema: &Schema) -> Self {
        let rules = compiled.rules();
        let scope_col = schema
            .index_of(rules.scope_field())
            .filter(|&c| schema.column(c).kind() == ColumnKind::Categorical);
        let checked = schema
            .iter()
            .enumerate()
            .filter_map(|(c, col)| rules.field_id(col.name()).map(|fid| (c, fid)))
            .collect();
        Self { scope_col, checked }
    }

    /// The categorical scope column, if the schema has one.
    pub fn scope_col(&self) -> Option<usize> {
        self.scope_col
    }

    /// The `(schema column, field id)` pairs under rule constraints.
    pub fn checked(&self) -> &[(usize, usize)] {
        &self.checked
    }
}

/// Compiled validity scoring straight off string [`Table`]s: symbols are
/// looked up (not interned) per cell, so arbitrary tables — including
/// generated ones with categories outside the base vocabulary — can be
/// scored without mutating any state and without building assignments.
#[derive(Clone, Debug)]
pub struct KgTableChecker<'a> {
    compiled: &'a CompiledReasoner,
    interner: &'a Interner,
    /// The scope column's name, when the bound schema has a categorical
    /// one. Columns are resolved by name (not position) against each
    /// scored table, so column order never silently misbinds.
    scope_name: Option<String>,
    /// `(bound column name, bound kind, compiled field id)` for every
    /// constrained column of the bound schema.
    cols: Vec<(String, ColumnKind, usize)>,
}

enum ColRef<'t> {
    Cat(&'t [String]),
    Num(&'t [f64]),
}

impl<'a> KgTableChecker<'a> {
    /// Builds a checker for tables of `schema` shape. `interner` is only
    /// read; strings it does not know fall back to the compiled reasoner's
    /// unknown-symbol semantics (outside every allowed set, prefix rules
    /// checked on the raw text).
    pub fn new(compiled: &'a CompiledReasoner, interner: &'a Interner, schema: &Schema) -> Self {
        let rules = compiled.rules();
        let scope_name = schema
            .index_of(rules.scope_field())
            .filter(|&c| schema.column(c).kind() == ColumnKind::Categorical)
            .map(|c| schema.column(c).name().to_string());
        let cols = schema
            .iter()
            .filter_map(|col| {
                rules
                    .field_id(col.name())
                    .map(|fid| (col.name().to_string(), col.kind(), fid))
            })
            .collect();
        Self {
            compiled,
            interner,
            scope_name,
            cols,
        }
    }

    fn column_refs<'t>(&self, table: &'t Table) -> Result<Vec<(ColRef<'t>, usize)>, DataError> {
        self.cols
            .iter()
            .map(|(name, kind, fid)| {
                let r = match kind {
                    ColumnKind::Categorical => ColRef::Cat(table.cat_column(name)?),
                    ColumnKind::Continuous => ColRef::Num(table.num_column(name)?),
                };
                Ok((r, *fid))
            })
            .collect()
    }

    fn scope_refs<'t>(&self, table: &'t Table) -> Result<&'t [String], DataError> {
        match &self.scope_name {
            Some(name) => table.cat_column(name),
            None => Ok(&[]),
        }
    }

    /// The single per-row verdict both the counting and the
    /// invalid-row-collection paths share.
    fn check_row(&self, cols: &[(ColRef<'_>, usize)], scope: &[String], row: usize) -> bool {
        let rules = self.compiled.rules();
        let event_row = if scope.is_empty() {
            rules.wildcard_row()
        } else {
            match self.interner.get(&scope[row]) {
                Some(sym) => rules.event_row(Cell::Cat(sym)),
                None => rules.wildcard_row(),
            }
        };
        cols.iter().all(|(col, fid)| match col {
            ColRef::Cat(vals) => {
                let s = vals[row].as_str();
                match self.interner.get(s) {
                    Some(sym) => self.compiled.cat_ok(event_row, *fid, sym, self.interner),
                    None => self.compiled.cat_ok_unknown(event_row, *fid, s),
                }
            }
            ColRef::Num(vals) => self.compiled.num_ok(event_row, *fid, vals[row]),
        })
    }

    /// Counts KG-valid rows, in parallel over the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownColumn`] or
    /// [`DataError::SchemaMismatch`] when `table` lacks a bound column or
    /// disagrees on its kind.
    pub fn count_valid(&self, table: &Table) -> Result<usize, DataError> {
        let cols = self.column_refs(table)?;
        let scope: &[String] = self.scope_refs(table)?;
        Ok(pool::parallel_count(
            table.n_rows(),
            MIN_ROWS_PER_THREAD,
            &|row| self.check_row(&cols, scope, row),
        ))
    }

    /// Fraction of KG-valid rows (1.0 for an empty table).
    ///
    /// # Errors
    ///
    /// Propagates [`KgTableChecker::count_valid`] errors.
    pub fn validity_rate(&self, table: &Table) -> Result<f64, DataError> {
        if table.is_empty() {
            return Ok(1.0);
        }
        Ok(self.count_valid(table)? as f64 / table.n_rows() as f64)
    }

    /// `true` when row `row` of `table` satisfies every applicable rule.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] on schema mismatch.
    pub fn row_ok(&self, table: &Table, row: usize) -> Result<bool, DataError> {
        let mut invalid = Vec::new();
        self.collect_invalid_rows_in(table, row..row + 1, &mut invalid)?;
        Ok(invalid.is_empty())
    }

    /// Appends the indices of KG-invalid rows to `out` (cleared first) —
    /// the rejection-sampling primitive.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] on schema mismatch.
    pub fn invalid_rows(&self, table: &Table, out: &mut Vec<usize>) -> Result<(), DataError> {
        out.clear();
        self.collect_invalid_rows_in(table, 0..table.n_rows(), out)
    }

    fn collect_invalid_rows_in(
        &self,
        table: &Table,
        rows: std::ops::Range<usize>,
        out: &mut Vec<usize>,
    ) -> Result<(), DataError> {
        let cols = self.column_refs(table)?;
        let scope: &[String] = self.scope_refs(table)?;
        for row in rows {
            if !self.check_row(&cols, scope, row) {
                out.push(row);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;
    use crate::value::Value;
    use kinet_kg::NetworkKg;

    fn lab_like_table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("event"),
            ColumnMeta::categorical("protocol"),
            ColumnMeta::continuous("dst_port"),
            ColumnMeta::categorical("src_ip"),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![
                    Value::cat("cve_1999_0003"),
                    Value::cat("udp"),
                    Value::num(33000.0),
                    Value::cat("192.168.1.12"),
                ],
                vec![
                    Value::cat("cve_1999_0003"),
                    Value::cat("tcp"), // invalid protocol for this event
                    Value::num(33000.0),
                    Value::cat("192.168.1.12"),
                ],
                vec![
                    Value::cat("cve_1999_0003"),
                    Value::cat("udp"),
                    Value::num(80.0), // out of the CVE port window
                    Value::cat("192.168.1.12"),
                ],
                vec![
                    Value::cat("heartbeat"),
                    Value::cat("udp"),
                    Value::num(123.0),
                    Value::cat("10.0.0.1"), // violates the subnet prefix
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_interns_each_distinct_value_once() {
        let kg = NetworkKg::lab_default();
        let t = lab_like_table();
        let enc = EncodedTable::encode(&t, kg.base_interner().clone());
        assert_eq!(enc.n_rows(), 4);
        let ev = enc.cat_syms(0).unwrap();
        assert_eq!(ev[0], ev[1], "same string, same symbol");
        let dict = enc.code_syms(1).unwrap();
        let names: Vec<&str> = dict.iter().map(|&s| enc.interner().resolve(s)).collect();
        assert_eq!(names, ["tcp", "udp"], "dictionary in lexicographic order");
        assert_eq!(enc.code_of_sym(1, dict[1]), Some(1));
        assert_eq!(enc.code_of_sym(1, ev[0]), None, "event sym not in protocol");
        assert_eq!(enc.num_values(2).unwrap()[3], 123.0);
        assert!(enc.cat_syms(2).is_none());
    }

    #[test]
    fn checker_agrees_with_string_reasoner_per_row() {
        let kg = NetworkKg::lab_default();
        let t = lab_like_table();
        let checker = KgTableChecker::new(kg.compiled(), kg.base_interner(), t.schema());
        for row in 0..t.n_rows() {
            let a = row_to_assignment(&t, row);
            assert_eq!(
                checker.row_ok(&t, row).unwrap(),
                kg.reasoner().is_valid(&a).is_valid(),
                "row {row}"
            );
        }
    }

    #[test]
    fn validity_paths_agree_and_parallelize() {
        let kg = NetworkKg::lab_default();
        let t = lab_like_table();
        let checker = KgTableChecker::new(kg.compiled(), kg.base_interner(), t.schema());
        let rate = checker.validity_rate(&t).unwrap();
        assert!((rate - 0.25).abs() < 1e-9, "1 of 4 rows valid: {rate}");

        let enc = EncodedTable::encode(&t, kg.base_interner().clone());
        let binding = KgColumnBinding::bind(kg.compiled(), t.schema());
        assert_eq!(enc.validity_rate(kg.compiled(), &binding), rate);
        for threads in [1, 2, 4] {
            let r =
                kinet_tensor::with_threads(threads, || enc.validity_rate(kg.compiled(), &binding));
            assert_eq!(r, rate, "threads={threads}");
        }
        let mut invalid = Vec::new();
        checker.invalid_rows(&t, &mut invalid).unwrap();
        assert_eq!(invalid, vec![1, 2, 3]);
        let empty = Table::empty(t.schema().clone());
        assert_eq!(checker.validity_rate(&empty).unwrap(), 1.0);
    }

    #[test]
    fn checker_resolves_columns_by_name_not_position() {
        let kg = NetworkKg::lab_default();
        let bound = Schema::new(vec![
            ColumnMeta::categorical("event"),
            ColumnMeta::categorical("protocol"),
        ]);
        let checker = KgTableChecker::new(kg.compiled(), kg.base_interner(), &bound);
        // Same columns, opposite order: verdicts must be unchanged.
        let reordered = Table::from_rows(
            Schema::new(vec![
                ColumnMeta::categorical("protocol"),
                ColumnMeta::categorical("event"),
            ]),
            vec![
                vec![Value::cat("udp"), Value::cat("heartbeat")],
                vec![Value::cat("tcp"), Value::cat("heartbeat")], // heartbeat is udp-only
            ],
        )
        .unwrap();
        assert_eq!(checker.validity_rate(&reordered).unwrap(), 0.5);
        // A table missing a bound column errors instead of misbinding.
        let missing = Table::from_rows(
            Schema::new(vec![ColumnMeta::categorical("event")]),
            vec![vec![Value::cat("heartbeat")]],
        )
        .unwrap();
        assert!(checker.count_valid(&missing).is_err());
    }

    #[test]
    fn unknown_categories_fall_back_to_string_semantics() {
        let kg = NetworkKg::lab_default();
        let schema = Schema::new(vec![
            ColumnMeta::categorical("event"),
            ColumnMeta::categorical("protocol"),
        ]);
        let t = Table::from_rows(
            schema,
            vec![
                vec![Value::cat("never_seen_event"), Value::cat("udp")],
                vec![Value::cat("heartbeat"), Value::cat("gopher")],
            ],
        )
        .unwrap();
        let checker = KgTableChecker::new(kg.compiled(), kg.base_interner(), t.schema());
        // Unknown event: wildcard rules only, udp allowed.
        assert!(checker.row_ok(&t, 0).unwrap());
        // Unknown protocol: outside the wildcard allowed set.
        assert!(!checker.row_ok(&t, 1).unwrap());
    }
}
