//! The condition vector `C` of the paper (§III-A-1, Eq. 1–2).
//!
//! `C` is the concatenation of one-hot encodings of the *conditional
//! attributes* — the discrete columns the generator must respect. KiNETGAN
//! conditions on the full set simultaneously; the CTGAN baseline conditions
//! on a single column at a time (the rest of `C` left zero).

use crate::table::{DataError, Table};
use crate::transform::CategoricalEncoder;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Layout of the condition vector over the chosen conditional columns.
///
/// ```
/// use kinet_data::{condition::ConditionVectorSpec, ColumnMeta, Schema, Table, Value};
/// let schema = Schema::new(vec![
///     ColumnMeta::categorical("proto"),
///     ColumnMeta::categorical("event"),
/// ]);
/// let t = Table::from_rows(schema, vec![
///     vec![Value::cat("udp"), Value::cat("dns")],
///     vec![Value::cat("tcp"), Value::cat("web")],
/// ]).unwrap();
/// let spec = ConditionVectorSpec::fit(&t, &["proto", "event"]).unwrap();
/// assert_eq!(spec.width(), 4);
/// let c = spec.vector_from_row(&t, 0).unwrap();
/// assert_eq!(c, vec![0.0, 1.0, 1.0, 0.0]); // udp is index 1 of {tcp, udp}
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConditionVectorSpec {
    columns: Vec<String>,
    encoders: Vec<CategoricalEncoder>,
    offsets: Vec<usize>,
    width: usize,
}

impl ConditionVectorSpec {
    /// Learns per-column dictionaries for the named categorical columns.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownColumn`] / [`DataError::SchemaMismatch`]
    /// if a name is missing or not categorical.
    pub fn fit(table: &Table, columns: &[&str]) -> Result<Self, DataError> {
        let mut encoders = Vec::with_capacity(columns.len());
        let mut offsets = Vec::with_capacity(columns.len());
        let mut width = 0;
        for &name in columns {
            let enc = CategoricalEncoder::fit(table.cat_column(name)?.iter().cloned());
            offsets.push(width);
            width += enc.n_categories();
            encoders.push(enc);
        }
        Ok(Self {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            encoders,
            offsets,
            width,
        })
    }

    /// Total width of `C` (sum of per-column category counts).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The conditional column names, in vector order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of conditional columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// The encoder for conditional column `i`.
    pub fn encoder(&self, i: usize) -> &CategoricalEncoder {
        &self.encoders[i]
    }

    /// The offset of conditional column `i`'s block inside `C`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Index of the named conditional column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Builds `C` from a table row (all conditional columns set).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] on unseen categories.
    pub fn vector_from_row(&self, table: &Table, row: usize) -> Result<Vec<f32>, DataError> {
        let mut out = vec![0.0f32; self.width];
        for (i, name) in self.columns.iter().enumerate() {
            let col = table.cat_column(name)?;
            let code = self.encoders[i].encode(&col[row]).ok_or_else(|| {
                DataError::SchemaMismatch(format!("unseen category {:?} in {name:?}", col[row]))
            })?;
            out[self.offsets[i] + code] = 1.0;
        }
        Ok(out)
    }

    /// Builds `C` from explicit `(column, category)` picks; columns not in
    /// `picks` are left all-zero (the CTGAN single-column convention).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownColumn`] / [`DataError::SchemaMismatch`]
    /// for unknown columns or categories.
    pub fn vector_from_picks(
        &self,
        picks: &BTreeMap<String, String>,
    ) -> Result<Vec<f32>, DataError> {
        let mut out = vec![0.0f32; self.width];
        for (name, value) in picks {
            let i = self
                .column_index(name)
                .ok_or_else(|| DataError::UnknownColumn(name.clone()))?;
            let code = self.encoders[i].encode(value).ok_or_else(|| {
                DataError::SchemaMismatch(format!("unseen category {value:?} in {name:?}"))
            })?;
            out[self.offsets[i] + code] = 1.0;
        }
        Ok(out)
    }

    /// Decodes `C` back into per-column picks (argmax per block; blocks
    /// that are all zero are omitted).
    pub fn decode(&self, c: &[f32]) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for (i, name) in self.columns.iter().enumerate() {
            let off = self.offsets[i];
            let w = self.encoders[i].n_categories();
            let block = &c[off..off + w];
            let max = block.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if max <= 0.0 {
                continue;
            }
            let code = block.iter().position(|&v| v == max).unwrap_or(0);
            if let Some(cat) = self.encoders[i].decode(code) {
                out.insert(name.clone(), cat.to_string());
            }
        }
        out
    }

    /// `true` when table row `row` matches every set block of `c`.
    ///
    /// # Errors
    ///
    /// Propagates column-access errors.
    pub fn row_matches(&self, table: &Table, row: usize, c: &[f32]) -> Result<bool, DataError> {
        for (i, name) in self.columns.iter().enumerate() {
            let off = self.offsets[i];
            let w = self.encoders[i].n_categories();
            let block = &c[off..off + w];
            if block.iter().all(|&v| v == 0.0) {
                continue;
            }
            let want = block.iter().position(|&v| v > 0.5);
            let col = table.cat_column(name)?;
            let got = self.encoders[i].encode(&col[row]);
            if want != got {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, Schema};
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("proto"),
            ColumnMeta::categorical("event"),
            ColumnMeta::continuous("port"),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::cat("udp"), Value::cat("dns"), Value::num(53.0)],
                vec![Value::cat("tcp"), Value::cat("web"), Value::num(443.0)],
                vec![Value::cat("udp"), Value::cat("ntp"), Value::num(123.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn fit_widths_and_offsets() {
        let t = table();
        let spec = ConditionVectorSpec::fit(&t, &["proto", "event"]).unwrap();
        assert_eq!(spec.width(), 2 + 3);
        assert_eq!(spec.offset(0), 0);
        assert_eq!(spec.offset(1), 2);
        assert_eq!(spec.n_columns(), 2);
        assert!(ConditionVectorSpec::fit(&t, &["port"]).is_err());
        assert!(ConditionVectorSpec::fit(&t, &["ghost"]).is_err());
    }

    #[test]
    fn row_vector_one_hot_per_block() {
        let t = table();
        let spec = ConditionVectorSpec::fit(&t, &["proto", "event"]).unwrap();
        let c = spec.vector_from_row(&t, 2).unwrap();
        // proto block: {tcp, udp} -> udp = [0, 1]; event block {dns, ntp, web} -> ntp = [0,1,0]
        assert_eq!(c, vec![0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn picks_partial_vector() {
        let t = table();
        let spec = ConditionVectorSpec::fit(&t, &["proto", "event"]).unwrap();
        let mut picks = BTreeMap::new();
        picks.insert("event".to_string(), "web".to_string());
        let c = spec.vector_from_picks(&picks).unwrap();
        assert_eq!(c, vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        let decoded = spec.decode(&c);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded["event"], "web");
    }

    #[test]
    fn decode_inverts_full_vector() {
        let t = table();
        let spec = ConditionVectorSpec::fit(&t, &["proto", "event"]).unwrap();
        let c = spec.vector_from_row(&t, 0).unwrap();
        let decoded = spec.decode(&c);
        assert_eq!(decoded["proto"], "udp");
        assert_eq!(decoded["event"], "dns");
    }

    #[test]
    fn row_matching_respects_set_blocks() {
        let t = table();
        let spec = ConditionVectorSpec::fit(&t, &["proto", "event"]).unwrap();
        let mut picks = BTreeMap::new();
        picks.insert("proto".to_string(), "udp".to_string());
        let c = spec.vector_from_picks(&picks).unwrap();
        assert!(spec.row_matches(&t, 0, &c).unwrap());
        assert!(!spec.row_matches(&t, 1, &c).unwrap());
        assert!(spec.row_matches(&t, 2, &c).unwrap());
    }

    #[test]
    fn unseen_category_rejected() {
        let t = table();
        let spec = ConditionVectorSpec::fit(&t, &["proto"]).unwrap();
        let mut picks = BTreeMap::new();
        picks.insert("proto".to_string(), "icmp".to_string());
        assert!(spec.vector_from_picks(&picks).is_err());
    }
}
