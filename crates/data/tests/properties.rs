//! Property-based tests for the data pipeline: encoding invariants that
//! must hold for arbitrary well-formed tables.

use kinet_data::condition::ConditionVectorSpec;
use kinet_data::gmm::GaussianMixture1d;
use kinet_data::sampler::{BalanceMode, TrainingSampler};
use kinet_data::transform::DataTransformer;
use kinet_data::{ColumnMeta, Schema, Table, Value};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn arb_table() -> impl Strategy<Value = Table> {
    let cat_values = prop::sample::select(vec!["a", "b", "c", "d"]);
    let rows = prop::collection::vec((cat_values, -1000.0f64..1000.0), 5..60);
    rows.prop_map(|rows| {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("label"),
            ColumnMeta::continuous("x"),
        ]);
        Table::from_rows(
            schema,
            rows.into_iter()
                .map(|(c, x)| vec![Value::cat(c), Value::num(x)])
                .collect(),
        )
        .expect("well-formed rows")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gmm_responsibilities_always_sum_to_one(
        data in prop::collection::vec(-1e4f64..1e4, 2..200),
        k in 1usize..6,
        probe in -1e6f64..1e6,
    ) {
        let gmm = GaussianMixture1d::fit(&data, k, 30, 9);
        let r = gmm.responsibilities(probe);
        let total: f64 = r.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        let w: f64 = gmm.weights().iter().sum();
        prop_assert!((w - 1.0).abs() < 1e-6);
        prop_assert!(gmm.stds().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn transform_is_invertible_on_categoricals(table in arb_table()) {
        let tx = DataTransformer::fit(&table, 4, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let encoded = tx.transform(&table, &mut rng);
        prop_assert_eq!(encoded.cols(), tx.width());
        let back = tx.inverse_transform(&encoded).unwrap();
        prop_assert_eq!(
            back.cat_column("label").unwrap(),
            table.cat_column("label").unwrap()
        );
    }

    #[test]
    fn encoded_one_hot_blocks_are_simplex(table in arb_table()) {
        let tx = DataTransformer::fit(&table, 4, 0).unwrap();
        let encoded = tx.transform_deterministic(&table);
        for (span, col) in tx.spans().iter().zip(table.schema().iter()) {
            if col.kind() == kinet_data::ColumnKind::Categorical {
                for r in 0..encoded.rows() {
                    let s: f32 =
                        (0..span.width).map(|j| encoded[(r, span.start + j)]).sum();
                    prop_assert!((s - 1.0).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn condition_vector_roundtrips(table in arb_table(), row_sel in any::<prop::sample::Index>()) {
        let spec = ConditionVectorSpec::fit(&table, &["label"]).unwrap();
        let row = row_sel.index(table.n_rows());
        let c = spec.vector_from_row(&table, row).unwrap();
        // exactly one bit per conditional column
        let ones = c.iter().filter(|&&v| v == 1.0).count();
        prop_assert_eq!(ones, 1);
        let decoded = spec.decode(&c);
        prop_assert_eq!(
            decoded.get("label").map(String::as_str),
            table.cat_column("label").unwrap().get(row).map(String::as_str)
        );
        prop_assert!(spec.row_matches(&table, row, &c).unwrap());
    }

    #[test]
    fn split_partitions_all_rows(table in arb_table(), frac in 0.1f64..0.9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = table.train_test_split(frac, &mut rng);
        prop_assert_eq!(train.n_rows() + test.n_rows(), table.n_rows());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
    }

    #[test]
    fn log_freq_weights_match_ln_one_plus_count(table in arb_table()) {
        let spec = ConditionVectorSpec::fit(&table, &["label"]).unwrap();
        let sampler = TrainingSampler::fit(&table, &spec).unwrap();
        let weights = sampler.log_freq_weights(0);
        let enc = spec.encoder(0);
        prop_assert_eq!(weights.len(), enc.n_categories());
        // Reference masses straight from the definition: ln(1 + count).
        let labels = table.cat_column("label").unwrap();
        let masses: Vec<f64> = enc
            .categories()
            .iter()
            .map(|cat| {
                let count = labels.iter().filter(|v| *v == cat).count();
                (1.0 + count as f64).ln()
            })
            .collect();
        let total: f64 = masses.iter().sum();
        for (i, (&w, &m)) in weights.iter().zip(&masses).enumerate() {
            prop_assert!(
                (w - m / total).abs() < 1e-9,
                "category {i}: weight {w} vs log-frequency {}", m / total
            );
        }
        prop_assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_freq_marginals_follow_weights(table in arb_table(), seed in any::<u64>()) {
        let spec = ConditionVectorSpec::fit(&table, &["label"]).unwrap();
        let sampler = TrainingSampler::fit(&table, &spec).unwrap();
        let weights = sampler.log_freq_weights(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 1200;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            let c = sampler
                .sample_condition(&table, &spec, BalanceMode::LogFreq, true, &mut rng)
                .unwrap();
            counts[c.boosted_category.unwrap()] += 1;
        }
        // Empirical marginals must track the analytic log-frequency
        // weights (5σ band of the binomial so the test is seed-robust).
        for (i, (&count, &w)) in counts.iter().zip(&weights).enumerate() {
            let expected = w * draws as f64;
            let sigma = (draws as f64 * w * (1.0 - w)).sqrt();
            prop_assert!(
                (count as f64 - expected).abs() <= 5.0 * sigma + 1.0,
                "category {i}: drew {count}, expected {expected:.1} ± {sigma:.1}"
            );
        }
    }

    #[test]
    fn sampled_conditions_are_one_hot_and_row_consistent(
        table in arb_table(),
        seed in any::<u64>(),
        mode_sel in 0usize..3,
    ) {
        let mode = [BalanceMode::LogFreq, BalanceMode::Uniform, BalanceMode::None][mode_sel];
        let spec = ConditionVectorSpec::fit(&table, &["label"]).unwrap();
        let sampler = TrainingSampler::fit(&table, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for c in sampler
            .sample_batch(&table, &spec, mode, true, 24, &mut rng)
            .unwrap()
        {
            // one-hot per conditional column block
            let ones = c.vector.iter().filter(|&&v| v == 1.0).count();
            let zeros = c.vector.iter().filter(|&&v| v == 0.0).count();
            prop_assert_eq!(ones, spec.n_columns());
            prop_assert_eq!(ones + zeros, spec.width());
            // the drawn real row carries exactly the conditioned values
            prop_assert!(spec.row_matches(&table, c.row, &c.vector).unwrap());
            if let (Some(col), Some(cat)) = (c.boosted_column, c.boosted_category) {
                prop_assert!((c.vector[spec.offset(col) + cat] - 1.0).abs() < 1e-6,
                    "boosted pick must be set in the vector");
            }
        }
    }

    #[test]
    fn csv_roundtrip_preserves_categoricals(table in arb_table()) {
        let mut buf = Vec::new();
        table.write_csv(&mut buf).unwrap();
        let back = Table::read_csv(table.schema().clone(), buf.as_slice()).unwrap();
        prop_assert_eq!(back.n_rows(), table.n_rows());
        prop_assert_eq!(
            back.cat_column("label").unwrap(),
            table.cat_column("label").unwrap()
        );
    }
}
