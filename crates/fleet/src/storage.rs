//! Durable snapshot storage for the resident fleet service.
//!
//! The service persists its state as **generation-stamped, checksummed
//! records** behind a [`Storage`] trait: a one-line header carrying the
//! generation, payload length, and FNV-1a-64 checksum, followed by the
//! payload bytes. Writes go through temp-file + atomic rename
//! ([`write_file_atomic`]), so a crash leaves either the old object or the
//! new one — never a half-written file at the final name.
//!
//! The interesting impl is [`FaultStorage`]: a deterministic saboteur that
//! tears, bit-flips, stales, or loses scripted writes
//! ([`crate::fault::StorageFaultSpec`]) while *reporting success* — the
//! damage is only discoverable at load time. [`SnapshotStore::load_latest`]
//! is the recovery path it exists to exercise: walk generations newest
//! first, reject anything whose header or checksum fails verification, and
//! return the newest intact generation (with per-object rejection
//! accounting) or nothing at all — never garbage.

use crate::error::FleetError;
use crate::fault::{StorageFaultKind, StorageFaultSpec};
use kinet_obs::metrics::{SNAPSHOT_BYTES_WRITTEN, SNAPSHOT_RECORDS_REJECTED};
use kinet_obs::{event, kv};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Leading magic of every snapshot record header.
pub const RECORD_MAGIC: &str = "KSNAP1";

/// Object-name prefix of snapshot records inside a store.
pub const SNAPSHOT_PREFIX: &str = "snap-";

/// FNV-1a 64-bit hash — the record checksum. Hand-rolled because the
/// container bakes in no hashing crate; collision resistance is not the
/// goal, torn-write and bit-flip detection is.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames `payload` as a checksummed record:
/// `KSNAP1 gen=<g> len=<n> fnv=<16 hex>\n<payload>`.
pub fn encode_record(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "{RECORD_MAGIC} gen={generation} len={} fnv={:016x}\n",
        payload.len(),
        fnv1a64(payload)
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Parses and verifies a record, returning `(generation, payload)`.
///
/// # Errors
///
/// Returns a one-line reason when the header is missing or malformed, the
/// payload length disagrees with the header, or the checksum fails —
/// i.e. for every way [`FaultStorage`] can damage a record.
pub fn decode_record(bytes: &[u8]) -> Result<(u64, &[u8]), String> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("record header missing terminator")?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| "record header is not UTF-8".to_string())?;
    let payload = &bytes[newline + 1..];
    let mut fields = header.split_whitespace();
    if fields.next() != Some(RECORD_MAGIC) {
        return Err(format!("bad magic in header {header:?}"));
    }
    let mut generation = None;
    let mut len = None;
    let mut fnv = None;
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed header field {field:?}"))?;
        match key {
            "gen" => generation = value.parse::<u64>().ok(),
            "len" => len = value.parse::<usize>().ok(),
            "fnv" => fnv = u64::from_str_radix(value, 16).ok(),
            _ => return Err(format!("unknown header field {key:?}")),
        }
    }
    let generation = generation.ok_or("header missing generation")?;
    let len = len.ok_or("header missing length")?;
    let fnv = fnv.ok_or("header missing checksum")?;
    if payload.len() != len {
        return Err(format!(
            "payload is {} byte(s), header says {len} (torn write?)",
            payload.len()
        ));
    }
    let actual = fnv1a64(payload);
    if actual != fnv {
        return Err(format!(
            "checksum mismatch: header {fnv:016x}, payload {actual:016x}"
        ));
    }
    Ok((generation, payload))
}

/// Writes `bytes` to `path` via a sibling temp file and an atomic rename,
/// so `path` never holds a half-written file.
///
/// # Errors
///
/// Returns a one-line reason when the temp write or the rename fails.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

/// A flat object store the snapshot layer persists through. Object names
/// are plain file names (no separators); `write_atomic` must leave either
/// the old object or the complete new one.
pub trait Storage: fmt::Debug {
    /// Reads an object; `Ok(None)` when it does not exist (distinct from
    /// an I/O failure, which the checkpoint layer must not swallow).
    ///
    /// # Errors
    ///
    /// Returns a one-line reason on I/O failure.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, String>;

    /// Replaces an object atomically.
    ///
    /// # Errors
    ///
    /// Returns a one-line reason on I/O failure.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), String>;

    /// All object names, sorted ascending.
    ///
    /// # Errors
    ///
    /// Returns a one-line reason on I/O failure.
    fn list(&self) -> Result<Vec<String>, String>;

    /// Removes an object; removing a missing object is not an error.
    ///
    /// # Errors
    ///
    /// Returns a one-line reason on I/O failure.
    fn remove(&mut self, name: &str) -> Result<(), String>;

    /// Storage-fault accounting (non-empty only for fault-injecting
    /// impls); surfaces in the service report.
    fn injected_faults(&self) -> &[String] {
        &[]
    }
}

/// In-memory storage: deterministic, fast, and trivially inspectable —
/// what the corruption proptests and the service gate run against.
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    objects: BTreeMap<String, Vec<u8>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, String> {
        Ok(self.objects.get(name).cloned())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), String> {
        self.objects.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, String> {
        Ok(self.objects.keys().cloned().collect())
    }

    fn remove(&mut self, name: &str) -> Result<(), String> {
        self.objects.remove(name);
        Ok(())
    }
}

/// Directory-backed storage: one file per object, written through
/// [`write_file_atomic`]. In-flight `.tmp` files are invisible to
/// [`Storage::list`], so a crashed write can never be mistaken for an
/// object.
#[derive(Clone, Debug)]
pub struct DirStorage {
    dir: std::path::PathBuf,
}

impl DirStorage {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns a one-line reason when the directory cannot be created.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Storage for DirStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, String> {
        let path = self.dir.join(name);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), String> {
        write_file_atomic(&self.dir.join(name), bytes)
    }

    fn list(&self) -> Result<Vec<String>, String> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("list {}: {e}", self.dir.display()))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("list {}: {e}", self.dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".tmp") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&mut self, name: &str) -> Result<(), String> {
        let path = self.dir.join(name);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(format!("remove {}: {e}", path.display())),
        }
    }
}

/// Deterministic write saboteur wrapping any inner [`Storage`]. Scripted
/// [`StorageFaultSpec`]s fire on the matching 0-based `write_atomic` call;
/// every sabotaged write **reports success** — torn writes, bit flips,
/// stale generations, and lost renames are all silent at commit time and
/// must be caught by [`SnapshotStore::load_latest`]'s verification.
#[derive(Debug)]
pub struct FaultStorage<S: Storage> {
    inner: S,
    specs: Vec<StorageFaultSpec>,
    writes: usize,
    injected: Vec<String>,
}

impl<S: Storage> FaultStorage<S> {
    /// Wraps `inner` with a fault script.
    pub fn new(inner: S, specs: Vec<StorageFaultSpec>) -> Self {
        Self {
            inner,
            specs,
            writes: 0,
            injected: Vec::new(),
        }
    }

    /// The inner storage (tests peek at the damage).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Storage> Storage for FaultStorage<S> {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, String> {
        self.inner.read(name)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), String> {
        let index = self.writes;
        self.writes += 1;
        let Some(spec) = self.specs.iter().find(|s| s.write_index == index).copied() else {
            return self.inner.write_atomic(name, bytes);
        };
        match spec.kind {
            StorageFaultKind::TornWrite => {
                let keep = (bytes.len() * (spec.magnitude.min(99) as usize) / 100).min(bytes.len());
                self.injected.push(format!(
                    "write {index} ({name}): torn-write kept {keep}/{} byte(s)",
                    bytes.len()
                ));
                self.inner.write_atomic(name, &bytes[..keep])
            }
            StorageFaultKind::BitFlip => {
                let mut damaged = bytes.to_vec();
                if !damaged.is_empty() {
                    let offset = (spec.magnitude as usize) % damaged.len();
                    damaged[offset] ^= 1 << (spec.magnitude % 8);
                    self.injected
                        .push(format!("write {index} ({name}): bit-flip at byte {offset}"));
                }
                self.inner.write_atomic(name, &damaged)
            }
            StorageFaultKind::StaleWrite => {
                self.injected.push(format!(
                    "write {index} ({name}): stale-write, previous object retained"
                ));
                Ok(())
            }
            StorageFaultKind::LostWrite => {
                self.injected.push(format!(
                    "write {index} ({name}): lost-write, object vanished"
                ));
                self.inner.remove(name)
            }
        }
    }

    fn list(&self) -> Result<Vec<String>, String> {
        self.inner.list()
    }

    fn remove(&mut self, name: &str) -> Result<(), String> {
        self.inner.remove(name)
    }

    fn injected_faults(&self) -> &[String] {
        &self.injected
    }
}

/// A verified snapshot returned by [`SnapshotStore::load_latest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The record's generation stamp.
    pub generation: u64,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// Generation-stamped, checksummed snapshot storage over a [`Storage`]
/// backend — the durable layer the resident fleet service commits through.
#[derive(Debug)]
pub struct SnapshotStore {
    storage: Box<dyn Storage>,
    rejected: Vec<(String, String)>,
}

impl SnapshotStore {
    /// Wraps a backend.
    pub fn new(storage: Box<dyn Storage>) -> Self {
        Self {
            storage,
            rejected: Vec::new(),
        }
    }

    /// Canonical object name of a generation (zero-padded so the
    /// lexicographic order of [`Storage::list`] is generation order).
    pub fn object_name(generation: u64) -> String {
        format!("{SNAPSHOT_PREFIX}{generation:010}.snap")
    }

    /// Commits `payload` as `generation`, framed and checksummed.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] when the backend write fails.
    /// Note that an *injected* storage fault is not a failure here — by
    /// design it surfaces only at [`SnapshotStore::load_latest`].
    pub fn commit(&mut self, generation: u64, payload: &[u8]) -> Result<(), FleetError> {
        let record = encode_record(generation, payload);
        SNAPSHOT_BYTES_WRITTEN.incr(record.len() as u64);
        event(
            "storage.commit",
            0,
            &[
                kv("generation", generation),
                kv("bytes", record.len() as u64),
            ],
        );
        self.storage
            .write_atomic(&Self::object_name(generation), &record)
            .map_err(|e| FleetError::Checkpoint(format!("commit generation {generation}: {e}")))
    }

    /// Loads the newest intact generation, rejecting every record whose
    /// header, length, checksum, or generation-vs-name stamp fails
    /// verification. Rejections are recorded (see
    /// [`SnapshotStore::rejected`]) — recovery is loud, never silent.
    ///
    /// Hot path (`hotlist.toml`): the scan itself allocates nothing; all
    /// I/O and buffer work lives in the helpers it delegates to.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] when the backend cannot even be
    /// listed. Corrupt records are *not* errors: the store falls back to
    /// the previous generation, and `Ok(None)` means nothing intact
    /// survives.
    pub fn load_latest(&mut self) -> Result<Option<Snapshot>, FleetError> {
        let names = self.snapshot_names()?;
        self.rejected.clear();
        for name in names.iter().rev() {
            match self.load_object(name) {
                Ok(snapshot) => return Ok(Some(snapshot)),
                Err(why) => self.note_rejected(name, &why),
            }
        }
        Ok(None)
    }

    /// `(object name, reason)` for every record the last
    /// [`SnapshotStore::load_latest`] rejected, newest first.
    pub fn rejected(&self) -> &[(String, String)] {
        &self.rejected
    }

    /// Storage-fault accounting from the backend (empty unless the backend
    /// is a [`FaultStorage`]).
    pub fn injected_faults(&self) -> &[String] {
        self.storage.injected_faults()
    }

    /// Snapshot object names, sorted ascending by generation.
    fn snapshot_names(&self) -> Result<Vec<String>, FleetError> {
        let mut names = self
            .storage
            .list()
            .map_err(|e| FleetError::Checkpoint(format!("list snapshots: {e}")))?;
        names.retain(|n| n.starts_with(SNAPSHOT_PREFIX));
        Ok(names)
    }

    /// Reads and fully verifies one record.
    fn load_object(&self, name: &str) -> Result<Snapshot, String> {
        let bytes = self
            .storage
            .read(name)?
            .ok_or_else(|| "object vanished between list and read".to_string())?;
        let (generation, payload) = decode_record(&bytes)?;
        if Self::object_name(generation) != name {
            return Err(format!(
                "generation stamp {generation} does not match object name {name:?}"
            ));
        }
        Ok(Snapshot {
            generation,
            payload: payload.to_vec(),
        })
    }

    /// Records one rejected object.
    fn note_rejected(&mut self, name: &str, why: &str) {
        SNAPSHOT_RECORDS_REJECTED.incr(1);
        event(
            "storage.reject",
            0,
            &[kv("rejected", self.rejected.len() as u64 + 1)],
        );
        self.rejected.push((name.to_string(), why.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_and_checksum() {
        let record = encode_record(7, b"hello fleet");
        let (generation, payload) = decode_record(&record).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(payload, b"hello fleet");
        // Any single-bit damage is caught.
        for i in 0..record.len() {
            let mut bad = record.clone();
            bad[i] ^= 0x10;
            if bad == record {
                continue;
            }
            assert!(decode_record(&bad).is_err(), "flip at byte {i} undetected");
        }
        // Truncations are caught.
        for cut in 0..record.len() {
            assert!(decode_record(&record[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn mem_storage_contract() {
        let mut s = MemStorage::new();
        assert_eq!(s.read("a").unwrap(), None);
        s.write_atomic("b", b"2").unwrap();
        s.write_atomic("a", b"1").unwrap();
        assert_eq!(s.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.read("a").unwrap().as_deref(), Some(&b"1"[..]));
        s.remove("a").unwrap();
        s.remove("a").unwrap();
        assert_eq!(s.read("a").unwrap(), None);
    }

    #[test]
    fn dir_storage_is_atomic_and_hides_tmp_files() {
        let dir = std::env::temp_dir().join("kinet_fleet_dirstore_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = DirStorage::open(&dir).unwrap();
        s.write_atomic("snap-0000000001.snap", b"one").unwrap();
        // A stray in-flight temp file must not surface as an object.
        std::fs::write(dir.join("snap-0000000002.snap.tmp"), b"half").unwrap();
        assert_eq!(s.list().unwrap(), vec!["snap-0000000001.snap".to_string()]);
        assert_eq!(
            s.read("snap-0000000001.snap").unwrap().as_deref(),
            Some(&b"one"[..])
        );
        assert_eq!(s.read("missing").unwrap(), None);
        s.remove("snap-0000000001.snap").unwrap();
        assert_eq!(s.list().unwrap(), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn store_with_faults(specs: Vec<StorageFaultSpec>) -> SnapshotStore {
        SnapshotStore::new(Box::new(FaultStorage::new(MemStorage::new(), specs)))
    }

    #[test]
    fn load_latest_returns_newest_intact_generation() {
        let mut store = store_with_faults(Vec::new());
        for generation in 1..=3u64 {
            store
                .commit(generation, format!("payload {generation}").as_bytes())
                .unwrap();
        }
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.payload, b"payload 3");
        assert!(store.rejected().is_empty());
    }

    #[test]
    fn torn_final_write_rolls_back_one_generation() {
        let mut store =
            store_with_faults(vec![StorageFaultSpec::new(2, StorageFaultKind::TornWrite)]);
        for generation in 1..=3u64 {
            store
                .commit(generation, format!("payload {generation}").as_bytes())
                .unwrap();
        }
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 2, "torn gen 3 is rejected");
        assert_eq!(snap.payload, b"payload 2");
        assert_eq!(store.rejected().len(), 1);
        assert!(store.rejected()[0].0.contains("0000000003"));
        assert_eq!(store.injected_faults().len(), 1);
    }

    #[test]
    fn every_fault_kind_is_silent_at_commit_and_caught_at_load() {
        for kind in StorageFaultKind::all() {
            let mut store = store_with_faults(vec![StorageFaultSpec::new(1, kind)]);
            store.commit(1, b"good").unwrap();
            store.commit(2, b"doomed").unwrap();
            let snap = store.load_latest().unwrap().unwrap();
            assert_eq!(snap.generation, 1, "{}: fell back to gen 1", kind.label());
            assert_eq!(snap.payload, b"good", "{}", kind.label());
            match kind {
                // Stale/lost writes leave no gen-2 object at all, so there
                // is nothing to reject — the store just serves gen 1.
                StorageFaultKind::StaleWrite | StorageFaultKind::LostWrite => {
                    assert!(store.rejected().is_empty(), "{}", kind.label());
                }
                StorageFaultKind::TornWrite | StorageFaultKind::BitFlip => {
                    assert_eq!(store.rejected().len(), 1, "{}", kind.label());
                }
            }
        }
    }

    #[test]
    fn empty_store_loads_nothing() {
        let mut store = SnapshotStore::new(Box::new(MemStorage::new()));
        assert_eq!(store.load_latest().unwrap(), None);
    }

    #[test]
    fn foreign_generation_stamp_is_rejected() {
        // A record whose header generation disagrees with its object name
        // (e.g. a bit flip inside the gen digits that still parses) must
        // not be served as that name's generation.
        let mut inner = MemStorage::new();
        inner
            .write_atomic(&SnapshotStore::object_name(5), &encode_record(4, b"old"))
            .unwrap();
        let mut store = SnapshotStore::new(Box::new(inner));
        assert_eq!(store.load_latest().unwrap(), None);
        assert_eq!(store.rejected().len(), 1);
        assert!(store.rejected()[0].1.contains("does not match"));
    }
}
