//! The resident fleet service: a multi-round orchestrator that survives
//! process restarts, membership churn, hung rounds, and torn snapshot
//! writes — and keeps answering flow-scoring queries the whole time.
//!
//! One [`FleetService::run`] executes `rounds` scheduled fleet rounds on
//! top of [`crate::sim::FleetSim`]:
//!
//! * **Durable snapshots** — after every round the service state
//!   (generation counter, partial [`ServiceReport`], last committed
//!   serving model) is committed to a [`SnapshotStore`] as a
//!   generation-stamped, checksummed record. On startup the service scans
//!   the store newest-first, rejects torn/flipped/mis-stamped records
//!   loudly (they land in [`StorageFaultReport::rejected_snapshots`]),
//!   resumes from the newest intact generation, and re-runs whatever the
//!   lost suffix contained.
//! * **Membership churn** — a seeded [`ChurnPlan`] adds and removes
//!   members between rounds. Each round's [`FleetConfig`] pins
//!   `member_ids` to the surviving membership, so a member keeps its
//!   shard stream no matter which slot churn leaves it in, quorum is
//!   re-derived from the live member count, and (when the union protocol
//!   is on) joiners fold into the class-vocabulary union the round they
//!   appear. Scripted leaves may shrink the fleet below
//!   `ChurnConfig::min_members`, which fails the whole service with the
//!   loud, distinctly-exit-coded [`FleetError::MembershipCollapse`].
//! * **Watchdog deadlines** — rounds run with the per-phase virtual-tick
//!   watchdog from [`crate::config::WatchdogConfig`]; a hung phase yields
//!   [`RoundVerdict::Aborted`] and the service proceeds to the next round
//!   instead of wedging forever.
//! * **Degraded-mode serving** — a [`ServingHandle`] keeps the last
//!   *committed* generation's pooled models (a multinomial-logistic flow
//!   classifier plus a real-vs-pool discriminator) and scores incoming
//!   flow batches during every round, including aborted and failed ones.
//!   Every answer carries the answering generation and a staleness
//!   counter (rounds since that generation committed), so a consumer can
//!   tell fresh verdicts from degraded ones.
//!
//! Everything the service does is deterministic: churn, round seeds, and
//! serving flows derive from the config seed; all waiting is virtual
//! ticks. The final [`ServiceReport::deterministic_fingerprint`] is
//! bit-identical for every `KINET_THREADS` value, and a resumed run
//! converges to the same ledger as an uninterrupted one.

use crate::config::FleetConfig;
use crate::error::FleetError;
use crate::fault::FaultConfig;
use crate::report::{RoundRecord, RoundServingStats, RoundVerdict, ServiceReport};
use crate::sim::FleetSim;
use crate::storage::SnapshotStore;
use kinet_data::{ColumnKind, Table};
use kinet_datasets::lab::{LabSimConfig, LabSimulator};
use kinet_obs::metrics::{
    SERVICE_ROUNDS_ABORTED, SERVICE_ROUNDS_COMMITTED, SERVICE_ROUNDS_FAILED, SERVING_BATCHES,
    SERVING_BATCH_TICKS, SERVING_ROWS_SCORED,
};
use kinet_obs::{event, kv, serving_cost_ticks, with_scope, Scope};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Domain-separation salt for per-round churn draws.
const CHURN_SALT: u64 = 0x43_48_55_52_4e; // "CHURN"
/// Domain-separation salt for served flow batches.
const SERVE_SALT: u64 = 0x53_45_52_56_45; // "SERVE"
/// Odd multiplier for per-round seed mixing (round 0 keeps the base seed,
/// so a 1-round service is bit-identical to a bare `FleetSim` run).
const ROUND_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Membership churn policy for a resident service.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Master switch. Off keeps the bootstrap membership for every round.
    pub enabled: bool,
    /// `(round, count)`: exactly `count` fresh members join before the
    /// named round (ids continue from the highest ever seen).
    pub scripted_joins: Vec<(usize, usize)>,
    /// `(round, member_id)`: the named member leaves before the named
    /// round. Scripted leaves ignore `min_members` — they exist to model
    /// real outages, including fatal ones.
    pub scripted_leaves: Vec<(usize, u64)>,
    /// Per-round probability that one fresh member joins.
    pub join_rate: f64,
    /// Per-member per-round probability of leaving. Random leaves never
    /// shrink the fleet below `min_members`.
    pub leave_rate: f64,
    /// Membership floor: a round scheduled with fewer members fails the
    /// service with [`FleetError::MembershipCollapse`].
    pub min_members: usize,
    /// Ceiling for random joins (scripted joins may exceed it).
    pub max_members: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            scripted_joins: Vec::new(),
            scripted_leaves: Vec::new(),
            join_rate: 0.0,
            leave_rate: 0.0,
            min_members: 1,
            max_members: 16,
        }
    }
}

/// One round's derived membership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundMembership {
    /// Member ids present (sorted).
    pub members: Vec<u64>,
    /// Ids that joined before this round (sorted).
    pub joined: Vec<u64>,
    /// Ids that left before this round (sorted).
    pub left: Vec<u64>,
}

/// The fully derived churn schedule: membership for every round, a pure
/// function of `(seed, rounds, initial membership, config)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Per-round memberships, `rounds` entries.
    pub rounds: Vec<RoundMembership>,
}

impl ChurnPlan {
    /// Derives the schedule. Round 0 always runs the bootstrap
    /// membership; churn (scripted, then random) applies before each
    /// later round, with its own domain-separated per-round RNG so one
    /// round's draws cannot reshuffle another's.
    pub fn derive(seed: u64, rounds: usize, initial: &[u64], cfg: &ChurnConfig) -> Self {
        let mut current: Vec<u64> = initial.to_vec();
        current.sort_unstable();
        let mut next_id = current.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut out = Vec::with_capacity(rounds);
        for r in 0..rounds {
            let mut joined = Vec::new();
            let mut left = Vec::new();
            if cfg.enabled && r > 0 {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ CHURN_SALT ^ (r as u64).wrapping_mul(0x9e37_79b9));
                for (round, id) in &cfg.scripted_leaves {
                    if *round == r {
                        if let Some(pos) = current.iter().position(|m| m == id) {
                            current.remove(pos);
                            left.push(*id);
                        }
                    }
                }
                for (round, count) in &cfg.scripted_joins {
                    if *round == r {
                        for _ in 0..*count {
                            current.push(next_id);
                            joined.push(next_id);
                            next_id += 1;
                        }
                    }
                }
                for id in current.clone() {
                    if current.len() > cfg.min_members && rng.random_bool(cfg.leave_rate) {
                        if let Some(pos) = current.iter().position(|m| *m == id) {
                            current.remove(pos);
                            left.push(id);
                        }
                    }
                }
                if current.len() < cfg.max_members && rng.random_bool(cfg.join_rate) {
                    current.push(next_id);
                    joined.push(next_id);
                    next_id += 1;
                }
                current.sort_unstable();
                joined.sort_unstable();
                left.sort_unstable();
            }
            out.push(RoundMembership {
                members: current.clone(),
                joined,
                left,
            });
        }
        Self { rounds: out }
    }
}

/// Degraded-mode serving knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServingConfig {
    /// Master switch.
    pub enabled: bool,
    /// Flow batches scored per scheduled round.
    pub batches_per_round: usize,
    /// Rows per flow batch.
    pub batch_rows: usize,
    /// Full-batch gradient-descent epochs for the pooled classifier and
    /// discriminator trained at each commit.
    pub train_epochs: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            batches_per_round: 4,
            batch_rows: 128,
            train_epochs: 40,
        }
    }
}

impl ServingConfig {
    /// Serving switched on with the given batch shape.
    pub fn enabled(batches_per_round: usize, batch_rows: usize) -> Self {
        Self {
            enabled: true,
            batches_per_round,
            batch_rows,
            ..Self::default()
        }
    }
}

/// Configuration of a resident fleet service.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Per-round template. `n_devices`/`member_ids` define the bootstrap
    /// membership; each round overrides them with the churned membership,
    /// and `device_attack_fraction` is rebuilt from
    /// [`ServiceConfig::member_attack_fraction`].
    pub fleet: FleetConfig,
    /// Rounds to schedule.
    pub rounds: usize,
    /// Membership churn policy.
    pub churn: ChurnConfig,
    /// `(round, plan)` fault-injection overrides for specific rounds;
    /// other rounds use the template's plan.
    pub round_faults: Vec<(usize, FaultConfig)>,
    /// `(member_id, fraction)` attack-mix overrides that follow members
    /// across slots as churn reshuffles them.
    pub member_attack_fraction: Vec<(u64, f64)>,
    /// Degraded-mode serving knobs.
    pub serving: ServingConfig,
    /// Fail the whole service on the first [`RoundVerdict::Failed`]
    /// round instead of proceeding degraded.
    pub halt_on_round_failure: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            rounds: 1,
            churn: ChurnConfig::default(),
            round_faults: Vec::new(),
            member_attack_fraction: Vec::new(),
            serving: ServingConfig::default(),
            halt_on_round_failure: false,
        }
    }
}

impl ServiceConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bad = |m: &str| Err(FleetError::Config(m.to_string()));
        self.fleet.validate()?;
        if self.rounds == 0 {
            return bad("service rounds must be positive");
        }
        if self.churn.min_members == 0 {
            return bad("churn.min_members must be positive");
        }
        if self.churn.max_members < self.churn.min_members {
            return bad("churn.max_members must be >= churn.min_members");
        }
        if !(0.0..=1.0).contains(&self.churn.join_rate)
            || !(0.0..=1.0).contains(&self.churn.leave_rate)
        {
            return bad("churn rates must be in [0, 1]");
        }
        let scripted_rounds = self
            .churn
            .scripted_joins
            .iter()
            .map(|(r, _)| *r)
            .chain(self.churn.scripted_leaves.iter().map(|(r, _)| *r));
        for round in scripted_rounds {
            if round == 0 || round >= self.rounds {
                return Err(FleetError::Config(format!(
                    "scripted churn at round {round} outside 1..{}",
                    self.rounds
                )));
            }
        }
        for (round, fault) in &self.round_faults {
            if *round >= self.rounds {
                return Err(FleetError::Config(format!(
                    "fault override for unscheduled round {round}"
                )));
            }
            fault.validate(self.fleet.n_devices)?;
        }
        for (_, f) in &self.member_attack_fraction {
            if !(0.0..=1.0).contains(f) {
                return bad("member attack fractions must be in [0, 1]");
            }
        }
        if self.serving.enabled
            && (self.serving.batches_per_round == 0
                || self.serving.batch_rows == 0
                || self.serving.train_epochs == 0)
        {
            return bad("serving knobs must be positive when serving is enabled");
        }
        Ok(())
    }
}

/// Per-feature encoding recipe for the pooled serving models. Unlike the
/// evaluation-side encoder this one is serializable, so a committed
/// generation can be reloaded and keep scoring after a restart: numeric
/// columns carry `(mean, sd)` for z-scoring, categorical columns carry
/// their sorted vocabulary for one-hot encoding (unseen categories encode
/// as all-zeros), and the label column carries the class list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServingEncoder {
    /// `(column, mean, sd)` per continuous feature.
    numeric: Vec<(String, f64, f64)>,
    /// `(column, sorted vocabulary)` per categorical feature.
    categorical: Vec<(String, Vec<String>)>,
    /// Sorted label classes.
    labels: Vec<String>,
    /// The label column name (excluded from features).
    label_column: String,
}

impl ServingEncoder {
    /// Fits the recipe on a pooled training table.
    pub fn fit(pool: &Table, label_column: &str) -> Result<Self, FleetError> {
        let mut numeric = Vec::new();
        let mut categorical = Vec::new();
        for col in pool.schema().iter() {
            if col.name() == label_column {
                continue;
            }
            match col.kind() {
                ColumnKind::Continuous => {
                    let values = pool.num_column(col.name())?;
                    let n = values.len().max(1) as f64;
                    let mean = values.iter().sum::<f64>() / n;
                    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                    let sd = var.sqrt();
                    let sd = if sd > 1e-9 { sd } else { 1.0 };
                    numeric.push((col.name().to_string(), mean, sd));
                }
                ColumnKind::Categorical => {
                    let mut vocab: Vec<String> =
                        pool.category_counts(col.name())?.into_keys().collect();
                    vocab.sort_unstable();
                    categorical.push((col.name().to_string(), vocab));
                }
            }
        }
        let mut labels: Vec<String> = pool.category_counts(label_column)?.into_keys().collect();
        labels.sort_unstable();
        if labels.is_empty() {
            return Err(FleetError::Internal(
                "serving encoder fitted on a pool with no labels".into(),
            ));
        }
        Ok(Self {
            numeric,
            categorical,
            labels,
            label_column: label_column.to_string(),
        })
    }

    /// Encoded feature width.
    pub fn width(&self) -> usize {
        self.numeric.len() + self.categorical.iter().map(|(_, v)| v.len()).sum::<usize>()
    }

    /// The sorted label classes.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Encodes a whole table row-major into `width()`-wide feature rows.
    /// The label column (if present) is ignored.
    pub fn encode_table(&self, table: &Table) -> Result<Vec<f64>, FleetError> {
        let n = table.n_rows();
        let w = self.width();
        let mut out = vec![0.0; n * w];
        let mut offset = 0usize;
        for (name, mean, sd) in &self.numeric {
            let values = table.num_column(name)?;
            for (r, v) in values.iter().enumerate() {
                out[r * w + offset] = (v - mean) / sd;
            }
            offset += 1;
        }
        for (name, vocab) in &self.categorical {
            let values = table.cat_column(name)?;
            for (r, v) in values.iter().enumerate() {
                if let Ok(i) = vocab.binary_search(v) {
                    out[r * w + offset + i] = 1.0;
                }
            }
            offset += vocab.len();
        }
        Ok(out)
    }

    /// Label indices for a table's label column.
    fn label_indices(&self, table: &Table) -> Result<Vec<usize>, FleetError> {
        let values = table.cat_column(&self.label_column)?;
        values
            .iter()
            .map(|v| {
                self.labels.binary_search(v).map_err(|_| {
                    FleetError::Internal(format!("label {v:?} missing from serving vocab"))
                })
            })
            .collect()
    }
}

/// Sums the hot scorer accumulates per batch.
#[derive(Clone, Copy, Debug, Default)]
struct ScoreTotals {
    attack_flagged: usize,
    disc_sum: f64,
}

/// One answered flow batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchScore {
    /// Rows scored.
    pub rows: usize,
    /// Rows flagged as some attack class.
    pub attack_flagged: usize,
    /// Mean discriminator (real-vs-pool) score.
    pub mean_discriminator: f64,
    /// Generation that answered.
    pub generation: u64,
    /// Rounds since that generation committed (0 = fresh).
    pub staleness: u64,
}

/// The pooled models a committed generation serves with: a multinomial
/// logistic flow classifier over the [`ServingEncoder`] features and a
/// binary logistic discriminator trained real-pool-vs-column-shuffled
/// (a cheap density-ratio drift probe). Both are serializable so a
/// restarted service keeps serving generation `N` while round `N + 1`
/// trains.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServingModel {
    encoder: ServingEncoder,
    /// Row-major `labels × width` classifier weights.
    class_weights: Vec<f64>,
    class_bias: Vec<f64>,
    /// Which label indices count as attacks.
    is_attack: Vec<bool>,
    disc_weights: Vec<f64>,
    disc_bias: f64,
}

impl ServingModel {
    /// Trains both pooled models on a committed round's pool. Full-batch
    /// gradient descent, single-threaded, deterministic in `seed`.
    pub fn train(pool: &Table, epochs: usize, seed: u64) -> Result<Self, FleetError> {
        if pool.n_rows() == 0 {
            return Err(FleetError::Internal(
                "serving model trained on an empty pool".into(),
            ));
        }
        let label_column = LabSimulator::label_column();
        let encoder = ServingEncoder::fit(pool, label_column)?;
        let w = encoder.width();
        let k = encoder.labels.len();
        let n = pool.n_rows();
        let features = encoder.encode_table(pool)?;
        let targets = encoder.label_indices(pool)?;

        // Multinomial logistic classifier.
        let mut class_weights = vec![0.0; k * w];
        let mut class_bias = vec![0.0; k];
        let mut probs = vec![0.0; k];
        let lr = 0.5;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; k * w];
            let mut grad_b = vec![0.0; k];
            for r in 0..n {
                let x = &features[r * w..(r + 1) * w];
                softmax_into(&class_weights, &class_bias, x, w, &mut probs);
                probs[targets[r]] -= 1.0;
                for (c, p) in probs.iter().enumerate() {
                    grad_b[c] += p;
                    for (j, xv) in x.iter().enumerate() {
                        grad_w[c * w + j] += p * xv;
                    }
                }
            }
            let scale = lr / n as f64;
            for (wv, g) in class_weights.iter_mut().zip(&grad_w) {
                *wv -= scale * g;
            }
            for (bv, g) in class_bias.iter_mut().zip(&grad_b) {
                *bv -= scale * g;
            }
        }

        // Discriminator: real pool (1) vs column-shuffled pool (0).
        let shuffled = column_shuffle(pool, seed ^ 0x0d15_c0de)?;
        let fake = encoder.encode_table(&shuffled)?;
        let mut disc_weights = vec![0.0; w];
        let mut disc_bias = 0.0;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; w];
            let mut grad_b = 0.0;
            for (rows, target) in [(&features, 1.0), (&fake, 0.0)] {
                for r in 0..n {
                    let x = &rows[r * w..(r + 1) * w];
                    let p = sigmoid(dot(&disc_weights, x) + disc_bias);
                    let err = p - target;
                    grad_b += err;
                    for (j, xv) in x.iter().enumerate() {
                        grad_w[j] += err * xv;
                    }
                }
            }
            let scale = lr / (2.0 * n as f64);
            for (wv, g) in disc_weights.iter_mut().zip(&grad_w) {
                *wv -= scale * g;
            }
            disc_bias -= scale * grad_b;
        }

        let attacks = LabSimulator::attack_events();
        let is_attack = encoder
            .labels
            .iter()
            .map(|l| attacks.contains(&l.as_str()))
            .collect();
        Ok(Self {
            encoder,
            class_weights,
            class_bias,
            is_attack,
            disc_weights,
            disc_bias,
        })
    }

    /// Scores one flow batch: encodes (allocating) then runs the hot
    /// allocation-free row loop.
    pub fn score_batch(&self, flows: &Table) -> Result<(usize, usize, f64), FleetError> {
        let n = flows.n_rows();
        if n == 0 {
            return Ok((0, 0, 0.0));
        }
        let features = self.encoder.encode_table(flows)?;
        let mut logits = vec![0.0; self.encoder.labels.len()];
        let totals = self.score_rows(&features, n, self.encoder.width(), &mut logits)?;
        Ok((n, totals.attack_flagged, totals.disc_sum / n as f64))
    }

    /// Hot per-batch scorer: pure slice arithmetic over pre-encoded
    /// features — argmax class per row, attack flagging, discriminator
    /// accumulation. Allocation lives in [`ServingModel::score_batch`];
    /// this loop must stay allocation-free (enforced by `kinet_lint`'s
    /// hotlist) and panic-free (enforced by the panic-path audit): the
    /// shapes are checked once up front as a typed error, and the row
    /// loop itself walks exact-chunk iterators instead of indexing.
    fn score_rows(
        &self,
        features: &[f64],
        n_rows: usize,
        width: usize,
        logits: &mut [f64],
    ) -> Result<ScoreTotals, FleetError> {
        let n_classes = logits.len();
        if width == 0
            || features.len() < n_rows * width
            || self.class_weights.len() != n_classes * width
            || self.class_bias.len() != n_classes
            || self.is_attack.len() != n_classes
            || self.disc_weights.len() != width
        {
            return Err(FleetError::Config(
                "serving model shape mismatch: encoder width disagrees with the installed weights"
                    .into(),
            ));
        }
        let mut totals = ScoreTotals::default();
        for x in features.chunks_exact(width).take(n_rows) {
            for ((logit, bias), row) in logits
                .iter_mut()
                .zip(self.class_bias.iter())
                .zip(self.class_weights.chunks_exact(width))
            {
                let mut acc = *bias;
                for (wv, xv) in row.iter().zip(x) {
                    acc += wv * xv;
                }
                *logit = acc;
            }
            let mut best = 0usize;
            let mut best_logit = f64::NEG_INFINITY;
            for (c, logit) in logits.iter().enumerate() {
                if *logit > best_logit {
                    best_logit = *logit;
                    best = c;
                }
            }
            if self.is_attack.get(best) == Some(&true) {
                totals.attack_flagged += 1;
            }
            let mut d = self.disc_bias;
            for (wv, xv) in self.disc_weights.iter().zip(x) {
                d += wv * xv;
            }
            totals.disc_sum += sigmoid(d);
        }
        // Observability taps: relaxed atomics only, so the hot loop stays
        // allocation-free and the synthetic-tick histogram is identical
        // for every `KINET_THREADS` value.
        SERVING_ROWS_SCORED.incr(n_rows as u64);
        SERVING_BATCH_TICKS.observe_ticks(serving_cost_ticks(n_rows as u64, width as u64));
        Ok(totals)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn softmax_into(weights: &[f64], bias: &[f64], x: &[f64], width: usize, out: &mut [f64]) {
    if width == 0 {
        for (o, b) in out.iter_mut().zip(bias) {
            *o = *b;
        }
    } else {
        for ((o, b), row) in out.iter_mut().zip(bias).zip(weights.chunks_exact(width)) {
            *o = *b + dot(row, x);
        }
    }
    let max = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Independently permutes each column's rows — marginals survive, joint
/// structure dies; the discriminator learns to tell them apart.
fn column_shuffle(table: &Table, seed: u64) -> Result<Table, FleetError> {
    let n = table.n_rows();
    let mut rows: Vec<Vec<kinet_data::Value>> = (0..n).map(|r| table.row(r)).collect();
    // `c` indexes the *inner* (column) dimension of `rows`; clippy's
    // iterator suggestion would walk the outer (row) dimension instead.
    #[allow(clippy::needless_range_loop)]
    for c in 0..table.n_cols() {
        let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
        // Fisher-Yates over this column only.
        for i in (1..n).rev() {
            let j = rng.random_range(0..(i + 1));
            if i != j {
                let vi = rows[i][c].clone();
                let vj = rows[j][c].clone();
                rows[i][c] = vj;
                rows[j][c] = vi;
            }
        }
    }
    Table::from_rows(table.schema().clone(), rows).map_err(|e| FleetError::Data {
        context: "column shuffle for the serving discriminator".into(),
        source: e,
    })
}

/// The serving side of the resident service: holds the last *committed*
/// generation's models and answers flow batches with explicit staleness.
#[derive(Clone, Debug, Default)]
pub struct ServingHandle {
    installed: Option<(ServingModel, u64, usize)>,
}

impl ServingHandle {
    /// A handle with nothing installed (answers `None` until the first
    /// commit).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Installs a freshly committed generation's models.
    pub fn install(&mut self, model: ServingModel, generation: u64, committed_round: usize) {
        self.installed = Some((model, generation, committed_round));
    }

    /// The installed generation, if any.
    pub fn generation(&self) -> Option<u64> {
        self.installed.as_ref().map(|(_, g, _)| *g)
    }

    /// The installed model, if any.
    pub fn model(&self) -> Option<&ServingModel> {
        self.installed.as_ref().map(|(m, _, _)| m)
    }

    /// Scores a flow batch against the installed generation.
    /// `current_round` is the round in flight, used only to stamp
    /// staleness. Returns `Ok(None)` when no generation has committed
    /// yet — the caller counts an unanswered batch.
    pub fn answer(
        &self,
        flows: &Table,
        current_round: usize,
    ) -> Result<Option<BatchScore>, FleetError> {
        let Some((model, generation, committed_round)) = self.installed.as_ref() else {
            return Ok(None);
        };
        with_scope(Scope::Serve, || {
            let (rows, attack_flagged, mean_discriminator) = model.score_batch(flows)?;
            let staleness = current_round.saturating_sub(*committed_round) as u64;
            SERVING_BATCHES.incr(1);
            event(
                "serve.answer",
                serving_cost_ticks(rows as u64, model.encoder.width() as u64),
                &[
                    kv("rows", rows as u64),
                    kv("generation", *generation),
                    kv("staleness", staleness),
                ],
            );
            Ok(Some(BatchScore {
                rows,
                attack_flagged,
                mean_discriminator,
                generation: *generation,
                staleness,
            }))
        })
    }
}

/// What one durable snapshot record carries: enough to resume the service
/// (and its serving handle) exactly where the last committed round left
/// it.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ServiceSnapshot {
    /// Canonical `Debug` rendering of the [`ServiceConfig`]; a mismatch
    /// means the snapshot belongs to a different service and is ignored.
    config_key: String,
    /// First round the resumed service should run.
    next_round: usize,
    /// Last committed generation.
    generation: u64,
    /// Round the generation committed at (staleness anchor).
    committed_round: Option<usize>,
    /// Ledger so far — a resumed run's final report matches an
    /// uninterrupted one.
    partial: ServiceReport,
    /// The committed serving models.
    serving: Option<ServingModel>,
}

/// The resident multi-round fleet service.
#[derive(Clone, Debug)]
pub struct FleetService {
    cfg: ServiceConfig,
}

impl FleetService {
    /// Builds a service over the given configuration.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self { cfg }
    }

    /// The configuration identity snapshots are stamped with.
    pub fn config_key(&self) -> String {
        format!("{:?}", self.cfg)
    }

    /// Bootstrap membership: explicit `member_ids` or slot indices.
    fn initial_members(&self) -> Vec<u64> {
        if self.cfg.fleet.member_ids.is_empty() {
            (0..self.cfg.fleet.n_devices as u64).collect()
        } else {
            self.cfg.fleet.member_ids.clone()
        }
    }

    /// The per-round [`FleetConfig`]: churned membership, member-pinned
    /// attack mixes, per-round seed and fault plan.
    fn round_config(&self, round: usize, membership: &RoundMembership) -> FleetConfig {
        let mut cfg = self.cfg.fleet.clone();
        cfg.n_devices = membership.members.len();
        cfg.member_ids = membership.members.clone();
        cfg.seed = if round == 0 {
            self.cfg.fleet.seed
        } else {
            self.cfg.fleet.seed ^ (round as u64).wrapping_mul(ROUND_MIX)
        };
        cfg.device_attack_fraction = membership
            .members
            .iter()
            .enumerate()
            .filter_map(|(slot, member)| {
                self.cfg
                    .member_attack_fraction
                    .iter()
                    .find(|(m, _)| m == member)
                    .map(|(_, f)| (slot, *f))
            })
            .collect();
        if let Some((_, fault)) = self.cfg.round_faults.iter().find(|(r, _)| *r == round) {
            cfg.fault = fault.clone();
        }
        cfg
    }

    /// Runs (or resumes) the full service against a snapshot store.
    ///
    /// # Errors
    ///
    /// Fatal failures only: invalid config, membership collapse, a
    /// corrupt store backend, or (with `halt_on_round_failure`) the
    /// first failed round. Watchdog aborts and quorum-lost rounds are
    /// *recorded*, not fatal.
    pub fn run(&self, store: &mut SnapshotStore) -> Result<ServiceReport, FleetError> {
        // The resident service owns the orchestrator scope for its whole
        // lifetime; each round's `run_detailed` continues it, so sequence
        // numbers order rounds, phases, and verdict events globally.
        with_scope(Scope::Orch, || self.run_inner(store))
    }

    fn run_inner(&self, store: &mut SnapshotStore) -> Result<ServiceReport, FleetError> {
        self.cfg.validate()?;
        let key = self.config_key();
        let plan = ChurnPlan::derive(
            self.cfg.fleet.seed,
            self.cfg.rounds,
            &self.initial_members(),
            &self.cfg.churn,
        );

        let mut report = ServiceReport {
            rounds_planned: self.cfg.rounds,
            ..ServiceReport::default()
        };
        let mut generation: u64 = 0;
        let mut start_round = 0usize;
        let mut handle = ServingHandle::empty();

        if let Some(snapshot) = store.load_latest()? {
            let text = String::from_utf8(snapshot.payload)
                .map_err(|_| FleetError::Checkpoint("snapshot payload is not UTF-8".into()))?;
            let parsed: ServiceSnapshot = serde_json::from_str(&text)
                .map_err(|e| FleetError::Checkpoint(format!("snapshot parse: {e}")))?;
            if parsed.config_key == key {
                generation = parsed.generation;
                start_round = parsed.next_round;
                report = parsed.partial;
                report.rounds_planned = self.cfg.rounds;
                report.resumed_from_generation = Some(parsed.generation);
                event(
                    "service.resume",
                    0,
                    &[
                        kv("generation", parsed.generation),
                        kv("next_round", start_round as u64),
                    ],
                );
                if let (Some(model), Some(round)) = (parsed.serving, parsed.committed_round) {
                    handle.install(model, parsed.generation, round);
                }
            }
        }
        for (name, why) in store.rejected() {
            report
                .storage
                .rejected_snapshots
                .push((name.clone(), why.clone()));
        }

        for round in start_round..self.cfg.rounds {
            let Some(membership) = plan.rounds.get(round) else {
                return Err(FleetError::Config(format!(
                    "churn plan covers {} round(s) but round {round} was scheduled",
                    plan.rounds.len()
                )));
            };
            for id in &membership.joined {
                report.churn.push(format!("round {round}: +{id} joined"));
            }
            for id in &membership.left {
                report.churn.push(format!("round {round}: -{id} left"));
            }
            if !membership.joined.is_empty() || !membership.left.is_empty() {
                event(
                    "service.churn",
                    0,
                    &[
                        kv("round", round as u64),
                        kv("joined", membership.joined.len() as u64),
                        kv("left", membership.left.len() as u64),
                    ],
                );
            }
            if membership.members.len() < self.cfg.churn.min_members {
                return Err(FleetError::MembershipCollapse {
                    round,
                    members: membership.members.len(),
                    min_members: self.cfg.churn.min_members,
                });
            }

            let round_cfg = self.round_config(round, membership);
            let quorum_required = round_cfg
                .resilience
                .quorum_required(membership.members.len());
            let mut record = RoundRecord {
                round,
                members: membership.members.clone(),
                joined: membership.joined.clone(),
                left: membership.left.clone(),
                quorum_required,
                verdict: RoundVerdict::Failed {
                    error: "round never ran".into(),
                },
                fleet_fingerprint: None,
                attack_recall: None,
                global_accuracy: None,
                serving: RoundServingStats::default(),
            };

            let mut fatal = None;
            match FleetSim::new(round_cfg).run_detailed() {
                Ok((fleet_report, pool)) => {
                    generation += 1;
                    record.verdict = RoundVerdict::Committed { generation };
                    record.fleet_fingerprint = Some(fleet_report.deterministic_fingerprint());
                    record.attack_recall = Some(fleet_report.attack_recall);
                    record.global_accuracy = Some(fleet_report.global_accuracy);
                    report.committed_rounds += 1;
                    SERVICE_ROUNDS_COMMITTED.incr(1);
                    event(
                        "service.commit",
                        fleet_report.fault.virtual_ticks,
                        &[kv("round", round as u64), kv("generation", generation)],
                    );
                    if self.cfg.serving.enabled {
                        if let Some(pool) = pool.filter(|p| p.n_rows() > 0) {
                            let model = ServingModel::train(
                                &pool,
                                self.cfg.serving.train_epochs,
                                self.cfg.fleet.seed ^ SERVE_SALT ^ generation,
                            )?;
                            handle.install(model, generation, round);
                        }
                    }
                }
                Err(FleetError::Watchdog {
                    phase,
                    spent_ticks,
                    deadline_ticks,
                }) => {
                    SERVICE_ROUNDS_ABORTED.incr(1);
                    event(
                        "service.watchdog_abort",
                        spent_ticks,
                        &[
                            kv("round", round as u64),
                            kv("spent", spent_ticks),
                            kv("deadline", deadline_ticks),
                        ],
                    );
                    record.verdict = RoundVerdict::Aborted {
                        phase,
                        spent_ticks,
                        deadline_ticks,
                    };
                    report.aborted_rounds += 1;
                }
                Err(e @ FleetError::Config(_)) => return Err(e),
                Err(e) => {
                    SERVICE_ROUNDS_FAILED.incr(1);
                    event("service.round_failed", 0, &[kv("round", round as u64)]);
                    record.verdict = RoundVerdict::Failed {
                        error: e.to_string(),
                    };
                    report.failed_rounds += 1;
                    if self.cfg.halt_on_round_failure {
                        fatal = Some(e);
                    }
                }
            }

            if self.cfg.serving.enabled {
                record.serving = self.serve_round(round, &handle)?;
            }
            report.rounds.push(record);
            report.final_generation = (generation > 0).then_some(generation);
            if let Some(e) = fatal {
                return Err(e);
            }

            let snapshot = ServiceSnapshot {
                config_key: key.clone(),
                next_round: round + 1,
                generation,
                committed_round: handle.installed.as_ref().map(|(_, _, r)| *r),
                partial: report.clone(),
                serving: handle.model().cloned(),
            };
            let payload = serde_json::to_string(&snapshot)
                .map_err(|e| FleetError::Checkpoint(format!("snapshot encode: {e}")))?;
            store.commit(generation, payload.as_bytes())?;
        }

        report.storage.injected = store.injected_faults().to_vec();
        Ok(report)
    }

    /// Scores this round's flow batches against the last committed
    /// generation.
    fn serve_round(
        &self,
        round: usize,
        handle: &ServingHandle,
    ) -> Result<RoundServingStats, FleetError> {
        let mut stats = RoundServingStats::default();
        let mut disc_sum = 0.0;
        for batch in 0..self.cfg.serving.batches_per_round {
            let flows = LabSimulator::new(LabSimConfig {
                n_records: self.cfg.serving.batch_rows,
                seed: self.cfg.fleet.seed
                    ^ SERVE_SALT
                    ^ (round as u64).wrapping_mul(0x85eb_ca6b)
                    ^ (batch as u64).wrapping_mul(0xc2b2_ae35),
                attack_fraction: self.cfg.fleet.attack_fraction,
            })
            .generate()
            .map_err(|e| FleetError::Data {
                context: format!("serving flow batch {batch} of round {round}"),
                source: e,
            })?;
            match handle.answer(&flows, round)? {
                Some(score) => {
                    stats.batches += 1;
                    stats.rows += score.rows;
                    stats.attack_flagged += score.attack_flagged;
                    disc_sum += score.mean_discriminator * score.rows as f64;
                    stats.answered_generation = Some(score.generation);
                    stats.staleness = Some(score.staleness);
                }
                None => stats.unanswered_batches += 1,
            }
        }
        if stats.rows > 0 {
            stats.mean_discriminator = disc_sum / stats.rows as f64;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SharingPolicy, WatchdogConfig};
    use crate::error::EXIT_MEMBERSHIP_COLLAPSE;
    use crate::fault::{DeviceFaultSpec, FaultKind};
    use crate::storage::{MemStorage, SnapshotStore};

    fn mini_service(rounds: usize) -> ServiceConfig {
        ServiceConfig {
            fleet: FleetConfig::fast(SharingPolicy::Raw),
            rounds,
            serving: ServingConfig::enabled(2, 64),
            ..ServiceConfig::default()
        }
    }

    fn mem_store() -> SnapshotStore {
        SnapshotStore::new(Box::new(MemStorage::new()))
    }

    #[test]
    fn churn_plan_is_deterministic_and_scripted() {
        let cfg = ChurnConfig {
            enabled: true,
            scripted_joins: vec![(1, 2)],
            scripted_leaves: vec![(2, 0)],
            leave_rate: 0.3,
            join_rate: 0.3,
            min_members: 2,
            max_members: 8,
        };
        let a = ChurnPlan::derive(7, 4, &[0, 1, 2], &cfg);
        let b = ChurnPlan::derive(7, 4, &[0, 1, 2], &cfg);
        assert_eq!(a, b, "pure function of the seed");
        assert_eq!(a.rounds[0].members, vec![0, 1, 2], "round 0 is bootstrap");
        assert!(a.rounds[1].joined.contains(&3), "scripted join fires");
        assert!(a.rounds[1].joined.contains(&4));
        assert!(a.rounds[2].left.contains(&0), "scripted leave fires");
        for rm in &a.rounds {
            assert!(rm.members.len() >= cfg.min_members, "random clamp holds");
            let mut sorted = rm.members.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, rm.members, "memberships are sorted");
        }
        let off = ChurnPlan::derive(7, 4, &[0, 1, 2], &ChurnConfig::default());
        assert!(off.rounds.iter().all(|rm| rm.members == vec![0, 1, 2]));
    }

    #[test]
    fn serving_model_trains_scores_and_roundtrips() {
        let pool = LabSimulator::new(LabSimConfig::small(300, 11))
            .generate()
            .unwrap();
        let model = ServingModel::train(&pool, 30, 99).unwrap();
        let flows = LabSimulator::new(LabSimConfig::small(128, 12))
            .generate()
            .unwrap();
        let (rows, flagged, disc) = model.score_batch(&flows).unwrap();
        assert_eq!(rows, 128);
        assert!(flagged <= rows);
        assert!((0.0..=1.0).contains(&disc), "sigmoid mean, got {disc}");
        // The committed models survive a JSON round-trip bit-identically.
        let json = serde_json::to_string(&model).unwrap();
        let back: ServingModel = serde_json::from_str(&json).unwrap();
        let (r2, f2, d2) = back.score_batch(&flows).unwrap();
        assert_eq!((rows, flagged), (r2, f2));
        assert_eq!(disc, d2);
        // An empty handle refuses politely; an installed one stamps
        // generation and staleness.
        let mut handle = ServingHandle::empty();
        assert!(handle.answer(&flows, 3).unwrap().is_none());
        handle.install(model, 2, 1);
        let score = handle.answer(&flows, 3).unwrap().unwrap();
        assert_eq!(score.generation, 2);
        assert_eq!(score.staleness, 2);
    }

    #[test]
    fn service_commits_rounds_and_resumes() {
        let service = FleetService::new(mini_service(2));
        let mut store = mem_store();
        let report = service.run(&mut store).unwrap();
        assert_eq!(report.committed_rounds, 2);
        assert_eq!(report.final_generation, Some(2));
        assert_eq!(report.rounds.len(), 2);
        for record in &report.rounds {
            assert_eq!(record.verdict.label(), "committed");
            assert_eq!(record.serving.staleness, Some(0), "fresh every round");
            assert_eq!(record.serving.unanswered_batches, 0);
            assert!(record.serving.rows >= 128);
        }
        // A second run over the same store resumes past the end: the
        // ledger is intact and no new rounds execute.
        let resumed = service.run(&mut store).unwrap();
        assert_eq!(resumed.resumed_from_generation, Some(2));
        assert_eq!(resumed.rounds.len(), 2);
        assert_eq!(
            resumed.committed_rounds + resumed.aborted_rounds + resumed.failed_rounds,
            2
        );
    }

    #[test]
    fn failed_round_serves_degraded_from_the_last_commit() {
        let mut cfg = mini_service(3);
        // Round 1: both devices crash on acquire and quorum demands all.
        let fault = crate::fault::FaultConfig::scripted(vec![
            DeviceFaultSpec::permanent(0, FaultKind::CrashAcquire),
            DeviceFaultSpec::permanent(1, FaultKind::CrashAcquire),
        ]);
        cfg.round_faults = vec![(1, fault)];
        let report = FleetService::new(cfg).run(&mut mem_store()).unwrap();
        assert_eq!(report.committed_rounds, 2);
        assert_eq!(report.failed_rounds, 1);
        assert_eq!(report.rounds[1].verdict.label(), "failed");
        // Degraded serving: round 1's answers come from generation 1,
        // one round stale; round 2 commits and goes fresh again.
        assert_eq!(report.rounds[1].serving.answered_generation, Some(1));
        assert_eq!(report.rounds[1].serving.staleness, Some(1));
        assert_eq!(report.rounds[2].serving.staleness, Some(0));
        assert_eq!(report.final_generation, Some(2));
    }

    #[test]
    fn watchdog_abort_is_recorded_not_fatal() {
        let mut cfg = mini_service(2);
        cfg.serving.enabled = false;
        cfg.fleet.watchdog = WatchdogConfig::armed(500);
        let fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::permanent(
            1,
            FaultKind::Straggle,
        )
        .with_magnitude(900)]);
        cfg.round_faults = vec![(0, fault)];
        let report = FleetService::new(cfg).run(&mut mem_store()).unwrap();
        assert_eq!(report.aborted_rounds, 1);
        assert_eq!(report.committed_rounds, 1);
        assert!(matches!(
            report.rounds[0].verdict,
            RoundVerdict::Aborted { ref phase, .. } if phase == "acquire"
        ));
        assert_eq!(report.rounds[1].verdict.label(), "committed");
    }

    #[test]
    fn membership_collapse_is_loud_and_distinctly_coded() {
        let mut cfg = mini_service(3);
        cfg.serving.enabled = false;
        cfg.churn = ChurnConfig {
            enabled: true,
            scripted_leaves: vec![(1, 0), (1, 1)],
            min_members: 2,
            ..ChurnConfig::default()
        };
        let err = FleetService::new(cfg).run(&mut mem_store()).unwrap_err();
        assert!(matches!(
            err,
            FleetError::MembershipCollapse {
                round: 1,
                members: 0,
                min_members: 2
            }
        ));
        assert_eq!(err.exit_code(), EXIT_MEMBERSHIP_COLLAPSE);
    }

    #[test]
    fn service_fingerprint_is_reproducible() {
        let a = FleetService::new(mini_service(2))
            .run(&mut mem_store())
            .unwrap();
        let b = FleetService::new(mini_service(2))
            .run(&mut mem_store())
            .unwrap();
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn service_config_validation() {
        let bad = |f: fn(&mut ServiceConfig)| {
            let mut c = mini_service(2);
            f(&mut c);
            c.validate()
        };
        assert!(bad(|c| c.rounds = 0).is_err());
        assert!(bad(|c| c.churn.min_members = 0).is_err());
        assert!(bad(|c| {
            c.churn.min_members = 4;
            c.churn.max_members = 2;
        })
        .is_err());
        assert!(bad(|c| c.churn.join_rate = 1.5).is_err());
        assert!(bad(|c| {
            c.churn.enabled = true;
            c.churn.scripted_joins = vec![(0, 1)];
        })
        .is_err());
        assert!(bad(|c| c.round_faults = vec![(9, FaultConfig::default())]).is_err());
        assert!(bad(|c| c.member_attack_fraction = vec![(0, 2.0)]).is_err());
        assert!(bad(|c| c.serving.batch_rows = 0).is_err());
        assert!(mini_service(2).validate().is_ok());
    }
}
