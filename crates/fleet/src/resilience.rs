//! The recovery layer: bounded retry with deterministic backoff, share
//! validation + quarantine, quorum accounting, and round checkpoints.
//!
//! Where [`crate::fault`] decides what *breaks*, this module decides what
//! the orchestrator *does about it*. The policy knobs live in
//! [`ResilienceConfig`]; the defaults are chosen so a fault-free fleet
//! behaves bit-identically to the pre-recovery code path (full quorum
//! required, no validity floor, a few retries that never trigger).
//!
//! All waiting is simulated: backoff and straggler budgets are virtual
//! ticks on the [`crate::fault::VirtualClock`], never wall-clock sleeps,
//! so recovery decisions are reproducible across `KINET_THREADS` values.

use crate::config::FleetConfig;
use crate::error::FleetError;
use crate::report::FleetReport;
use kinet_data::encoded::KgTableChecker;
use kinet_data::stream::{ChunkSource, StreamValidity, TableChunks};
use kinet_data::Table;
use kinet_kg::NetworkKg;
use std::path::Path;

/// Recovery policy for one fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Retries after the first failed attempt of a device task (so a
    /// device gets `max_retries + 1` attempts total).
    pub max_retries: usize,
    /// Backoff after the first failed attempt, in virtual ticks.
    pub backoff_base_ticks: u64,
    /// Ceiling for the exponentially growing backoff.
    pub backoff_cap_ticks: u64,
    /// Virtual ticks a device may spend straggling per attempt before the
    /// orchestrator declares it timed out.
    pub straggler_budget_ticks: u64,
    /// Virtual ticks the union phase waits for late vocabulary messages;
    /// vocabs delayed beyond this are treated as dropped.
    pub vocab_wait_budget_ticks: u64,
    /// Fraction of devices that must report for the round to commit.
    pub quorum_frac: f64,
    /// Minimum KG-validity rate a shared table must reach to be pooled;
    /// `0.0` accepts everything finite.
    pub min_share_validity: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_ticks: 100,
            backoff_cap_ticks: 1600,
            straggler_budget_ticks: 1000,
            vocab_wait_budget_ticks: 1000,
            quorum_frac: 1.0,
            min_share_validity: 0.0,
        }
    }
}

impl ResilienceConfig {
    /// A policy tolerating partial participation: commit at half the
    /// fleet, quarantine shares below 30% KG validity.
    pub fn tolerant() -> Self {
        Self {
            quorum_frac: 0.5,
            min_share_validity: 0.3,
            ..Self::default()
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), FleetError> {
        if !(0.0..=1.0).contains(&self.quorum_frac) {
            return Err(FleetError::Config(format!(
                "quorum_frac={} out of [0, 1]",
                self.quorum_frac
            )));
        }
        if !(0.0..=1.0).contains(&self.min_share_validity) {
            return Err(FleetError::Config(format!(
                "min_share_validity={} out of [0, 1]",
                self.min_share_validity
            )));
        }
        if self.backoff_base_ticks > self.backoff_cap_ticks {
            return Err(FleetError::Config(format!(
                "backoff_base_ticks={} exceeds backoff_cap_ticks={}",
                self.backoff_base_ticks, self.backoff_cap_ticks
            )));
        }
        Ok(())
    }

    /// Devices required for quorum: `ceil(quorum_frac * n_devices)`,
    /// never below 1 on a non-empty fleet (an empty commit is useless).
    pub fn quorum_required(&self, n_devices: usize) -> usize {
        if n_devices == 0 {
            return 0;
        }
        let raw = (self.quorum_frac * n_devices as f64).ceil() as usize;
        raw.clamp(1, n_devices)
    }
}

/// Deterministic capped exponential backoff: `base << attempt`, saturating
/// at `cap`. Attempt 0 is the delay before the first retry.
pub fn backoff_ticks(base: u64, cap: u64, attempt: usize) -> u64 {
    if base == 0 {
        return 0;
    }
    let shifted = if attempt >= 63 {
        u64::MAX
    } else {
        base.saturating_mul(1u64 << attempt)
    };
    shifted.min(cap)
}

/// Why a share was rejected before pooling.
#[derive(Clone, Debug, PartialEq)]
pub enum QuarantineReason {
    /// The share carried NaN/infinite numeric cells.
    NonFinite {
        /// Offending cells found.
        cells: usize,
    },
    /// The share's KG-validity rate fell below the configured floor.
    LowValidity {
        /// Measured validity rate.
        rate: f64,
        /// The configured floor it missed.
        floor: f64,
    },
    /// The share could not be scored at all (schema mismatch).
    Unscorable {
        /// The scorer's error.
        message: String,
    },
}

impl QuarantineReason {
    /// One-line rendering for reports.
    pub fn describe(&self) -> String {
        match self {
            QuarantineReason::NonFinite { cells } => {
                format!("non-finite share ({cells} bad cell(s))")
            }
            QuarantineReason::LowValidity { rate, floor } => {
                format!("kg validity {rate:.3} below floor {floor:.3}")
            }
            QuarantineReason::Unscorable { message } => {
                format!("unscorable share: {message}")
            }
        }
    }
}

/// Validates a synthetic share before it may be pooled: scans every
/// numeric cell for non-finite values, then (when `min_share_validity`
/// is positive) scores KG validity chunk-by-chunk with the same
/// [`KgTableChecker`]/[`StreamValidity`] pipeline the aggregate report
/// uses. Returns the share's validity tally on acceptance so the caller
/// can absorb it into a pool-wide aggregate without re-scoring.
///
/// # Errors
///
/// Returns the [`QuarantineReason`] when the share must be rejected.
pub fn validate_share(
    share: &Table,
    kg: &NetworkKg,
    cfg: &ResilienceConfig,
    chunk_rows: usize,
) -> Result<StreamValidity, QuarantineReason> {
    let mut bad_cells = 0usize;
    for col in share.schema().continuous_names() {
        if let Ok(vals) = share.num_column(col) {
            bad_cells += vals.iter().filter(|v| !v.is_finite()).count();
        }
    }
    if bad_cells > 0 {
        return Err(QuarantineReason::NonFinite { cells: bad_cells });
    }
    let checker = KgTableChecker::new(kg.compiled(), kg.base_interner(), share.schema());
    let mut validity = StreamValidity::new();
    let mut chunks = TableChunks::new(share);
    let unscorable = |e: kinet_data::DataError| QuarantineReason::Unscorable {
        message: e.to_string(),
    };
    while let Some(chunk) = chunks.next_chunk(chunk_rows.max(1)).map_err(unscorable)? {
        validity.observe(&checker, &chunk).map_err(unscorable)?;
    }
    let rate = validity.rate();
    if rate < cfg.min_share_validity {
        return Err(QuarantineReason::LowValidity {
            rate,
            floor: cfg.min_share_validity,
        });
    }
    Ok(validity)
}

/// A committed round persisted to disk, so an interrupted multi-round
/// campaign resumes instead of recomputing (PR 5's serde snapshots carry
/// the report; the config key guards against resuming someone else's
/// round).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RoundCheckpoint {
    /// Canonical rendering of the [`FleetConfig`] that produced the round.
    pub config_key: String,
    /// The committed report.
    pub report: FleetReport,
}

impl RoundCheckpoint {
    /// Wraps a committed report.
    pub fn new(config_key: String, report: FleetReport) -> Self {
        Self { config_key, report }
    }

    /// The canonical config key: the `Debug` rendering, which covers every
    /// field (including fault and resilience policies), so any config
    /// change invalidates the checkpoint.
    pub fn config_key(cfg: &FleetConfig) -> String {
        format!("{cfg:?}")
    }

    /// Writes the checkpoint as a checksummed snapshot record
    /// ([`crate::storage::encode_record`]) through a temp-file + atomic
    /// rename, so a torn write can neither truncate the file in place nor
    /// go undetected at load.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] when encoding or writing fails.
    pub fn save(&self, path: &Path) -> Result<(), FleetError> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| FleetError::Checkpoint(format!("encode {}: {e}", path.display())))?;
        let record = crate::storage::encode_record(0, json.as_bytes());
        crate::storage::write_file_atomic(path, &record)
            .map_err(|e| FleetError::Checkpoint(format!("write {}: {e}", path.display())))
    }

    /// Reads a checkpoint back. `Ok(None)` means *absent* — a fresh run,
    /// not a failure. An existing file that fails record verification
    /// (torn, bit-flipped, not a checkpoint) is an error the caller must
    /// surface, never silently conflate with absence.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] when the file exists but is
    /// unreadable or corrupt.
    pub fn load(path: &Path) -> Result<Option<Self>, FleetError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(FleetError::Checkpoint(format!(
                    "read {}: {e}",
                    path.display()
                )))
            }
        };
        let (_, payload) = crate::storage::decode_record(&bytes)
            .map_err(|e| FleetError::Checkpoint(format!("verify {}: {e}", path.display())))?;
        let json = std::str::from_utf8(payload)
            .map_err(|e| FleetError::Checkpoint(format!("decode {}: {e}", path.display())))?;
        serde_json::from_str(json)
            .map(Some)
            .map_err(|e| FleetError::Checkpoint(format!("parse {}: {e}", path.display())))
    }
}

/// Order-invariant quorum verdict over per-device outcomes.
///
/// `reported[d]` is `true` when device `d`'s contribution was accepted
/// (pooled share, or a local evaluation under a non-sharing policy);
/// quarantined and crashed devices are `false`. The verdict only depends
/// on the *set* of reporting devices — never on completion order — which
/// the proptests in `tests/fleet_faults.rs` pin down.
///
/// # Errors
///
/// Returns [`FleetError::QuorumLost`] listing every degraded device when
/// fewer devices reported than the policy requires.
pub fn check_quorum(
    reported: &[bool],
    degraded: &[(usize, String)],
    cfg: &ResilienceConfig,
) -> Result<(), FleetError> {
    let n_devices = reported.len();
    let required = cfg.quorum_required(n_devices);
    let ok = reported.iter().filter(|&&r| r).count();
    if ok >= required {
        return Ok(());
    }
    let mut degraded = degraded.to_vec();
    degraded.sort_by_key(|(d, _)| *d);
    Err(FleetError::QuorumLost {
        reported: ok,
        required,
        n_devices,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_data::Value;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    #[test]
    fn defaults_demand_full_quorum_and_accept_everything_finite() {
        let cfg = ResilienceConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.quorum_required(4), 4);
        assert_eq!(cfg.min_share_validity, 0.0);
    }

    #[test]
    fn quorum_required_rounds_up_and_clamps() {
        let mut cfg = ResilienceConfig {
            quorum_frac: 0.5,
            ..ResilienceConfig::default()
        };
        assert_eq!(cfg.quorum_required(4), 2);
        assert_eq!(cfg.quorum_required(5), 3, "ceil(2.5)");
        cfg.quorum_frac = 0.0;
        assert_eq!(cfg.quorum_required(4), 1, "never zero on a live fleet");
        assert_eq!(cfg.quorum_required(0), 0, "empty fleet needs nobody");
        cfg.quorum_frac = 1.0;
        assert_eq!(cfg.quorum_required(7), 7);
    }

    #[test]
    fn validation_rejects_bad_policies() {
        let mut cfg = ResilienceConfig {
            quorum_frac: 1.2,
            ..ResilienceConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.quorum_frac = 0.5;
        cfg.min_share_validity = -0.1;
        assert!(cfg.validate().is_err());
        cfg.min_share_validity = 0.3;
        cfg.backoff_base_ticks = 5000;
        assert!(cfg.validate().is_err(), "base above cap");
    }

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff_ticks(100, 1600, 0), 100);
        assert_eq!(backoff_ticks(100, 1600, 1), 200);
        assert_eq!(backoff_ticks(100, 1600, 3), 800);
        assert_eq!(backoff_ticks(100, 1600, 4), 1600);
        assert_eq!(backoff_ticks(100, 1600, 40), 1600, "capped forever");
        assert_eq!(backoff_ticks(100, 1600, 80), 1600, "no shift overflow");
        assert_eq!(backoff_ticks(0, 1600, 5), 0, "zero base disables backoff");
    }

    fn lab_share() -> Table {
        LabSimulator::new(LabSimConfig::small(40, 7))
            .generate()
            .expect("lab generation is infallible at this size")
    }

    /// Overwrites `dst_port` with `port` on every row.
    fn reported_on_port(mut share: Table, port: f64) -> Table {
        let col = LabSimulator::schema()
            .iter()
            .position(|c| c.name() == "dst_port")
            .unwrap();
        for r in 0..share.n_rows() {
            let mut row = share.row(r);
            row[col] = Value::num(port);
            share.set_row(r, row).unwrap();
        }
        share
    }

    #[test]
    fn non_finite_shares_are_quarantined() {
        let kg = LabSimulator::knowledge_graph();
        let cfg = ResilienceConfig::default();
        let share = reported_on_port(lab_share(), f64::NAN);
        match validate_share(&share, &kg, &cfg, 8) {
            Err(QuarantineReason::NonFinite { cells }) => assert_eq!(cells, 40),
            other => panic!("expected non-finite quarantine, got {other:?}"),
        }
    }

    #[test]
    fn validity_floor_quarantines_invalid_shares_but_keeps_valid_ones() {
        let kg = LabSimulator::knowledge_graph();
        let cfg = ResilienceConfig {
            min_share_validity: 0.5,
            ..ResilienceConfig::default()
        };
        let good = lab_share();
        let tally = validate_share(&good, &kg, &cfg, 8).expect("simulated traffic pools");
        assert!(
            tally.rate() > 0.9,
            "simulated lab traffic is KG-valid: {}",
            tally.rate()
        );
        let bad = reported_on_port(lab_share(), -31337.0);
        match validate_share(&bad, &kg, &cfg, 8) {
            Err(QuarantineReason::LowValidity { rate, floor }) => {
                assert!(rate < 0.5, "absurd ports are KG-invalid: {rate}");
                assert_eq!(floor, 0.5);
            }
            other => panic!("expected low-validity quarantine, got {other:?}"),
        }
        // With the floor at zero the same garbage share is accepted.
        let open = ResilienceConfig::default();
        assert!(validate_share(&bad, &kg, &open, 8).is_ok());
    }

    #[test]
    fn checkpoint_distinguishes_absent_from_corrupt() {
        use crate::config::SharingPolicy;
        use crate::sim::FleetSim;
        let dir = std::env::temp_dir().join("kinet_fleet_ckpt_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.ckpt");
        let _ = std::fs::remove_file(&path);

        // Absent is Ok(None) — a fresh run, not an error.
        assert!(RoundCheckpoint::load(&path).unwrap().is_none());

        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run()
            .unwrap();
        let cp = RoundCheckpoint::new("key".into(), report);
        cp.save(&path).unwrap();
        assert!(
            !dir.join("round.ckpt.tmp").exists(),
            "atomic write leaves no temp file behind"
        );
        let back = RoundCheckpoint::load(&path).unwrap().expect("intact");
        assert_eq!(back.config_key, "key");

        // A truncated checkpoint (torn write) is a loud error.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = RoundCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("verify"), "{err}");

        // A single flipped bit is a loud error too.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(RoundCheckpoint::load(&path).is_err(), "bit flip detected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quorum_verdict_depends_only_on_the_reporting_set() {
        let cfg = ResilienceConfig {
            quorum_frac: 0.75,
            ..ResilienceConfig::default()
        };
        let reported = [true, false, true, true];
        assert!(check_quorum(&reported, &[], &cfg).is_ok(), "3/4 meets 0.75");
        let reported = [true, false, true, false];
        let err = check_quorum(
            &reported,
            &[(3, "crash".into()), (1, "straggler".into())],
            &cfg,
        )
        .unwrap_err();
        match &err {
            FleetError::QuorumLost {
                reported,
                required,
                n_devices,
                degraded,
            } => {
                assert_eq!((*reported, *required, *n_devices), (2, 3, 4));
                assert_eq!(degraded[0].0, 1, "degraded list sorted by device");
                assert_eq!(degraded[1].0, 3);
            }
            other => panic!("expected quorum loss, got {other:?}"),
        }
        assert_eq!(err.exit_code(), crate::error::EXIT_QUORUM_LOST);
    }
}
