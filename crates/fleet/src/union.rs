//! The condition-union protocol: vocabulary exchange, union merging, and
//! knowledge-graph seed synthesis.
//!
//! PR 4 left a structural gap in synthetic sharing (ROADMAP): a device
//! whose shard never contained a class — a camera that never witnessed a
//! port scan — cannot emit that class, because its condition-vector
//! dictionary is fit on local data only. The fleet closes the gap without
//! moving any raw rows:
//!
//! 1. every device publishes the **class vocabulary** it observed (names
//!    only — no records cross the wire);
//! 2. the fleet folds the vocabularies into their union (a set union, so
//!    the result is insensitive to device order and arrival order);
//! 3. each participating device receives its missing classes and
//!    synthesizes a few **KG-valid seed rows** per class — the knowledge
//!    graph knows each class's discriminative structure (protocols, port
//!    windows, destination constraints) even when the device has never
//!    seen one — and appends them to its training shard;
//! 4. the device's sampling-time condition drawer is switched to a
//!    balancing mode so the seeded classes are actually drawn at release
//!    time.

use crate::error::FleetError;
use kinet_data::{ColumnKind, Table, Value};
use kinet_kg::{Assignment, AttrValue, NetworkKg};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Folds per-device class vocabularies into their union. A pure set fold:
/// associative, commutative, and therefore independent of device order —
/// the property the fleet's determinism contract rests on (proptested in
/// `tests/fleet_union.rs`).
pub fn merge_vocabs<'a>(
    vocabs: impl IntoIterator<Item = &'a BTreeSet<String>>,
) -> BTreeSet<String> {
    let mut union = BTreeSet::new();
    for vocab in vocabs {
        union.extend(vocab.iter().cloned());
    }
    union
}

/// The classes in `union` that `local` is missing, in sorted order.
pub fn missing_classes(local: &BTreeSet<String>, union: &BTreeSet<String>) -> Vec<String> {
    union.difference(local).cloned().collect()
}

/// Synthesizes `per_class` KG-valid seed rows for each class in `missing`,
/// ready to append to `local` before training.
///
/// Each seed starts from a random local row (plausible unconstrained
/// features: packet counts, durations), then overwrites the scope field
/// with the class and every KG-constrained field with a value drawn from
/// the reasoner's valid sets/ranges — so the seed carries exactly the
/// structure that makes the class detectable (e.g. the CVE-1999-0003
/// portmap window, flooding's local-subnet destinations). Classes whose
/// constraints cannot be satisfied from the local dictionaries within the
/// rejection budget contribute fewer (possibly zero) rows rather than
/// invalid ones.
///
/// # Errors
///
/// Returns [`FleetError::Internal`] when `local` is empty and
/// [`FleetError::Data`] when a seed row violates the schema (a KG/schema
/// type conflict).
pub fn synthesize_seeds(
    kg: &NetworkKg,
    local: &Table,
    missing: &[String],
    per_class: usize,
    seed: u64,
) -> Result<Table, FleetError> {
    if local.is_empty() {
        return Err(FleetError::Internal(
            "cannot synthesize union seeds from an empty shard".into(),
        ));
    }
    let scope = kg.scope_field();
    let schema = local.schema().clone();
    // Local categorical dictionaries: the reasoner's fallback for fields
    // the KG leaves unconstrained (device identity, source addresses).
    let mut domains: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for name in schema.categorical_names() {
        let mut values: Vec<String> = local
            .cat_column(name)
            .map_err(|e| FleetError::Data {
                context: "union seed synthesis".into(),
                source: e,
            })?
            .to_vec();
        values.sort();
        values.dedup();
        domains.insert(name.to_string(), values);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seeds = Table::empty(schema.clone());
    for class in missing {
        let mut partial = Assignment::new();
        partial.set(scope, AttrValue::cat(class.clone()));
        // Every field the KG constrains for this class (global rules
        // included), minus the scope itself.
        let mut fields: Vec<String> = kg
            .reasoner()
            .rules()
            .applicable(class)
            .map(|r| r.field.clone())
            .filter(|f| f != scope)
            .collect();
        fields.sort();
        fields.dedup();
        for _ in 0..per_class {
            let base = rng.random_range(0..local.n_rows());
            let Some(valid) = kg
                .reasoner()
                .sample_valid(&partial, &fields, &domains, &mut rng, 16)
            else {
                continue; // unsatisfiable from this shard's dictionaries
            };
            let row: Vec<Value> = schema
                .iter()
                .enumerate()
                .map(|(ci, col)| match (valid.get(col.name()), col.kind()) {
                    (Some(AttrValue::Cat(s)), ColumnKind::Categorical) => Value::cat(s.clone()),
                    (Some(AttrValue::Num(v)), ColumnKind::Continuous) => Value::num(*v),
                    // Kind conflict or unconstrained: keep the base row's
                    // locally plausible value.
                    _ => local.value(base, ci),
                })
                .collect();
            seeds.push_row(row).map_err(|e| FleetError::Data {
                context: "union seed synthesis".into(),
                source: e,
            })?;
        }
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_datasets::lab::{LabSimConfig, LabSimulator};

    fn vocab(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn merge_and_missing() {
        let a = vocab(&["heartbeat", "dns_lookup"]);
        let b = vocab(&["heartbeat", "port_scan"]);
        let union = merge_vocabs([&a, &b]);
        assert_eq!(union, vocab(&["dns_lookup", "heartbeat", "port_scan"]));
        assert_eq!(missing_classes(&a, &union), vec!["port_scan".to_string()]);
        assert!(missing_classes(&union, &union).is_empty());
        assert!(merge_vocabs(std::iter::empty()).is_empty());
    }

    #[test]
    fn seeds_are_kg_valid_and_labeled() {
        // A benign-only shard: the device has never seen any attack.
        let sim = LabSimulator::new(LabSimConfig {
            n_records: 200,
            seed: 5,
            attack_fraction: 0.0,
        });
        let local = sim.generate_for_device("smart_plug", 120).unwrap();
        let kg = LabSimulator::knowledge_graph();
        let missing = vec![
            "cve_1999_0003".to_string(),
            "port_scan".to_string(),
            "traffic_flooding".to_string(),
        ];
        let seeds = synthesize_seeds(&kg, &local, &missing, 10, 99).unwrap();
        assert!(
            seeds.n_rows() >= 24,
            "most seeds should satisfy the KG within budget: {}",
            seeds.n_rows()
        );
        let checker = kinet_data::encoded::KgTableChecker::new(
            kg.compiled(),
            kg.base_interner(),
            seeds.schema(),
        );
        assert_eq!(
            checker.count_valid(&seeds).unwrap(),
            seeds.n_rows(),
            "every emitted seed must be KG-valid"
        );
        let counts = seeds.category_counts("event").unwrap();
        for class in &missing {
            assert!(
                counts.get(class).copied().unwrap_or(0) > 0,
                "{class} absent"
            );
        }
        // Discriminative structure survives: the CVE portmap window.
        for (event, &port) in seeds
            .cat_column("event")
            .unwrap()
            .iter()
            .zip(seeds.num_column("dst_port").unwrap())
        {
            if event == "cve_1999_0003" {
                assert!((32771.0..=34000.0).contains(&port), "port {port}");
            }
        }
    }

    #[test]
    fn seeding_is_deterministic_per_seed() {
        let sim = LabSimulator::new(LabSimConfig {
            n_records: 100,
            seed: 6,
            attack_fraction: 0.0,
        });
        let local = sim.generate_for_device("blink_camera", 80).unwrap();
        let kg = LabSimulator::knowledge_graph();
        let missing = vec!["port_scan".to_string()];
        let a = synthesize_seeds(&kg, &local, &missing, 6, 1).unwrap();
        let b = synthesize_seeds(&kg, &local, &missing, 6, 1).unwrap();
        assert_eq!(a, b);
        let c = synthesize_seeds(&kg, &local, &missing, 6, 2).unwrap();
        assert_ne!(a, c, "different seed, different rows");
    }

    #[test]
    fn empty_shard_rejected() {
        let kg = LabSimulator::knowledge_graph();
        let empty = Table::empty(LabSimulator::schema());
        assert!(synthesize_seeds(&kg, &empty, &["port_scan".to_string()], 4, 0).is_err());
    }
}
