//! Device-task scheduling on the kernel worker pool.
//!
//! Fleet work units (one device's shard scan or training run) are
//! scheduled across [`kinet_tensor::pool::num_threads`] scoped workers —
//! the same `KINET_THREADS` knob that sizes the GEMM workers, so one
//! environment variable governs all parallelism. Each worker pulls the
//! next task index from a shared counter; inside a worker the kernel
//! thread count is pinned to one (a device fit is the unit of parallelism;
//! nesting GEMM workers under task workers would oversubscribe the host).
//!
//! Determinism: every task derives its randomness from its own index, and
//! results are returned **in index order** regardless of which worker ran
//! them or in what order they finished, so a fleet report is bit-identical
//! for every `KINET_THREADS` value.

use crossbeam::channel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..n)` across the kernel worker pool and returns the results in
/// index order. Falls back to a plain sequential loop (with the ambient
/// kernel thread count, so a lone task still parallelizes its GEMMs) when
/// one worker suffices.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task.
///
/// # Panics
///
/// Panics if a task panics (the panic is propagated).
pub fn run_indexed<T, E, F>(n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let settled = run_indexed_settled(n, f);
    let mut out = Vec::with_capacity(n);
    let mut first_err = None;
    for result in settled {
        match result {
            Ok(v) => out.push(v),
            Err(e) => {
                // Index order means the first error seen is the
                // lowest-indexed one.
                first_err.get_or_insert(e);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Runs `f(0..n)` across the kernel worker pool and returns **every**
/// task's outcome in index order, without short-circuiting on failure —
/// the settled variant quorum aggregation needs: a fault on device 0 must
/// not discard the work of devices 1..n.
///
/// Same scheduling and determinism contract as [`run_indexed`]; the
/// sequential fallback keeps the ambient kernel thread count.
///
/// # Panics
///
/// Panics if a task panics (the panic is propagated).
pub fn run_indexed_settled<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = kinet_tensor::pool::num_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, T)>();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                // Pin the kernel layer to one thread inside a task worker:
                // the task is the unit of parallelism here. Results are
                // bit-identical either way (kernel determinism contract).
                let result = kinet_tensor::pool::with_threads(1, || f(i));
                if tx.send((i, result)).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, result) in rx.iter() {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index sent exactly one result"))
            .collect()
    })
    .expect("fleet task worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_tensor::pool::with_threads;

    #[test]
    fn results_arrive_in_index_order_for_any_worker_count() {
        for threads in [1, 2, 3, 8] {
            let out: Result<Vec<usize>, String> =
                with_threads(threads, || run_indexed(17, |i| Ok(i * i)));
            let expected: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(out.unwrap(), expected, "threads={threads}");
        }
    }

    #[test]
    fn lowest_indexed_error_wins() {
        for threads in [1, 4] {
            let out: Result<Vec<usize>, String> = with_threads(threads, || {
                run_indexed(10, |i| {
                    if i == 7 || i == 3 {
                        Err(format!("task {i} failed"))
                    } else {
                        Ok(i)
                    }
                })
            });
            assert_eq!(out.unwrap_err(), "task 3 failed", "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Result<Vec<usize>, String> = run_indexed(0, Ok);
        assert!(none.unwrap().is_empty());
        let one: Result<Vec<usize>, String> = with_threads(4, || run_indexed(1, |i| Ok(i + 5)));
        assert_eq!(one.unwrap(), vec![5]);
    }

    #[test]
    fn settled_keeps_every_outcome_in_index_order() {
        for threads in [1, 4] {
            let out: Vec<Result<usize, String>> = with_threads(threads, || {
                run_indexed_settled(10, |i| {
                    if i % 3 == 0 {
                        Err(format!("task {i} failed"))
                    } else {
                        Ok(i)
                    }
                })
            });
            assert_eq!(out.len(), 10, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => assert_eq!(*v, i),
                    Err(e) => assert_eq!(*e, format!("task {i} failed")),
                }
            }
            assert_eq!(
                out.iter().filter(|r| r.is_err()).count(),
                4,
                "no outcome is discarded"
            );
        }
    }

    #[test]
    fn kernel_threads_pinned_inside_parallel_workers() {
        let counts: Result<Vec<usize>, String> = with_threads(4, || {
            run_indexed(8, |_| Ok(kinet_tensor::pool::num_threads()))
        });
        assert!(counts.unwrap().iter().all(|&c| c == 1));
        // Sequential fallback keeps the ambient count.
        let counts: Result<Vec<usize>, String> = with_threads(1, || {
            run_indexed(3, |_| Ok(kinet_tensor::pool::num_threads()))
        });
        assert!(counts.unwrap().iter().all(|&c| c == 1));
    }
}
