//! Measurement output of a fleet run, JSON round-trippable through the
//! vendored serde deserializer so gates can diff a fresh run against a
//! reloaded snapshot.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-device generator-training diagnostics shipped alongside the
/// synthetic table — what a fleet operator needs to tell "this device's
/// generator diverged" from "the aggregate pool is weak".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceTrainingDiag {
    /// Index of the device node in the fleet (device identities cycle, so
    /// the name alone is not unique; this also fixes the report order).
    pub device_index: usize,
    /// Device identity.
    pub device: String,
    /// Final-epoch mean discriminator loss.
    pub final_d_loss: f64,
    /// Final-epoch mean generator loss.
    pub final_g_loss: f64,
    /// Train-on-synthetic/test-on-real probe accuracy of the device's own
    /// release (see `kinetgan::TrainingReport::probe_accuracy`).
    pub probe_accuracy: Option<f64>,
    /// KG-validity rate of the device's post-fit probe sample.
    pub final_validity: f64,
    /// Epochs actually trained.
    pub epochs: usize,
}

/// Canonical [`DeviceReport::status`] label for a healthy contribution.
pub const DEVICE_OK: &str = "ok";

/// One device's contribution to a fleet run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Index of the device node.
    pub device_index: usize,
    /// Device identity.
    pub device: String,
    /// Contribution status: [`DEVICE_OK`], `"degraded: <last failure>"`
    /// (all attempts failed; device excluded from the round), or
    /// `"quarantined: <reason>"` (share rejected before pooling).
    pub status: String,
    /// Failed attempts that were retried before the final outcome.
    pub retries: usize,
    /// Rows the device's shard stream yielded.
    pub shard_rows: usize,
    /// Event classes observed in the shard (sorted).
    pub shard_classes: Vec<String>,
    /// Union classes this device was seeded with (empty when the union
    /// protocol is off, the device opted out, or local coverage was
    /// already complete).
    pub seeded_classes: Vec<String>,
    /// Rows the device shipped to the aggregator.
    pub share_rows: usize,
    /// Preparation time (generator training for synthetic sharing) in
    /// milliseconds.
    pub prep_ms: f64,
    /// Local detector accuracy (local-only policy).
    pub local_accuracy: Option<f64>,
    /// Local detector attack recall (local-only policy).
    pub local_attack_recall: Option<f64>,
    /// Generator-training diagnostics (synthetic sharing only).
    pub diag: Option<DeviceTrainingDiag>,
}

/// Condition-union protocol outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UnionReport {
    /// Whether the protocol ran.
    pub enabled: bool,
    /// The fleet-wide class union (sorted).
    pub classes: Vec<String>,
    /// Devices that participated (did not opt out).
    pub devices_opted_in: usize,
    /// `(device, class)` seedings performed.
    pub seeded_pairs: usize,
    /// Mean per-device fraction of union classes observed locally —
    /// what coverage the fleet had *before* the protocol.
    pub coverage_before: f64,
    /// Mean per-device fraction of union classes emittable after seeding
    /// (local ∪ seeded) — the coverage the protocol bought.
    pub coverage_after: f64,
    /// Mean per-device fraction of union classes actually present in the
    /// shipped release (synthetic sharing; 0 otherwise).
    pub release_coverage: f64,
}

/// Fault-and-recovery accounting for one fleet round: what the plan
/// injected, what the orchestrator observed, and how the round survived
/// it. Every field is deterministic (virtual ticks, not wall time) and is
/// folded into [`FleetReport::deterministic_fingerprint`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Whether fault injection was enabled for the run.
    pub enabled: bool,
    /// Canonical rendering of the derived [`crate::fault::FaultPlan`].
    pub injected: Vec<String>,
    /// Fault events the orchestrator actually observed, in device-index
    /// order (`"device 2 (hub) crash-mid-fit: ... [attempt 1]"`).
    pub observed: Vec<String>,
    /// Total failed attempts that were retried, across all devices.
    pub retries: usize,
    /// `(device_index, reason)` for every share rejected before pooling.
    pub quarantined: Vec<(usize, String)>,
    /// `(device_index, last failure)` for every device excluded from the
    /// committed round.
    pub degraded: Vec<(usize, String)>,
    /// Devices whose contribution was accepted.
    pub devices_reported: usize,
    /// Devices the quorum policy required.
    pub quorum_required: usize,
    /// Whether the round met quorum (a report only exists when it did,
    /// but snapshots keep the verdict explicit).
    pub quorum_met: bool,
    /// Virtual ticks spent on backoff, straggling, and delays.
    pub virtual_ticks: u64,
}

impl FaultReport {
    /// A healthy-round report for `n` fully reporting devices.
    pub fn healthy(n: usize) -> Self {
        Self {
            devices_reported: n,
            quorum_required: n,
            quorum_met: true,
            ..Self::default()
        }
    }
}

/// Metrics from one end-to-end fleet run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetReport {
    /// Sharing policy label (`"raw"`, `"synthetic:KiNETGAN"`, …).
    pub policy: String,
    /// Number of simulated devices.
    pub n_devices: usize,
    /// Shard rows per device.
    pub rows_per_device: usize,
    /// Streaming chunk size the run used.
    pub chunk_rows: usize,
    /// Accuracy of the global (or averaged local) NIDS on the held-out
    /// global test stream.
    pub global_accuracy: f64,
    /// Recall on attack classes (fraction of attack records flagged as
    /// *some* attack).
    pub attack_recall: f64,
    /// Total bytes shipped from devices to the aggregator (CSV wire
    /// format).
    pub bytes_shared: usize,
    /// Mean per-device preparation time in milliseconds.
    pub mean_device_prep_ms: f64,
    /// Knowledge-graph validity rate of the pooled shared data, scored
    /// chunk-by-chunk through the compiled reasoner (1.0 when no data is
    /// shared).
    pub pool_kg_validity: f64,
    /// Rows in the pooled table the global detector trained on.
    pub pool_rows: usize,
    /// Label-class histogram of the pooled shared table (empty for
    /// local-only runs). A rare attack class at zero here is class
    /// collapse: the aggregator never even saw a training example for it.
    pub pool_class_counts: Vec<(String, usize)>,
    /// Largest number of decoded shard/window rows resident at once on any
    /// device stream — the number the streaming layer exists to bound
    /// (compare against `rows_per_device`).
    pub peak_decoded_rows: usize,
    /// Condition-union protocol outcome.
    pub union: UnionReport,
    /// Fault-and-recovery accounting.
    pub fault: FaultReport,
    /// Per-device outcomes, in device-index order.
    pub devices: Vec<DeviceReport>,
    /// End-to-end wall-clock time in milliseconds.
    pub total_wall_ms: f64,
}

impl FleetReport {
    /// Mean per-device probe accuracy, when any device reported one.
    pub fn mean_probe_accuracy(&self) -> Option<f64> {
        let probes: Vec<f64> = self
            .devices
            .iter()
            .filter_map(|d| d.diag.as_ref().and_then(|g| g.probe_accuracy))
            .collect();
        if probes.is_empty() {
            None
        } else {
            Some(probes.iter().sum::<f64>() / probes.len() as f64)
        }
    }

    /// Pooled count of rows whose label is one of `attack_events`.
    pub fn pool_attack_count(&self, attack_events: &[&str]) -> usize {
        self.pool_class_counts
            .iter()
            .filter(|(name, _)| attack_events.contains(&name.as_str()))
            .map(|(_, n)| n)
            .sum()
    }

    /// A canonical rendering of every **deterministic** field — everything
    /// except wall-clock timings. Two runs of the same config and seed must
    /// produce identical fingerprints for every `KINET_THREADS` value;
    /// tests and the determinism gate compare exactly this.
    ///
    /// Debug builds re-render with every timing field perturbed and assert
    /// the result is unchanged, so a timing value can never silently leak
    /// into the fingerprint as fields are added.
    pub fn deterministic_fingerprint(&self) -> String {
        let rendered = self.render_fingerprint();
        #[cfg(debug_assertions)]
        {
            let mut perturbed = self.clone();
            perturbed.total_wall_ms += 1234.5;
            perturbed.mean_device_prep_ms += 67.8;
            for d in &mut perturbed.devices {
                d.prep_ms += 9.1;
            }
            debug_assert_eq!(
                perturbed.render_fingerprint(),
                rendered,
                "wall-clock timing leaked into deterministic_fingerprint()"
            );
        }
        rendered
    }

    fn render_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "policy={} devices={} rows={} chunk={} acc={:.12} recall={:.12} bytes={} \
             validity={:.12} pool_rows={} peak={}",
            self.policy,
            self.n_devices,
            self.rows_per_device,
            self.chunk_rows,
            self.global_accuracy,
            self.attack_recall,
            self.bytes_shared,
            self.pool_kg_validity,
            self.pool_rows,
            self.peak_decoded_rows,
        );
        let _ = writeln!(out, "classes={:?}", self.pool_class_counts);
        let _ = writeln!(
            out,
            "union enabled={} classes={:?} opted={} pairs={} cov={:.12}/{:.12}/{:.12}",
            self.union.enabled,
            self.union.classes,
            self.union.devices_opted_in,
            self.union.seeded_pairs,
            self.union.coverage_before,
            self.union.coverage_after,
            self.union.release_coverage,
        );
        let _ = writeln!(
            out,
            "fault enabled={} injected={:?} observed={:?} retries={} quarantined={:?} \
             degraded={:?} reported={}/{} quorum_met={} ticks={}",
            self.fault.enabled,
            self.fault.injected,
            self.fault.observed,
            self.fault.retries,
            self.fault.quarantined,
            self.fault.degraded,
            self.fault.devices_reported,
            self.fault.quorum_required,
            self.fault.quorum_met,
            self.fault.virtual_ticks,
        );
        for d in &self.devices {
            let _ = writeln!(
                out,
                "device {} {} status={} retries={} shard={} classes={:?} seeded={:?} share={} \
                 local={:?}/{:?} probe={:?}",
                d.device_index,
                d.device,
                d.status,
                d.retries,
                d.shard_rows,
                d.shard_classes,
                d.seeded_classes,
                d.share_rows,
                d.local_accuracy,
                d.local_attack_recall,
                d.diag.as_ref().and_then(|g| g.probe_accuracy),
            );
        }
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} devices={:<3} rows/dev={:<6} acc={:.3} attack-recall={:.3} kg-valid={:.3} \
             shared={:>9}B peak-rows={:>6} prep={:>7.1}ms wall={:>7.1}ms",
            self.policy,
            self.n_devices,
            self.rows_per_device,
            self.global_accuracy,
            self.attack_recall,
            self.pool_kg_validity,
            self.bytes_shared,
            self.peak_decoded_rows,
            self.mean_device_prep_ms,
            self.total_wall_ms
        )?;
        if self.union.enabled {
            write!(
                f,
                " union[{} classes, {} seeded, cov {:.2}→{:.2}]",
                self.union.classes.len(),
                self.union.seeded_pairs,
                self.union.coverage_before,
                self.union.coverage_after
            )?;
        }
        if let Some(probe) = self.mean_probe_accuracy() {
            write!(f, " probe={probe:.3}")?;
        }
        if self.fault.enabled {
            write!(
                f,
                " fault[{}/{} reported, {} retries, {} quarantined, {} degraded, {} ticks]",
                self.fault.devices_reported,
                self.fault.quorum_required,
                self.fault.retries,
                self.fault.quarantined.len(),
                self.fault.degraded.len(),
                self.fault.virtual_ticks
            )?;
        }
        Ok(())
    }
}

/// Outcome of one scheduled round of the resident fleet service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RoundVerdict {
    /// The round met quorum and its pooled model was committed as a new
    /// snapshot generation.
    Committed {
        /// Generation the commit produced.
        generation: u64,
    },
    /// The watchdog killed a hung phase; the service moved on without a
    /// new generation.
    Aborted {
        /// Which phase blew its deadline.
        phase: String,
        /// Virtual ticks the phase spent.
        spent_ticks: u64,
        /// The deadline it blew through.
        deadline_ticks: u64,
    },
    /// The round failed outright (quorum loss, device fault storm); the
    /// service kept serving from the last committed generation.
    Failed {
        /// Rendered [`crate::error::FleetError`].
        error: String,
    },
}

impl RoundVerdict {
    /// Stable one-word label for gates and ledgers.
    pub fn label(&self) -> &'static str {
        match self {
            RoundVerdict::Committed { .. } => "committed",
            RoundVerdict::Aborted { .. } => "aborted",
            RoundVerdict::Failed { .. } => "failed",
        }
    }
}

/// Degraded-mode serving accounting for one service round: how many flow
/// batches were answered while this round was in flight, and how stale
/// the answering model was.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundServingStats {
    /// Flow batches scored during the round.
    pub batches: usize,
    /// Flow rows scored during the round.
    pub rows: usize,
    /// Snapshot generation that answered (the last *committed* one —
    /// never the round in flight).
    pub answered_generation: Option<u64>,
    /// Rounds between the answering commit and the current round: `0`
    /// when this round committed, `>= 1` while serving degraded.
    pub staleness: Option<u64>,
    /// Rows the served classifier flagged as some attack class.
    pub attack_flagged: usize,
    /// Mean discriminator (real-vs-pool) score over the served rows.
    pub mean_discriminator: f64,
    /// Batches that could not be answered because no generation was
    /// committed yet.
    pub unanswered_batches: usize,
}

/// One round's ledger entry in a [`ServiceReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Member ids present this round (sorted).
    pub members: Vec<u64>,
    /// Member ids that joined before this round (sorted).
    pub joined: Vec<u64>,
    /// Member ids that left before this round (sorted).
    pub left: Vec<u64>,
    /// Devices the quorum policy required this round.
    pub quorum_required: usize,
    /// How the round ended.
    pub verdict: RoundVerdict,
    /// `deterministic_fingerprint()` of the round's [`FleetReport`], when
    /// the round produced one.
    pub fleet_fingerprint: Option<String>,
    /// Attack recall of the round's pooled detector.
    pub attack_recall: Option<f64>,
    /// Global accuracy of the round's pooled detector.
    pub global_accuracy: Option<f64>,
    /// Serving activity while the round was in flight.
    pub serving: RoundServingStats,
}

/// Durable-storage fault accounting for a service run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StorageFaultReport {
    /// Faults the injecting storage layer actually fired.
    pub injected: Vec<String>,
    /// `(object, reason)` for every snapshot rejected during recovery
    /// scans.
    pub rejected_snapshots: Vec<(String, String)>,
}

/// Metrics from a resident multi-round fleet service run. Every field is
/// deterministic — there are no wall-clock timings here (those stay in
/// the per-round [`FleetReport`]s) — so the whole report folds into
/// [`ServiceReport::deterministic_fingerprint`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Rounds the service was asked to run.
    pub rounds_planned: usize,
    /// Generation restored from durable storage at startup, when the
    /// service resumed instead of starting fresh.
    pub resumed_from_generation: Option<u64>,
    /// Last committed generation when the service stopped.
    pub final_generation: Option<u64>,
    /// Rounds that committed a new generation.
    pub committed_rounds: usize,
    /// Rounds the watchdog aborted.
    pub aborted_rounds: usize,
    /// Rounds that failed outright.
    pub failed_rounds: usize,
    /// Per-round ledger, in round order.
    pub rounds: Vec<RoundRecord>,
    /// Membership churn ledger (`"round 1: +5 joined"`, …).
    pub churn: Vec<String>,
    /// Durable-storage fault accounting.
    pub storage: StorageFaultReport,
}

impl ServiceReport {
    /// Total flow batches answered across all rounds.
    pub fn serving_batches(&self) -> usize {
        self.rounds.iter().map(|r| r.serving.batches).sum()
    }

    /// Total flow rows scored across all rounds.
    pub fn serving_rows(&self) -> usize {
        self.rounds.iter().map(|r| r.serving.rows).sum()
    }

    /// Total batches that went unanswered (no committed generation yet).
    pub fn unanswered_batches(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.serving.unanswered_batches)
            .sum()
    }

    /// Canonical rendering of the whole report. The service report holds
    /// no wall-clock fields (round timings live in the per-round
    /// [`FleetReport`], which enters here only through its own
    /// already-timing-free fingerprint), so everything is rendered.
    /// Bit-identical across `KINET_THREADS` values by the same contract
    /// as [`FleetReport::deterministic_fingerprint`].
    pub fn deterministic_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service planned={} resumed={:?} final_gen={:?} committed={} aborted={} failed={}",
            self.rounds_planned,
            self.resumed_from_generation,
            self.final_generation,
            self.committed_rounds,
            self.aborted_rounds,
            self.failed_rounds,
        );
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "round {} members={:?} joined={:?} left={:?} quorum={} verdict={:?} \
                 recall={:?} acc={:?}",
                r.round,
                r.members,
                r.joined,
                r.left,
                r.quorum_required,
                r.verdict,
                r.attack_recall,
                r.global_accuracy,
            );
            if let Some(fp) = &r.fleet_fingerprint {
                let _ = writeln!(out, "round {} fleet:\n{fp}", r.round);
            }
            let s = &r.serving;
            let _ = writeln!(
                out,
                "round {} serving batches={} rows={} gen={:?} staleness={:?} flagged={} \
                 disc={:.12} unanswered={}",
                r.round,
                s.batches,
                s.rows,
                s.answered_generation,
                s.staleness,
                s.attack_flagged,
                s.mean_discriminator,
                s.unanswered_batches,
            );
        }
        let _ = writeln!(out, "churn={:?}", self.churn);
        let _ = writeln!(
            out,
            "storage injected={:?} rejected={:?}",
            self.storage.injected, self.storage.rejected_snapshots
        );
        out
    }
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "service: {} round(s) → {} committed / {} aborted / {} failed, gen={:?}, \
             served {} batch(es) ({} rows, {} unanswered), {} churn event(s), \
             {} storage fault(s) ({} snapshot(s) rejected)",
            self.rounds_planned,
            self.committed_rounds,
            self.aborted_rounds,
            self.failed_rounds,
            self.final_generation,
            self.serving_batches(),
            self.serving_rows(),
            self.unanswered_batches(),
            self.churn.len(),
            self.storage.injected.len(),
            self.storage.rejected_snapshots.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> FleetReport {
        FleetReport {
            policy: "synthetic:KiNETGAN".into(),
            n_devices: 2,
            rows_per_device: 500,
            chunk_rows: 128,
            global_accuracy: 0.8,
            attack_recall: 0.7,
            bytes_shared: 2048,
            mean_device_prep_ms: 12.0,
            pool_kg_validity: 0.9,
            pool_rows: 1000,
            pool_class_counts: vec![("heartbeat".into(), 700), ("port_scan".into(), 30)],
            peak_decoded_rows: 628,
            union: UnionReport {
                enabled: true,
                classes: vec!["heartbeat".into(), "port_scan".into()],
                devices_opted_in: 2,
                seeded_pairs: 1,
                coverage_before: 0.75,
                coverage_after: 1.0,
                release_coverage: 1.0,
            },
            fault: FaultReport::healthy(2),
            devices: vec![DeviceReport {
                device_index: 0,
                device: "blink_camera".into(),
                status: DEVICE_OK.into(),
                retries: 0,
                shard_rows: 500,
                shard_classes: vec!["heartbeat".into()],
                seeded_classes: vec!["port_scan".into()],
                share_rows: 500,
                prep_ms: 12.0,
                local_accuracy: None,
                local_attack_recall: None,
                diag: Some(DeviceTrainingDiag {
                    device_index: 0,
                    device: "blink_camera".into(),
                    final_d_loss: 1.0,
                    final_g_loss: 2.0,
                    probe_accuracy: Some(0.8),
                    final_validity: 0.95,
                    epochs: 60,
                }),
            }],
            total_wall_ms: 100.0,
        }
    }

    #[test]
    fn accessors_and_display() {
        let r = sample_report();
        assert_eq!(r.mean_probe_accuracy(), Some(0.8));
        assert_eq!(r.pool_attack_count(&["port_scan"]), 30);
        let s = r.to_string();
        assert!(s.contains("synthetic:KiNETGAN"));
        assert!(s.contains("union["));
        assert!(s.contains("probe=0.800"));
    }

    #[test]
    fn fingerprint_ignores_timing() {
        let a = sample_report();
        let mut b = sample_report();
        b.total_wall_ms = 9999.0;
        b.mean_device_prep_ms = 0.1;
        b.devices[0].prep_ms = 77.7;
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut c = sample_report();
        c.attack_recall = 0.5;
        assert_ne!(a.deterministic_fingerprint(), c.deterministic_fingerprint());
    }

    #[test]
    fn fault_accounting_is_fingerprinted() {
        let a = sample_report();
        let mut b = sample_report();
        b.fault.quarantined.push((1, "non-finite share".into()));
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut c = sample_report();
        c.fault.virtual_ticks = 700;
        assert_ne!(
            a.deterministic_fingerprint(),
            c.deterministic_fingerprint(),
            "virtual ticks are deterministic, so they belong in the fingerprint"
        );
        let mut d = sample_report();
        d.devices[0].status = "degraded: crash".into();
        assert_ne!(a.deterministic_fingerprint(), d.deterministic_fingerprint());
    }

    #[test]
    fn mean_probe_accuracy_is_well_defined_with_no_devices() {
        let mut r = sample_report();
        r.devices.clear();
        assert_eq!(r.mean_probe_accuracy(), None, "absent, never NaN");
        assert!(!r.to_string().contains("NaN"));
    }

    #[test]
    fn json_roundtrip_through_the_shim_deserializer() {
        let r = sample_report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.deterministic_fingerprint(),
            r.deterministic_fingerprint()
        );
        assert_eq!(back.total_wall_ms, r.total_wall_ms);
        assert_eq!(back.devices.len(), 1);
        assert_eq!(back.devices[0].diag.as_ref().unwrap().epochs, 60);
    }

    fn sample_service_report() -> ServiceReport {
        ServiceReport {
            rounds_planned: 3,
            resumed_from_generation: Some(1),
            final_generation: Some(2),
            committed_rounds: 2,
            aborted_rounds: 1,
            failed_rounds: 0,
            rounds: vec![
                RoundRecord {
                    round: 0,
                    members: vec![0, 1],
                    joined: vec![],
                    left: vec![],
                    quorum_required: 2,
                    verdict: RoundVerdict::Committed { generation: 2 },
                    fleet_fingerprint: Some("policy=raw ...".into()),
                    attack_recall: Some(0.75),
                    global_accuracy: Some(0.9),
                    serving: RoundServingStats {
                        batches: 4,
                        rows: 512,
                        answered_generation: Some(1),
                        staleness: Some(0),
                        attack_flagged: 40,
                        mean_discriminator: 0.5,
                        unanswered_batches: 0,
                    },
                },
                RoundRecord {
                    round: 1,
                    members: vec![0, 1, 2],
                    joined: vec![2],
                    left: vec![],
                    quorum_required: 3,
                    verdict: RoundVerdict::Aborted {
                        phase: "acquire".into(),
                        spent_ticks: 900,
                        deadline_ticks: 500,
                    },
                    fleet_fingerprint: None,
                    attack_recall: None,
                    global_accuracy: None,
                    serving: RoundServingStats {
                        batches: 4,
                        rows: 512,
                        answered_generation: Some(2),
                        staleness: Some(1),
                        attack_flagged: 38,
                        mean_discriminator: 0.49,
                        unanswered_batches: 0,
                    },
                },
            ],
            churn: vec!["round 1: +2 joined".into()],
            storage: StorageFaultReport {
                injected: vec!["write 1: torn-write kept 50%".into()],
                rejected_snapshots: vec![("snap-0000000002.snap".into(), "checksum".into())],
            },
        }
    }

    #[test]
    fn service_report_totals_and_display() {
        let r = sample_service_report();
        assert_eq!(r.serving_batches(), 8);
        assert_eq!(r.serving_rows(), 1024);
        assert_eq!(r.unanswered_batches(), 0);
        let s = r.to_string();
        assert!(s.contains("2 committed / 1 aborted / 0 failed"), "{s}");
        assert!(s.contains("1 snapshot(s) rejected"), "{s}");
        assert_eq!(
            RoundVerdict::Committed { generation: 1 }.label(),
            "committed"
        );
    }

    #[test]
    fn service_fingerprint_sees_every_ledger() {
        let a = sample_service_report();
        let mut b = sample_service_report();
        b.rounds[1].verdict = RoundVerdict::Failed {
            error: "quorum lost".into(),
        };
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut c = sample_service_report();
        c.storage.rejected_snapshots.clear();
        assert_ne!(a.deterministic_fingerprint(), c.deterministic_fingerprint());
        let mut d = sample_service_report();
        d.rounds[0].serving.staleness = Some(2);
        assert_ne!(a.deterministic_fingerprint(), d.deterministic_fingerprint());
        let mut e = sample_service_report();
        e.churn.clear();
        assert_ne!(a.deterministic_fingerprint(), e.deterministic_fingerprint());
    }

    #[test]
    fn service_report_roundtrips_verdict_enums_through_the_shim() {
        let r = sample_service_report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.deterministic_fingerprint(),
            r.deterministic_fingerprint()
        );
        assert_eq!(
            back.rounds[0].verdict,
            RoundVerdict::Committed { generation: 2 }
        );
        assert_eq!(back.rounds[1].verdict.label(), "aborted");
    }
}
