//! Typed fleet errors.
//!
//! PR 5 left every fleet/nids failure as a bare `String`, which made the
//! orchestrator fail-fast by construction: a caller could not tell "the
//! config is invalid" from "device 7 diverged" from "the round lost
//! quorum", so the only safe reaction was to abort the whole round. The
//! recovery layer ([`crate::resilience`]) needs those distinctions — a
//! device fault is retryable, a quorum loss is a loud round failure, a
//! config error is a caller bug — and the process gates need them as
//! distinct exit codes.

use kinet_data::DataError;
use std::error::Error;
use std::fmt;

/// What went wrong inside one device's round contribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceFaultKind {
    /// The device died while streaming its shard.
    CrashAcquire,
    /// The device died while fitting its generator.
    CrashMidFit,
    /// The device exceeded the straggler tick budget.
    Straggler,
    /// The device's chunk stream failed (truncated/corrupt source error).
    Stream,
    /// Generator training or sampling failed.
    Training,
    /// Anything else (schema mismatch, seeding failure).
    Other,
}

impl DeviceFaultKind {
    /// Stable label used in reports and fault logs.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceFaultKind::CrashAcquire => "crash-acquire",
            DeviceFaultKind::CrashMidFit => "crash-mid-fit",
            DeviceFaultKind::Straggler => "straggler",
            DeviceFaultKind::Stream => "stream",
            DeviceFaultKind::Training => "training",
            DeviceFaultKind::Other => "other",
        }
    }
}

/// Any failure a fleet run can surface. `Display` renders a one-line
/// human message; [`Error::source`] exposes the underlying cause where one
/// exists; [`FleetError::exit_code`] maps the variant onto the process
/// exit-code contract shared by `fleet_demo`/`sim_gate`/`chaos_gate`.
#[derive(Debug)]
pub enum FleetError {
    /// The configuration is internally inconsistent (caller bug; never
    /// retryable).
    Config(String),
    /// A data-layer failure outside any one device (test-stream
    /// generation, wire encoding, pooling).
    Data {
        /// What the fleet was doing when the data layer failed.
        context: String,
        /// The underlying error.
        source: DataError,
    },
    /// One device's contribution failed. Recorded per attempt by the
    /// recovery layer; only surfaces as a round error when quorum is lost.
    Device {
        /// Fleet index of the failing device.
        device_index: usize,
        /// Device identity.
        device: String,
        /// Failure class (drives retry policy and fault accounting).
        kind: DeviceFaultKind,
        /// Human-readable detail.
        message: String,
    },
    /// Fewer devices reported than the quorum fraction requires; the
    /// round refuses to commit.
    QuorumLost {
        /// Devices whose contribution was accepted.
        reported: usize,
        /// Devices the quorum fraction requires.
        required: usize,
        /// Fleet size.
        n_devices: usize,
        /// `(device_index, last failure)` for every degraded device.
        degraded: Vec<(usize, String)>,
    },
    /// A checkpoint file could not be read, parsed, or written.
    Checkpoint(String),
    /// Membership churn shrank the resident fleet below the configured
    /// minimum: the service refuses to keep scheduling rounds a quorum
    /// could never commit.
    MembershipCollapse {
        /// Round at which the fleet collapsed.
        round: usize,
        /// Members still present.
        members: usize,
        /// The configured membership floor.
        min_members: usize,
    },
    /// A round phase overran its watchdog deadline (virtual ticks); the
    /// round is aborted so the service can move on.
    Watchdog {
        /// Which phase hung (`"acquire"`, `"union"`, `"prepare"`).
        phase: String,
        /// Virtual ticks the phase actually spent.
        spent_ticks: u64,
        /// The configured deadline it blew through.
        deadline_ticks: u64,
    },
    /// An invariant the orchestrator relies on was violated.
    Internal(String),
}

/// Process exit codes shared by the fleet gates (`fleet_demo`, `sim_gate`,
/// `chaos_gate`): `1` stays reserved for violated gate assertions/floors.
pub const EXIT_CONFIG_INVALID: i32 = 2;
/// Exit code for a round that lost quorum.
pub const EXIT_QUORUM_LOST: i32 = 3;
/// Exit code for internal/device/data failures.
pub const EXIT_INTERNAL: i32 = 4;
/// Exit code for a resident service whose membership collapsed below the
/// configured floor.
pub const EXIT_MEMBERSHIP_COLLAPSE: i32 = 5;

impl FleetError {
    /// Convenience constructor for device faults.
    pub fn device(
        device_index: usize,
        device: impl Into<String>,
        kind: DeviceFaultKind,
        message: impl Into<String>,
    ) -> Self {
        FleetError::Device {
            device_index,
            device: device.into(),
            kind,
            message: message.into(),
        }
    }

    /// The process exit code a gate should die with when this error
    /// escapes: config-invalid, quorum-lost, and internal failures are
    /// distinguishable from shell scripts and CI alike.
    pub fn exit_code(&self) -> i32 {
        match self {
            FleetError::Config(_) => EXIT_CONFIG_INVALID,
            FleetError::QuorumLost { .. } => EXIT_QUORUM_LOST,
            FleetError::MembershipCollapse { .. } => EXIT_MEMBERSHIP_COLLAPSE,
            _ => EXIT_INTERNAL,
        }
    }

    /// `true` when the recovery layer may retry the failed attempt
    /// (device-local faults are retryable; config/quorum failures are
    /// not).
    pub fn is_retryable(&self) -> bool {
        matches!(self, FleetError::Device { .. } | FleetError::Data { .. })
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(m) => write!(f, "invalid fleet config: {m}"),
            FleetError::Data { context, source } => write!(f, "{context}: {source}"),
            FleetError::Device {
                device_index,
                device,
                kind,
                message,
            } => write!(
                f,
                "device {device_index} ({device}) {}: {message}",
                kind.label()
            ),
            FleetError::QuorumLost {
                reported,
                required,
                n_devices,
                degraded,
            } => {
                write!(
                    f,
                    "quorum lost: {reported}/{n_devices} devices reported, {required} required"
                )?;
                for (d, why) in degraded {
                    write!(f, "; device {d}: {why}")?;
                }
                Ok(())
            }
            FleetError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            FleetError::MembershipCollapse {
                round,
                members,
                min_members,
            } => write!(
                f,
                "membership collapse at round {round}: {members} member(s) left, \
                 floor is {min_members}"
            ),
            FleetError::Watchdog {
                phase,
                spent_ticks,
                deadline_ticks,
            } => write!(
                f,
                "watchdog: {phase} phase spent {spent_ticks} virtual tick(s), \
                 deadline {deadline_ticks}"
            ),
            FleetError::Internal(m) => write!(f, "internal fleet error: {m}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Data { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<DataError> for FleetError {
    fn from(e: DataError) -> Self {
        FleetError::Data {
            context: "data layer".to_string(),
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = FleetError::device(3, "smart_plug", DeviceFaultKind::CrashMidFit, "injected");
        assert_eq!(
            e.to_string(),
            "device 3 (smart_plug) crash-mid-fit: injected"
        );
        let q = FleetError::QuorumLost {
            reported: 2,
            required: 3,
            n_devices: 4,
            degraded: vec![(1, "crash".into()), (2, "straggler".into())],
        };
        let s = q.to_string();
        assert!(s.contains("2/4 devices reported, 3 required"), "{s}");
        assert!(s.contains("device 1: crash"), "{s}");
    }

    #[test]
    fn source_chain_reaches_the_data_error() {
        let e = FleetError::Data {
            context: "pooling failed".into(),
            source: DataError::UnknownColumn("event".into()),
        };
        let src = e.source().expect("data errors carry a source");
        assert!(src.to_string().contains("event"));
        assert!(FleetError::Config("x".into()).source().is_none());
    }

    #[test]
    fn exit_codes_are_distinct() {
        let config = FleetError::Config("bad".into());
        let quorum = FleetError::QuorumLost {
            reported: 0,
            required: 1,
            n_devices: 1,
            degraded: Vec::new(),
        };
        let internal = FleetError::Internal("bug".into());
        let collapse = FleetError::MembershipCollapse {
            round: 2,
            members: 1,
            min_members: 3,
        };
        let codes = [
            config.exit_code(),
            quorum.exit_code(),
            internal.exit_code(),
            collapse.exit_code(),
        ];
        assert_eq!(
            codes,
            [
                EXIT_CONFIG_INVALID,
                EXIT_QUORUM_LOST,
                EXIT_INTERNAL,
                EXIT_MEMBERSHIP_COLLAPSE
            ]
        );
        assert!(codes.iter().all(|&c| c != 0 && c != 1));
        let unique: std::collections::BTreeSet<i32> = codes.into_iter().collect();
        assert_eq!(unique.len(), codes.len(), "exit codes stay distinct");
    }

    #[test]
    fn service_errors_render_their_numbers() {
        let collapse = FleetError::MembershipCollapse {
            round: 2,
            members: 1,
            min_members: 3,
        };
        let s = collapse.to_string();
        assert!(s.contains("round 2") && s.contains("1 member") && s.contains("floor is 3"));
        let wd = FleetError::Watchdog {
            phase: "acquire".into(),
            spent_ticks: 5000,
            deadline_ticks: 1000,
        };
        let s = wd.to_string();
        assert!(s.contains("acquire") && s.contains("5000") && s.contains("1000"));
        assert!(!wd.is_retryable(), "a hung round is aborted, not retried");
        assert_eq!(wd.exit_code(), EXIT_INTERNAL);
    }

    #[test]
    fn retryability_follows_the_variant() {
        assert!(FleetError::device(0, "d", DeviceFaultKind::Straggler, "slow").is_retryable());
        assert!(!FleetError::Config("bad".into()).is_retryable());
        assert!(!FleetError::Internal("bug".into()).is_retryable());
    }
}
