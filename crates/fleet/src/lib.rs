//! Fleet-scale distributed training orchestration for the KiNETGAN
//! reproduction.
//!
//! The paper's deployment story (§I, §VI) is a *fleet*: many devices, each
//! observing only its own traffic, collaborating on a global NIDS by
//! sharing synthetic — never raw — records. The pre-fleet simulation in
//! `kinet_nids` topped out at a hand-rolled 4-device loop that decoded
//! every shard eagerly and could not emit a class a device had never seen.
//! This crate is the orchestration subsystem that removes both ceilings:
//!
//! * **Streaming shards** — device traffic arrives as fixed-size chunks
//!   ([`kinet_data::stream::ChunkSource`]); a device's decoded working set
//!   is bounded by `chunk + window`, not by the shard, so 32 devices × 5k
//!   rows (and beyond) run in bounded memory.
//! * **Pool-worker scheduling** ([`schedule`]) — device fits run across
//!   the `KINET_THREADS` worker pool, with results merged in device-index
//!   order so reports are bit-identical for every thread count.
//! * **The condition-union protocol** ([`union`]) — devices exchange class
//!   vocabularies (names only), the fleet computes the union, and devices
//!   missing a class receive knowledge-graph-synthesized seed rows so
//!   their generator and its sampling-time condition drawer can emit it;
//!   per-device opt-out and coverage accounting included.
//! * **Reloadable run snapshots** — [`FleetReport`] round-trips through
//!   the vendored serde JSON deserializer, so gates diff fresh runs
//!   against persisted baselines.
//! * **Fault injection and recovery** ([`fault`], [`resilience`]) —
//!   seeded deterministic fault plans (crashes, corrupt streams, poisoned
//!   shares, vocab drops, stragglers on a virtual clock), typed
//!   [`FleetError`]s, bounded retry with capped backoff, share
//!   validation + quarantine, and quorum aggregation so a round degrades
//!   instead of dying with the first bad device.
//! * **The resident service** ([`service`], [`storage`]) — a
//!   [`FleetService`] owns many rounds: durable generation-stamped
//!   snapshots with restart-resume (torn/corrupted records roll back to
//!   the newest intact generation), seeded membership churn with
//!   per-round quorum re-derivation, virtual-tick watchdog deadlines
//!   that abort a round without killing the service, and degraded-mode
//!   serving — flow batches keep being answered from the last committed
//!   generation, stamped with their staleness, while in-flight rounds
//!   abort or fail.
//!
//! `kinet_nids` re-hosts its public `DistributedSim` API on this crate.

pub mod config;
pub mod error;
pub mod fault;
pub mod report;
pub mod resilience;
pub mod schedule;
pub mod service;
pub mod sim;
pub mod storage;
pub mod union;

pub use config::{FleetConfig, ModelKind, SharingPolicy, UnionConfig, WatchdogConfig};
pub use error::{
    DeviceFaultKind, FleetError, EXIT_CONFIG_INVALID, EXIT_INTERNAL, EXIT_MEMBERSHIP_COLLAPSE,
    EXIT_QUORUM_LOST,
};
pub use fault::{
    DeviceFaultSpec, FaultConfig, FaultKind, FaultPlan, FaultRates, StorageFaultKind,
    StorageFaultSpec, VirtualClock,
};
pub use report::{
    DeviceReport, DeviceTrainingDiag, FaultReport, FleetReport, RoundRecord, RoundServingStats,
    RoundVerdict, ServiceReport, StorageFaultReport, UnionReport,
};
pub use resilience::{QuarantineReason, ResilienceConfig};
pub use service::{
    BatchScore, ChurnConfig, ChurnPlan, FleetService, ServiceConfig, ServingConfig, ServingHandle,
    ServingModel,
};
pub use sim::FleetSim;
pub use sim::ResumeOutcome;
pub use storage::{DirStorage, FaultStorage, MemStorage, Snapshot, SnapshotStore, Storage};
