//! Seeded, deterministic fault injection for fleet rounds.
//!
//! Real edge fleets drop out, straggle, and emit garbage as the *normal*
//! case (FLVision-style deployments; NE-GM-GAN's non-exhaustive classes).
//! This module makes those behaviors first-class and — crucially —
//! **reproducible**: a [`FaultPlan`] is a pure function of the fleet seed
//! and a [`FaultConfig`], so a chaotic run is exactly as bit-reproducible
//! across `KINET_THREADS` values as a healthy one. Time never comes from
//! the wall clock: stragglers and retry backoff spend ticks on a
//! [`VirtualClock`], keeping the `wall-clock` lint rule green and the
//! fingerprint stable.
//!
//! Fault taxonomy (DESIGN.md §2.7):
//!
//! | kind | phase | effect |
//! |---|---|---|
//! | `CrashAcquire` | acquire | shard stream dies mid-chunk |
//! | `CrashMidFit` | prepare | generator fit aborts |
//! | `TruncateChunks` | acquire | stream ends early (short shard) |
//! | `CorruptChunks` | acquire | NaN-poisoned numeric cells mid-stream |
//! | `PoisonShareNan` | share | non-finite cells in the released table |
//! | `PoisonShareKg` | share | KG-invalid values in the released table |
//! | `DropVocab` | union | vocab message never arrives |
//! | `DelayVocab` | union | vocab message late by `magnitude` ticks |
//! | `Straggle` | acquire | device stalls `magnitude` virtual ticks |

use crate::error::FleetError;
use kinet_data::stream::ChunkFaultSpec;
use kinet_data::Table;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fault persisting for this many attempts never heals.
pub const PERMANENT: usize = usize::MAX;

/// The injectable fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Shard stream dies partway through acquisition.
    CrashAcquire,
    /// Generator fit aborts partway through training.
    CrashMidFit,
    /// Chunk stream ends early: the device observes a short shard.
    TruncateChunks,
    /// Numeric cells streamed after a cut-off point arrive as NaN.
    CorruptChunks,
    /// The released share carries non-finite numeric cells.
    PoisonShareNan,
    /// The released share carries KG-invalid field values.
    PoisonShareKg,
    /// The condition-union vocabulary message is lost.
    DropVocab,
    /// The vocabulary message arrives `magnitude` virtual ticks late.
    DelayVocab,
    /// The device stalls for `magnitude` virtual ticks per attempt.
    Straggle,
}

impl FaultKind {
    /// Stable label for plans, logs, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::CrashAcquire => "crash-acquire",
            FaultKind::CrashMidFit => "crash-mid-fit",
            FaultKind::TruncateChunks => "truncate-chunks",
            FaultKind::CorruptChunks => "corrupt-chunks",
            FaultKind::PoisonShareNan => "poison-share-nan",
            FaultKind::PoisonShareKg => "poison-share-kg",
            FaultKind::DropVocab => "drop-vocab",
            FaultKind::DelayVocab => "delay-vocab",
            FaultKind::Straggle => "straggle",
        }
    }

    /// Every kind, in declaration order (random-rate derivation walks this
    /// so the RNG consumption order is fixed).
    pub fn all() -> [FaultKind; 9] {
        [
            FaultKind::CrashAcquire,
            FaultKind::CrashMidFit,
            FaultKind::TruncateChunks,
            FaultKind::CorruptChunks,
            FaultKind::PoisonShareNan,
            FaultKind::PoisonShareKg,
            FaultKind::DropVocab,
            FaultKind::DelayVocab,
            FaultKind::Straggle,
        ]
    }
}

/// One explicitly scripted fault.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceFaultSpec {
    /// Target device index.
    pub device_index: usize,
    /// What breaks.
    pub kind: FaultKind,
    /// How many consecutive attempts the fault fires on before healing
    /// ([`PERMANENT`] never heals). Ignored by phase-free faults
    /// (`PoisonShare*`, `DropVocab`, `DelayVocab`), which fire on the
    /// attempt that succeeds.
    pub attempts: usize,
    /// Kind-specific intensity: ticks for `Straggle`/`DelayVocab`, percent
    /// of the shard surviving for `TruncateChunks`, percent streamed clean
    /// before corruption for `CorruptChunks`/`CrashAcquire`. `None` lets
    /// the plan draw one from the seeded RNG.
    pub magnitude: Option<u64>,
}

impl DeviceFaultSpec {
    /// A permanent fault on `device_index`.
    pub fn permanent(device_index: usize, kind: FaultKind) -> Self {
        Self {
            device_index,
            kind,
            attempts: PERMANENT,
            magnitude: None,
        }
    }

    /// A fault that fires on the first `attempts` attempts, then heals —
    /// the transient-fault shape retry exists for.
    pub fn transient(device_index: usize, kind: FaultKind, attempts: usize) -> Self {
        Self {
            device_index,
            kind,
            attempts,
            magnitude: None,
        }
    }

    /// Sets the kind-specific magnitude.
    pub fn with_magnitude(mut self, magnitude: u64) -> Self {
        self.magnitude = Some(magnitude);
        self
    }
}

/// Per-kind probabilities for devices without an explicit spec. Each
/// device/kind pair is resolved once from the plan seed, so the same
/// config and seed always breaks the same devices the same way.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultRates {
    /// Probability of a mid-stream acquisition crash.
    pub crash: f64,
    /// Probability of NaN-corrupted chunks.
    pub corrupt_chunks: f64,
    /// Probability of a NaN-poisoned share.
    pub poison_share: f64,
    /// Probability of a lost vocabulary message.
    pub drop_vocab: f64,
    /// Probability of straggling.
    pub straggle: f64,
}

impl FaultRates {
    fn rate_for(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::CrashAcquire => self.crash,
            FaultKind::CorruptChunks => self.corrupt_chunks,
            FaultKind::PoisonShareNan => self.poison_share,
            FaultKind::DropVocab => self.drop_vocab,
            FaultKind::Straggle => self.straggle,
            // Only spec-addressable: scripted scenarios own these shapes.
            FaultKind::CrashMidFit
            | FaultKind::TruncateChunks
            | FaultKind::PoisonShareKg
            | FaultKind::DelayVocab => 0.0,
        }
    }
}

/// Fault-injection settings for one fleet run. Disabled by default: a
/// default-configured fleet is bit-identical to the pre-fault code path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Master switch.
    pub enabled: bool,
    /// Explicitly scripted faults (chaos-matrix scenarios).
    pub specs: Vec<DeviceFaultSpec>,
    /// Random per-device fault rates for everything not scripted.
    pub rates: FaultRates,
    /// Attempts a randomly drawn fault persists before healing.
    pub transient_attempts: usize,
}

impl FaultConfig {
    /// Scripted faults only.
    pub fn scripted(specs: Vec<DeviceFaultSpec>) -> Self {
        Self {
            enabled: true,
            specs,
            rates: FaultRates::default(),
            transient_attempts: 1,
        }
    }

    /// Validates rates and spec targets against the fleet size.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] naming the first invalid field.
    pub fn validate(&self, n_devices: usize) -> Result<(), FleetError> {
        let rates = [
            ("crash", self.rates.crash),
            ("corrupt_chunks", self.rates.corrupt_chunks),
            ("poison_share", self.rates.poison_share),
            ("drop_vocab", self.rates.drop_vocab),
            ("straggle", self.rates.straggle),
        ];
        for (name, r) in rates {
            if !(0.0..=1.0).contains(&r) {
                return Err(FleetError::Config(format!(
                    "fault rate {name}={r} out of [0, 1]"
                )));
            }
        }
        for spec in &self.specs {
            if spec.device_index >= n_devices {
                return Err(FleetError::Config(format!(
                    "fault spec targets unknown device {}",
                    spec.device_index
                )));
            }
            if spec.attempts == 0 {
                return Err(FleetError::Config(format!(
                    "fault spec for device {} fires on zero attempts",
                    spec.device_index
                )));
            }
        }
        Ok(())
    }
}

/// One fault the plan will inject.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedFault {
    /// What breaks.
    pub kind: FaultKind,
    /// Attempts the fault fires on before healing.
    pub attempts: usize,
    /// Kind-specific intensity (see [`DeviceFaultSpec::magnitude`]).
    pub magnitude: u64,
}

/// Everything that will go wrong on one device.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DevicePlan {
    faults: Vec<PlannedFault>,
}

impl DevicePlan {
    /// `true` when `kind` fires on (zero-based) `attempt`.
    pub fn fires(&self, kind: FaultKind, attempt: usize) -> bool {
        self.faults
            .iter()
            .any(|f| f.kind == kind && attempt < f.attempts)
    }

    /// The magnitude of `kind`, when planned (regardless of attempt).
    pub fn magnitude(&self, kind: FaultKind) -> Option<u64> {
        self.faults
            .iter()
            .find(|f| f.kind == kind)
            .map(|f| f.magnitude)
    }

    /// The planned faults.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// The chunk-stream fault wrapper spec for one acquisition `attempt`
    /// over a shard of `rows` rows. Magnitudes are percentages of the
    /// shard: `CrashAcquire`/`CorruptChunks` magnitude is the share
    /// streamed clean before the fault strikes, `TruncateChunks` magnitude
    /// is the share that survives. A healthy attempt yields a clean
    /// (pass-through) spec.
    pub fn fault_spec_for(&self, attempt: usize, rows: usize) -> ChunkFaultSpec {
        let offset = |magnitude: Option<u64>| {
            // At least one clean row so the failure is observably
            // mid-stream, never a trivially empty source.
            (rows * magnitude.unwrap_or(50).min(100) as usize / 100).max(1)
        };
        let mut spec = ChunkFaultSpec::default();
        if self.fires(FaultKind::CrashAcquire, attempt) {
            spec.fail_after = Some(offset(self.magnitude(FaultKind::CrashAcquire)));
        }
        if self.fires(FaultKind::TruncateChunks, attempt) {
            spec.truncate_after = Some(offset(self.magnitude(FaultKind::TruncateChunks)));
        }
        if self.fires(FaultKind::CorruptChunks, attempt) {
            spec.poison_from = Some(offset(self.magnitude(FaultKind::CorruptChunks)));
        }
        spec
    }

    /// `true` when nothing is planned for this device.
    pub fn is_healthy(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The deterministic fault schedule of one run: which device breaks, how,
/// on which attempts, and how hard. Derived once from
/// `(seed, n_devices, FaultConfig)` before any device task starts, so the
/// plan is identical for every thread count and every re-run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    devices: Vec<DevicePlan>,
}

/// Domain-separation salt for fault randomness (fault draws must never
/// perturb the data/model RNG streams, or a fault-free run with
/// `enabled = true` would diverge from one with `enabled = false`).
const FAULT_SALT: u64 = 0x0fa1_7000;

impl FaultPlan {
    /// Derives the plan. Deterministic: same inputs, same plan.
    pub fn derive(seed: u64, n_devices: usize, cfg: &FaultConfig) -> Self {
        let mut devices = vec![DevicePlan::default(); n_devices];
        if !cfg.enabled {
            return Self { devices };
        }
        for (d, plan) in devices.iter_mut().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(seed ^ FAULT_SALT ^ (d as u64).wrapping_mul(0x9e37_79b9));
            // Scripted faults first, in spec order.
            for spec in cfg.specs.iter().filter(|s| s.device_index == d) {
                let magnitude = spec
                    .magnitude
                    .unwrap_or_else(|| default_magnitude(spec.kind, &mut rng));
                plan.faults.push(PlannedFault {
                    kind: spec.kind,
                    attempts: spec.attempts,
                    magnitude,
                });
            }
            // Random-rate faults for kinds not already scripted. Every
            // device consumes the RNG identically (one draw per kind, a
            // magnitude draw only when it fires), so adding a spec for one
            // device never reshuffles another device's draws.
            for kind in FaultKind::all() {
                let rate = cfg.rates.rate_for(kind);
                let roll = rng.random_range(0.0..1.0f64);
                if plan.faults.iter().any(|f| f.kind == kind) {
                    continue;
                }
                if rate > 0.0 && roll < rate {
                    let magnitude = default_magnitude(kind, &mut rng);
                    plan.faults.push(PlannedFault {
                        kind,
                        attempts: cfg.transient_attempts.max(1),
                        magnitude,
                    });
                }
            }
        }
        Self { devices }
    }

    /// The plan for device `d`.
    pub fn device(&self, d: usize) -> &DevicePlan {
        &self.devices[d]
    }

    /// `true` when no device has any fault planned.
    pub fn is_trivial(&self) -> bool {
        self.devices.iter().all(DevicePlan::is_healthy)
    }

    /// Canonical one-line-per-fault rendering for the report's injected
    /// list (sorted by device, then plan order).
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (d, plan) in self.devices.iter().enumerate() {
            for f in &plan.faults {
                let persistence = if f.attempts == PERMANENT {
                    "permanent".to_string()
                } else {
                    format!("{} attempt(s)", f.attempts)
                };
                out.push(format!(
                    "device {d}: {} ({persistence}, magnitude {})",
                    f.kind.label(),
                    f.magnitude
                ));
            }
        }
        out
    }
}

/// Seeded default magnitudes: straggles draw around the default straggler
/// budget (some absorb, some trip), truncation keeps 30–80% of the shard,
/// corruption/crash strike after 20–70% streamed clean.
fn default_magnitude(kind: FaultKind, rng: &mut StdRng) -> u64 {
    match kind {
        FaultKind::Straggle | FaultKind::DelayVocab => rng.random_range(500..4000u64),
        FaultKind::TruncateChunks => rng.random_range(30..80u64),
        FaultKind::CorruptChunks | FaultKind::CrashAcquire => rng.random_range(20..70u64),
        _ => 0,
    }
}

/// The injectable storage-layer fault classes, targeting the snapshot
/// store's `write_atomic` path (DESIGN.md §2.8). These live in their own
/// enum — not [`FaultKind`] — because the rate-rolled device plan walks
/// [`FaultKind::all`] in declaration order and extending that array would
/// silently reshuffle every existing seeded plan's RNG consumption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// Only a prefix of the record reaches the medium (torn/truncated
    /// write): the checksum no longer matches.
    TornWrite,
    /// One bit of the stored record flips in place.
    BitFlip,
    /// The rename never becomes durable but the previous object survives:
    /// the store silently retains the *stale generation*.
    StaleWrite,
    /// The rename is lost after the old object was already unlinked: the
    /// object vanishes entirely (fsync-lost rename).
    LostWrite,
}

impl StorageFaultKind {
    /// Stable label for plans, logs, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            StorageFaultKind::TornWrite => "torn-write",
            StorageFaultKind::BitFlip => "bit-flip",
            StorageFaultKind::StaleWrite => "stale-write",
            StorageFaultKind::LostWrite => "lost-write",
        }
    }

    /// Every kind, in declaration order (proptests walk this).
    pub fn all() -> [StorageFaultKind; 4] {
        [
            StorageFaultKind::TornWrite,
            StorageFaultKind::BitFlip,
            StorageFaultKind::StaleWrite,
            StorageFaultKind::LostWrite,
        ]
    }
}

/// One scripted storage fault: the `write_index`-th `write_atomic` call
/// (0-based, counted across the store's lifetime) is sabotaged. All
/// storage faults are *silent* — the write reports success and the damage
/// is only discoverable at load time, which is exactly what recovery must
/// survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageFaultSpec {
    /// Which write breaks.
    pub write_index: usize,
    /// How it breaks.
    pub kind: StorageFaultKind,
    /// Kind-specific intensity: percent of the record surviving for
    /// [`StorageFaultKind::TornWrite`], byte offset (mod record length)
    /// for [`StorageFaultKind::BitFlip`]. Ignored by the others.
    pub magnitude: u64,
}

impl StorageFaultSpec {
    /// A fault on write `write_index` with the default magnitude (half the
    /// record torn away; bit flip mid-record).
    pub fn new(write_index: usize, kind: StorageFaultKind) -> Self {
        Self {
            write_index,
            kind,
            magnitude: 50,
        }
    }

    /// Sets the kind-specific magnitude.
    pub fn with_magnitude(mut self, magnitude: u64) -> Self {
        self.magnitude = magnitude;
        self
    }
}

/// How a share gets poisoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoisonKind {
    /// Non-finite numeric cells (NaN), the classic diverged-generator
    /// signature.
    NonFinite,
    /// Finite but wildly out-of-range numeric values that violate the
    /// knowledge graph's field constraints.
    KgInvalid,
}

/// Poisons roughly half of `share`'s rows in place, deterministically from
/// `seed`: every numeric cell of an afflicted row becomes NaN
/// ([`PoisonKind::NonFinite`]) or an absurd out-of-range constant
/// ([`PoisonKind::KgInvalid`]). No-op on tables without numeric columns.
pub fn poison_share(share: &mut Table, kind: PoisonKind, seed: u64) {
    let numeric: Vec<usize> = share
        .schema()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind() == kinet_data::ColumnKind::Continuous)
        .map(|(i, _)| i)
        .collect();
    if numeric.is_empty() || share.is_empty() {
        return;
    }
    let poison = match kind {
        PoisonKind::NonFinite => f64::NAN,
        PoisonKind::KgInvalid => -31337.0,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
    for r in 0..share.n_rows() {
        if rng.random_range(0.0..1.0f64) < 0.5 {
            let mut row = share.row(r);
            for &c in &numeric {
                row[c] = kinet_data::Value::num(poison);
            }
            share
                .set_row(r, row)
                .expect("rewriting a row with its own schema cannot fail");
        }
    }
}

/// A deterministic, shareable tick counter — the run's only notion of
/// time. Devices add their fault/backoff ticks; the total is a sum of
/// per-device deterministic contributions, hence independent of worker
/// interleaving and safe to fingerprint.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spends `ticks` of simulated time.
    pub fn advance(&self, ticks: u64) {
        self.0.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Total ticks spent so far.
    pub fn total(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinet_data::{ColumnKind, ColumnMeta, Schema, Value};

    fn cfg_with_rates(rates: FaultRates) -> FaultConfig {
        FaultConfig {
            enabled: true,
            specs: Vec::new(),
            rates,
            transient_attempts: 1,
        }
    }

    #[test]
    fn disabled_config_plans_nothing() {
        let plan = FaultPlan::derive(42, 8, &FaultConfig::default());
        assert!(plan.is_trivial());
        assert!(plan.describe().is_empty());
    }

    #[test]
    fn plan_is_deterministic_in_seed_and_config() {
        let cfg = cfg_with_rates(FaultRates {
            crash: 0.5,
            corrupt_chunks: 0.3,
            poison_share: 0.3,
            drop_vocab: 0.2,
            straggle: 0.4,
        });
        let a = FaultPlan::derive(7, 16, &cfg);
        let b = FaultPlan::derive(7, 16, &cfg);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::derive(8, 16, &cfg);
        assert_ne!(a, c, "different seed, different plan");
        assert!(!a.is_trivial(), "these rates break someone in 16 devices");
    }

    #[test]
    fn scripted_specs_override_rates_per_kind() {
        let mut cfg = cfg_with_rates(FaultRates {
            crash: 1.0,
            ..FaultRates::default()
        });
        cfg.specs =
            vec![DeviceFaultSpec::transient(2, FaultKind::CrashAcquire, 2).with_magnitude(40)];
        let plan = FaultPlan::derive(1, 4, &cfg);
        // Device 2 keeps the scripted shape, not a second random crash.
        let crashes: Vec<&PlannedFault> = plan
            .device(2)
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::CrashAcquire)
            .collect();
        assert_eq!(crashes.len(), 1);
        assert_eq!(crashes[0].attempts, 2);
        assert_eq!(crashes[0].magnitude, 40);
        // Rate 1.0 crashes every other device too.
        for d in [0, 1, 3] {
            assert!(
                plan.device(d).fires(FaultKind::CrashAcquire, 0),
                "device {d}"
            );
        }
    }

    #[test]
    fn transient_faults_heal_after_their_attempts() {
        let cfg =
            FaultConfig::scripted(vec![DeviceFaultSpec::transient(0, FaultKind::Straggle, 2)]);
        let plan = FaultPlan::derive(3, 1, &cfg);
        let dp = plan.device(0);
        assert!(dp.fires(FaultKind::Straggle, 0));
        assert!(dp.fires(FaultKind::Straggle, 1));
        assert!(!dp.fires(FaultKind::Straggle, 2), "healed on attempt 2");
        assert!(!dp.fires(FaultKind::CrashMidFit, 0), "unplanned kind");
        let permanent = FaultPlan::derive(
            3,
            1,
            &FaultConfig::scripted(vec![DeviceFaultSpec::permanent(0, FaultKind::CrashMidFit)]),
        );
        assert!(permanent.device(0).fires(FaultKind::CrashMidFit, 999));
    }

    #[test]
    fn validation_rejects_bad_rates_and_targets() {
        let mut cfg = cfg_with_rates(FaultRates {
            crash: 1.5,
            ..FaultRates::default()
        });
        assert!(cfg.validate(4).is_err());
        cfg.rates.crash = 0.5;
        assert!(cfg.validate(4).is_ok());
        cfg.specs = vec![DeviceFaultSpec::permanent(9, FaultKind::DropVocab)];
        assert!(cfg.validate(4).is_err(), "unknown device");
        cfg.specs = vec![DeviceFaultSpec::transient(1, FaultKind::DropVocab, 0)];
        assert!(cfg.validate(4).is_err(), "zero attempts");
    }

    fn share() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::categorical("event"),
            ColumnMeta::continuous("dst_port"),
            ColumnMeta::continuous("bytes"),
        ]);
        Table::from_rows(
            schema,
            (0..40)
                .map(|i| {
                    vec![
                        Value::cat("heartbeat"),
                        Value::num(8080.0),
                        Value::num(i as f64),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn poison_nan_hits_numeric_cells_deterministically() {
        let mut a = share();
        let mut b = share();
        poison_share(&mut a, PoisonKind::NonFinite, 5);
        poison_share(&mut b, PoisonKind::NonFinite, 5);
        let nan_rows = |t: &Table| {
            t.num_column("dst_port")
                .unwrap()
                .iter()
                .filter(|v| v.is_nan())
                .count()
        };
        assert_eq!(nan_rows(&a), nan_rows(&b), "deterministic poisoning");
        let hit = nan_rows(&a);
        assert!(hit > 5 && hit < 40, "roughly half the rows: {hit}");
        // The categorical column is untouched.
        assert!(a
            .cat_column("event")
            .unwrap()
            .iter()
            .all(|e| e == "heartbeat"));
        let mut c = share();
        poison_share(&mut c, PoisonKind::KgInvalid, 5);
        assert!(c
            .num_column("dst_port")
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
        assert!(c
            .num_column("dst_port")
            .unwrap()
            .iter()
            .any(|&v| v == -31337.0));
    }

    #[test]
    fn virtual_clock_sums_across_clones() {
        let clock = VirtualClock::new();
        let other = clock.clone();
        clock.advance(100);
        other.advance(23);
        assert_eq!(clock.total(), 123);
        assert_eq!(other.total(), 123);
    }

    #[test]
    fn schema_kinds_used_by_poisoning_exist() {
        // Guard the ColumnKind contract poison_share relies on.
        let t = share();
        let kinds: Vec<ColumnKind> = t.schema().iter().map(|c| c.kind()).collect();
        assert_eq!(kinds[0], ColumnKind::Categorical);
        assert_eq!(kinds[1], ColumnKind::Continuous);
    }
}
