//! Fleet run configuration: sharing policies, scale knobs, memory bounds,
//! the condition-union protocol settings, and the fault/recovery policies.

use crate::error::FleetError;
use crate::fault::FaultConfig;
use crate::resilience::ResilienceConfig;
use kinet_data::sampler::BalanceMode;

/// Which synthesizer devices use under [`SharingPolicy::Synthetic`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// The paper's knowledge-infused model.
    KinetGan,
    /// The CTGAN baseline.
    CtGan,
    /// The TVAE baseline.
    Tvae,
}

impl ModelKind {
    /// Display name used in policy labels.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::KinetGan => "KiNETGAN",
            ModelKind::CtGan => "CTGAN",
            ModelKind::Tvae => "TVAE",
        }
    }
}

/// What each device ships to the aggregator.
#[derive(Clone, Debug, PartialEq)]
pub enum SharingPolicy {
    /// Raw local records (no privacy).
    Raw,
    /// Synthetic records from a locally trained generator.
    Synthetic(ModelKind),
    /// Nothing; devices train and evaluate local detectors only.
    LocalOnly,
}

impl SharingPolicy {
    /// Report label (`"raw"`, `"synthetic:KiNETGAN"`, `"local-only"`).
    pub fn label(&self) -> String {
        match self {
            SharingPolicy::Raw => "raw".to_string(),
            SharingPolicy::Synthetic(m) => format!("synthetic:{}", m.label()),
            SharingPolicy::LocalOnly => "local-only".to_string(),
        }
    }
}

/// The condition-union protocol settings (§VI-flavored fleet extension):
/// devices exchange their observed event-class vocabularies, the fleet
/// computes the union, and devices missing a class receive knowledge-graph
/// synthesized seed rows for it so their generator — and its sampling-time
/// condition drawer — can emit the class.
#[derive(Clone, Debug, PartialEq)]
pub struct UnionConfig {
    /// Master switch. Off reproduces the pre-fleet behavior: a device
    /// whose shard misses a class can never emit it.
    pub enabled: bool,
    /// KG-synthesized seed rows appended per missing class.
    pub seeds_per_class: usize,
    /// Device indices that decline union requests (privacy or capability
    /// policy); they train on their own shard only.
    pub opt_out: Vec<usize>,
    /// Sampling-time condition balance applied to devices that received
    /// union seeds, so a class backed by a handful of seed rows is
    /// actually drawn at release time. Devices with full local coverage
    /// keep the model default.
    pub sample_balance: BalanceMode,
}

impl Default for UnionConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            seeds_per_class: 16,
            opt_out: Vec::new(),
            sample_balance: BalanceMode::LogFreq,
        }
    }
}

impl UnionConfig {
    /// The protocol switched on with default seeding.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// `true` when device `d` participates in union seeding.
    pub fn participates(&self, device_index: usize) -> bool {
        self.enabled && !self.opt_out.contains(&device_index)
    }
}

/// Per-phase virtual-tick deadlines for one fleet round. Disabled by
/// default — the pre-watchdog behavior. When enabled, a phase whose
/// devices burn more virtual ticks than its deadline (stragglers, retry
/// backoff, vocab delays) aborts the round with
/// [`FleetError::Watchdog`](crate::error::FleetError::Watchdog) instead of
/// waiting forever; the resident service records the abort and proceeds.
/// Deadlines are *virtual* ticks on the
/// [`VirtualClock`](crate::fault::VirtualClock), never wall time, so a
/// watchdog verdict is bit-reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch.
    pub enabled: bool,
    /// Deadline for the acquire phase (streaming + stalls + backoff).
    pub acquire_deadline_ticks: u64,
    /// Deadline for the union phase (vocab delays).
    pub union_deadline_ticks: u64,
    /// Deadline for the prepare phase (fit retries + backoff).
    pub prepare_deadline_ticks: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            acquire_deadline_ticks: 10_000,
            union_deadline_ticks: 10_000,
            prepare_deadline_ticks: 10_000,
        }
    }
}

impl WatchdogConfig {
    /// An armed watchdog with uniform per-phase deadlines.
    pub fn armed(deadline_ticks: u64) -> Self {
        Self {
            enabled: true,
            acquire_deadline_ticks: deadline_ticks,
            union_deadline_ticks: deadline_ticks,
            prepare_deadline_ticks: deadline_ticks,
        }
    }
}

/// Configuration of one fleet run over the lab IoT deployment.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of device nodes (device identities cycle through the lab's
    /// four traffic-originating devices).
    pub n_devices: usize,
    /// Local records observed per device.
    pub rows_per_device: usize,
    /// Rows in the held-out global test stream.
    pub test_records: usize,
    /// Sharing policy under test.
    pub policy: SharingPolicy,
    /// Generator training epochs for synthetic sharing.
    pub model_epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Rows per generation chunk: the unit of decoded-rows residency on
    /// the streaming path.
    pub chunk_rows: usize,
    /// Decoded-rows bound for the per-device working set (training table
    /// for synthetic sharing, local detector data for local-only, shipped
    /// rows for raw sharing). `None` keeps the whole shard decoded — the
    /// pre-fleet behavior, appropriate for small shards.
    pub device_window: Option<usize>,
    /// Synthetic release size per device. `None` matches the shard size
    /// (the pre-fleet behavior).
    pub release_rows: Option<usize>,
    /// Fraction of records that are attacks (default 0.08, the lab mix).
    pub attack_fraction: f64,
    /// Per-device attack-fraction overrides, for crafted class-skewed
    /// splits (`(device_index, fraction)`).
    pub device_attack_fraction: Vec<(usize, f64)>,
    /// Condition-union protocol settings.
    pub union: UnionConfig,
    /// Fault-injection plan settings (off by default).
    pub fault: FaultConfig,
    /// Recovery policy: retry, quarantine, and quorum knobs. Defaults
    /// reproduce the pre-recovery behavior (full quorum, no floor).
    pub resilience: ResilienceConfig,
    /// Stable member identities behind the device slots, for resident
    /// multi-round fleets with churn: slot `d`'s data seed and device
    /// identity derive from `member_ids[d]`, so a member keeps its shard
    /// stream across rounds no matter which slot churn leaves it in.
    /// Empty (the default) means slot index = member id — bit-identical to
    /// the pre-service behavior.
    pub member_ids: Vec<u64>,
    /// Per-phase round watchdog (disabled by default).
    pub watchdog: WatchdogConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_devices: 4,
            rows_per_device: 800,
            test_records: 1200,
            policy: SharingPolicy::Synthetic(ModelKind::KinetGan),
            // The small-shard budget the Table-1 quality floors were
            // measured at (DESIGN.md §2.4).
            model_epochs: 60,
            seed: 42,
            chunk_rows: 1024,
            device_window: None,
            release_rows: None,
            attack_fraction: 0.08,
            device_attack_fraction: Vec::new(),
            union: UnionConfig::default(),
            fault: FaultConfig::default(),
            resilience: ResilienceConfig::default(),
            member_ids: Vec::new(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl FleetConfig {
    /// A fast configuration for tests.
    pub fn fast(policy: SharingPolicy) -> Self {
        Self {
            n_devices: 2,
            rows_per_device: 250,
            test_records: 400,
            model_epochs: 2,
            policy,
            ..Self::default()
        }
    }

    /// The stable member identity behind device slot `d` (slot index when
    /// no explicit membership is configured).
    pub fn member_id(&self, device_index: usize) -> u64 {
        self.member_ids
            .get(device_index)
            .copied()
            .unwrap_or(device_index as u64)
    }

    /// The attack fraction device `d` observes.
    pub fn attack_fraction_for(&self, device_index: usize) -> f64 {
        self.device_attack_fraction
            .iter()
            .find(|(d, _)| *d == device_index)
            .map(|(_, f)| *f)
            .unwrap_or(self.attack_fraction)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bad = |m: &str| Err(FleetError::Config(m.to_string()));
        if self.n_devices == 0 {
            return bad("n_devices must be positive");
        }
        if self.rows_per_device == 0 {
            return bad("rows_per_device must be positive");
        }
        if self.test_records == 0 {
            return bad("test_records must be positive");
        }
        if self.chunk_rows == 0 {
            return bad("chunk_rows must be positive");
        }
        if self.device_window == Some(0) {
            return bad("device_window must be positive when set");
        }
        if self.release_rows == Some(0) {
            return bad("release_rows must be positive when set");
        }
        if !(0.0..=1.0).contains(&self.attack_fraction) {
            return bad("attack_fraction must be in [0, 1]");
        }
        for (d, f) in &self.device_attack_fraction {
            if *d >= self.n_devices {
                return Err(FleetError::Config(format!(
                    "attack-fraction override for unknown device {d}"
                )));
            }
            if !(0.0..=1.0).contains(f) {
                return Err(FleetError::Config(format!(
                    "device {d} attack fraction {f} out of [0, 1]"
                )));
            }
        }
        if self.union.enabled && self.union.seeds_per_class == 0 {
            return bad("union.seeds_per_class must be positive when enabled");
        }
        if !self.member_ids.is_empty() {
            if self.member_ids.len() != self.n_devices {
                return Err(FleetError::Config(format!(
                    "member_ids has {} entries for {} devices",
                    self.member_ids.len(),
                    self.n_devices
                )));
            }
            let unique: std::collections::BTreeSet<u64> = self.member_ids.iter().copied().collect();
            if unique.len() != self.member_ids.len() {
                return bad("member_ids must be unique");
            }
        }
        if self.watchdog.enabled
            && (self.watchdog.acquire_deadline_ticks == 0
                || self.watchdog.union_deadline_ticks == 0
                || self.watchdog.prepare_deadline_ticks == 0)
        {
            return bad("watchdog deadlines must be positive when armed");
        }
        self.fault.validate(self.n_devices)?;
        self.resilience.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SharingPolicy::Raw.label(), "raw");
        assert_eq!(
            SharingPolicy::Synthetic(ModelKind::KinetGan).label(),
            "synthetic:KiNETGAN"
        );
        assert_eq!(SharingPolicy::LocalOnly.label(), "local-only");
        assert_eq!(ModelKind::CtGan.label(), "CTGAN");
        assert_eq!(ModelKind::Tvae.label(), "TVAE");
    }

    #[test]
    fn defaults_validate() {
        assert!(FleetConfig::default().validate().is_ok());
        assert!(FleetConfig::fast(SharingPolicy::Raw).validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad = |f: fn(&mut FleetConfig)| {
            let mut c = FleetConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(bad(|c| c.n_devices = 0).is_err());
        assert!(bad(|c| c.rows_per_device = 0).is_err());
        assert!(bad(|c| c.chunk_rows = 0).is_err());
        assert!(bad(|c| c.device_window = Some(0)).is_err());
        assert!(bad(|c| c.attack_fraction = 1.5).is_err());
        assert!(bad(|c| c.device_attack_fraction = vec![(9, 0.5)]).is_err());
        assert!(bad(|c| {
            c.union = UnionConfig::enabled();
            c.union.seeds_per_class = 0;
        })
        .is_err());
        assert!(bad(|c| c.resilience.quorum_frac = 2.0).is_err());
        assert!(bad(|c| {
            c.fault.enabled = true;
            c.fault.rates.crash = -0.5;
        })
        .is_err());
    }

    #[test]
    fn config_errors_are_typed_and_exit_as_config_invalid() {
        let c = FleetConfig {
            n_devices: 0,
            ..FleetConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert_eq!(err.exit_code(), crate::error::EXIT_CONFIG_INVALID);
        assert!(err.to_string().contains("n_devices"));
    }

    #[test]
    fn per_device_attack_fraction_overrides() {
        let cfg = FleetConfig {
            device_attack_fraction: vec![(1, 0.0), (2, 0.5)],
            ..FleetConfig::default()
        };
        assert_eq!(cfg.attack_fraction_for(0), 0.08);
        assert_eq!(cfg.attack_fraction_for(1), 0.0);
        assert_eq!(cfg.attack_fraction_for(2), 0.5);
    }

    #[test]
    fn member_ids_default_to_slot_indices() {
        let cfg = FleetConfig::default();
        assert_eq!(cfg.member_id(0), 0);
        assert_eq!(cfg.member_id(3), 3);
        let cfg = FleetConfig {
            n_devices: 2,
            member_ids: vec![7, 2],
            ..FleetConfig::default()
        };
        assert_eq!(cfg.member_id(0), 7);
        assert_eq!(cfg.member_id(1), 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn member_and_watchdog_validation() {
        let bad = |f: fn(&mut FleetConfig)| {
            let mut c = FleetConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(bad(|c| c.member_ids = vec![1, 2]).is_err(), "wrong arity");
        assert!(
            bad(|c| c.member_ids = vec![1, 2, 2, 3]).is_err(),
            "duplicate ids"
        );
        assert!(bad(|c| {
            c.watchdog = WatchdogConfig::armed(0);
        })
        .is_err());
        assert!(FleetConfig {
            watchdog: WatchdogConfig::armed(500),
            ..FleetConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn union_participation_respects_opt_out() {
        let mut u = UnionConfig::enabled();
        u.opt_out = vec![1];
        assert!(u.participates(0));
        assert!(!u.participates(1));
        assert!(!UnionConfig::default().participates(0), "off by default");
    }
}
