//! The fleet orchestrator: streaming shard acquisition, pool-worker device
//! scheduling, the condition-union exchange, and quorum aggregation.
//!
//! A run has three phases:
//!
//! 1. **Acquire** (parallel): every device streams its shard chunk-by-chunk
//!    ([`kinet_data::stream`]) into a bounded working window, publishing
//!    its observed class vocabulary. No device ever holds more decoded
//!    rows than `chunk + window`.
//! 2. **Union** (aggregator): surviving class vocabularies fold into their
//!    union; participating devices missing a class receive KG-synthesized
//!    seed rows for it ([`crate::union`]).
//! 3. **Prepare & pool** (parallel, then aggregator): devices train/sample
//!    (or ship raw windows), results are merged **in device-index order**
//!    (completion order is scheduling noise), shares are validated and
//!    quarantined where bad, and the pooled table is scored and evaluated
//!    against a held-out global stream once quorum is met.
//!
//! Faults are injected from the seeded [`FaultPlan`] and recovered through
//! the [`crate::resilience`] policy: failed device attempts retry with
//! capped backoff on the virtual clock, bad shares are quarantined before
//! pooling, and the round commits when ≥ `quorum_frac` devices report —
//! degraded devices are recorded, not fatal. Every random draw derives
//! from `seed` and the device index, and all waiting is virtual ticks, so
//! the full [`FleetReport`] fingerprint is bit-identical for every
//! `KINET_THREADS` value even under a non-trivial fault plan.

use crate::config::{FleetConfig, ModelKind, SharingPolicy};
use crate::error::{DeviceFaultKind, FleetError};
use crate::fault::{poison_share, FaultKind, FaultPlan, PoisonKind, VirtualClock};
use crate::report::{
    DeviceReport, DeviceTrainingDiag, FaultReport, FleetReport, UnionReport, DEVICE_OK,
};
use crate::resilience::{self, backoff_ticks, RoundCheckpoint};
use crate::{schedule, union};
use kinet_baselines::{common::BaselineConfig, CtGan, Tvae};
use kinet_data::stream::{
    ChunkFaultSpec, FaultedSource, PeakRows, Reservoir, StreamValidity, StreamingShard,
};
use kinet_data::synth::TabularSynthesizer;
use kinet_data::{DataError, Table};
use kinet_datasets::lab::{LabSimConfig, LabSimulator};
use kinet_eval::utility::evaluate_nids;
use kinet_obs::metrics::{
    FLEET_ACQUIRE_TICKS, FLEET_PREPARE_TICKS, FLEET_QUARANTINES, FLEET_RETRIES, FLEET_UNION_TICKS,
};
use kinet_obs::{event, kv, span_close, span_open, with_scope, Scope};
use kinetgan::{KinetGan, KinetGanConfig};
use std::collections::BTreeSet;
use std::path::Path;
use std::time::Instant;

const DEVICE_CYCLE: [&str; 4] = ["blink_camera", "smart_plug", "motion_sensor", "tag_manager"];

/// Everything phase 1 learns about a device before any training happens.
struct DeviceStage {
    device: String,
    local: Table,
    vocab: BTreeSet<String>,
    shard_rows: usize,
}

/// A device's phase-3 product.
struct DeviceOutcome {
    share: Option<Table>,
    prep_ms: f64,
    local_eval: Option<(f64, f64)>,
    seeded_classes: Vec<String>,
    diag: Option<DeviceTrainingDiag>,
}

/// How [`FleetSim::run_or_resume`] obtained its report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// No usable checkpoint existed (absent, or another configuration's);
    /// the round ran fresh.
    Fresh,
    /// The checkpoint was intact and matched; the round was not re-run.
    Resumed,
    /// A checkpoint existed but failed verification; the round re-ran and
    /// the corruption was recorded in the report's observed-fault log.
    RecoveredCorrupt(String),
}

/// One device task's settled result plus its recovery accounting.
struct Attempted<T> {
    result: Result<T, FleetError>,
    retries: usize,
    observed: Vec<String>,
}

/// The fleet simulator over the lab IoT deployment.
#[derive(Clone, Debug)]
pub struct FleetSim {
    config: FleetConfig,
}

impl FleetSim {
    /// Creates a simulator.
    pub fn new(config: FleetConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the fleet end to end and reports metrics.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] for invalid configuration,
    /// [`FleetError::QuorumLost`] when fewer devices report than the
    /// resilience policy requires, and [`FleetError::Data`] /
    /// [`FleetError::Internal`] for aggregator-side failures. Per-device
    /// faults are retried and degraded, not returned — they surface in
    /// [`FleetReport::fault`].
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        self.run_detailed().map(|(report, _)| report)
    }

    /// [`FleetSim::run`], additionally returning the pooled table the
    /// global detector was trained on (`None` for local-only policies).
    /// The resident service feeds it to the serving-model trainer so the
    /// detection path scores against exactly the committed pool.
    ///
    /// # Errors
    ///
    /// Same contract as [`FleetSim::run`], plus [`FleetError::Watchdog`]
    /// when an armed [`crate::config::WatchdogConfig`] deadline is blown.
    pub fn run_detailed(&self) -> Result<(FleetReport, Option<Table>), FleetError> {
        // The whole round runs under the orchestrator scope; when the
        // resident service already opened it, this is a continuation and
        // sequence numbers keep climbing across rounds.
        with_scope(Scope::Orch, || self.run_detailed_inner())
    }

    fn run_detailed_inner(&self) -> Result<(FleetReport, Option<Table>), FleetError> {
        let cfg = &self.config;
        cfg.validate()?;
        // kinet-lint: allow(wall-clock) — feeds only timing fields that deterministic_fingerprint() excludes
        // kinet-lint: allow(determinism-taint) — same contract: the reading lands in excluded timing fields only
        let start = Instant::now();
        let peak = PeakRows::new();
        let plan = FaultPlan::derive(cfg.seed, cfg.n_devices, &cfg.fault);
        let clock = VirtualClock::new();

        // Global held-out stream for evaluation (what the deployed NIDS
        // will face). Bounded by `test_records`, so generated eagerly.
        let test = LabSimulator::new(LabSimConfig {
            n_records: cfg.test_records,
            seed: cfg.seed ^ 0xfeed,
            ..LabSimConfig::default()
        })
        .generate()
        .map_err(|e| FleetError::Data {
            context: "test stream generation failed".into(),
            source: e,
        })?;

        // ---- phase 1: acquire shards (streaming, parallel, retried) ----
        // Timestamp discipline: device closures never read the shared
        // clock (the reading would depend on sibling progress and break
        // cross-thread-count determinism); the orchestrator stamps spans
        // at the phase barriers, where the clock value is settled.
        span_open("fleet.round", 0, &[kv("devices", cfg.n_devices as u64)]);
        span_open("fleet.acquire", 0, &[]);
        let acquired: Vec<Attempted<DeviceStage>> =
            schedule::run_indexed_settled(cfg.n_devices, |d| {
                with_scope(Scope::Device(d as u32), || {
                    self.acquire_with_recovery(d, &peak, &plan, &clock)
                })
            });
        let acquire_ticks = clock.total();
        let acquired_rows: u64 = acquired
            .iter()
            .filter_map(|a| a.result.as_ref().ok())
            .map(|s| s.shard_rows as u64)
            .sum();
        FLEET_ACQUIRE_TICKS.incr(acquire_ticks);
        span_close(
            "fleet.acquire",
            acquire_ticks,
            &[kv("ticks", acquire_ticks), kv("rows", acquired_rows)],
        );
        Self::check_watchdog(
            cfg,
            "acquire",
            acquire_ticks,
            cfg.watchdog.acquire_deadline_ticks,
        )?;

        // ---- phase 2: condition-union exchange over surviving vocabs ----
        span_open("fleet.union", acquire_ticks, &[]);
        let mut union_events: Vec<Vec<String>> = vec![Vec::new(); cfg.n_devices];
        let union_classes = if cfg.union.enabled {
            let mut vocabs = Vec::new();
            for (d, a) in acquired.iter().enumerate() {
                let Ok(stage) = &a.result else { continue };
                let dp = plan.device(d);
                if dp.fires(FaultKind::DropVocab, 0) {
                    union_events[d].push(format!(
                        "device {d} ({}) drop-vocab: vocabulary message lost; union falls back \
                         to surviving vocabs",
                        stage.device
                    ));
                    continue;
                }
                if dp.fires(FaultKind::DelayVocab, 0) {
                    let delay = dp.magnitude(FaultKind::DelayVocab).unwrap_or(0);
                    let budget = cfg.resilience.vocab_wait_budget_ticks;
                    clock.advance(delay.min(budget));
                    if delay > budget {
                        union_events[d].push(format!(
                            "device {d} ({}) delay-vocab: {delay} ticks exceeds wait budget \
                             {budget}; treated as dropped",
                            stage.device
                        ));
                        continue;
                    }
                    union_events[d].push(format!(
                        "device {d} ({}) delay-vocab: arrived after {delay} ticks",
                        stage.device
                    ));
                }
                vocabs.push(&stage.vocab);
            }
            union::merge_vocabs(vocabs)
        } else {
            BTreeSet::new()
        };
        let missing: Vec<Vec<String>> = acquired
            .iter()
            .enumerate()
            .map(|(d, a)| match &a.result {
                Ok(stage) if cfg.union.participates(d) => {
                    union::missing_classes(&stage.vocab, &union_classes)
                }
                _ => Vec::new(),
            })
            .collect();
        let union_end_ticks = clock.total();
        let union_seeded: u64 = missing.iter().map(|m| m.len() as u64).sum();
        FLEET_UNION_TICKS.incr(union_end_ticks - acquire_ticks);
        span_close(
            "fleet.union",
            union_end_ticks,
            &[
                kv("ticks", union_end_ticks - acquire_ticks),
                kv("classes", union_classes.len() as u64),
                kv("seeded", union_seeded),
            ],
        );
        Self::check_watchdog(
            cfg,
            "union",
            union_end_ticks - acquire_ticks,
            cfg.watchdog.union_deadline_ticks,
        )?;

        // ---- phase 3: prepare shares (parallel, retried) ----
        span_open("fleet.prepare", union_end_ticks, &[]);
        let prepared: Vec<Option<Attempted<DeviceOutcome>>> =
            schedule::run_indexed_settled(cfg.n_devices, |d| match &acquired[d].result {
                Ok(stage) => Some(with_scope(Scope::Device(d as u32), || {
                    self.prepare_with_recovery(d, stage, &missing[d], &test, &plan, &clock)
                })),
                Err(_) => None,
            });
        let prepare_end_ticks = clock.total();
        FLEET_PREPARE_TICKS.incr(prepare_end_ticks - union_end_ticks);
        span_close(
            "fleet.prepare",
            prepare_end_ticks,
            &[kv("ticks", prepare_end_ticks - union_end_ticks)],
        );
        Self::check_watchdog(
            cfg,
            "prepare",
            prepare_end_ticks - union_end_ticks,
            cfg.watchdog.prepare_deadline_ticks,
        )?;

        // ---- aggregation, in device-index order ----
        let out = self.aggregate(AggregateInput {
            acquired,
            union_events,
            prepared,
            union_classes,
            plan: &plan,
            clock: &clock,
            test: &test,
            peak: &peak,
            start,
        });
        span_close(
            "fleet.round",
            clock.total(),
            &[kv("ticks", clock.total()), kv("ok", u64::from(out.is_ok()))],
        );
        out
    }

    /// Runs the fleet, resuming from `path` when it holds an intact
    /// checkpoint of this exact configuration; otherwise runs fresh and
    /// writes the checkpoint. The [`ResumeOutcome`] distinguishes the
    /// three cases: an **absent** (or other-config) checkpoint runs fresh
    /// silently, while a **corrupt** one re-runs *loudly* — the corruption
    /// is recorded in the report's observed-fault log (and thereby the
    /// fingerprint) and named in
    /// [`ResumeOutcome::RecoveredCorrupt`], never swallowed.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetSim::run`] failures and
    /// [`FleetError::Checkpoint`] when the fresh checkpoint cannot be
    /// written.
    pub fn run_or_resume(&self, path: &Path) -> Result<(FleetReport, ResumeOutcome), FleetError> {
        let key = RoundCheckpoint::config_key(&self.config);
        let mut corrupt = None;
        match RoundCheckpoint::load(path) {
            Ok(Some(cp)) if cp.config_key == key => return Ok((cp.report, ResumeOutcome::Resumed)),
            Ok(_) => {} // Absent, or another config's round: fresh run.
            Err(e) => corrupt = Some(e.to_string()),
        }
        let mut report = self.run()?;
        if let Some(why) = &corrupt {
            report
                .fault
                .observed
                .push(format!("checkpoint corrupt, round re-ran: {why}"));
        }
        RoundCheckpoint::new(key, report.clone()).save(path)?;
        let outcome = match corrupt {
            Some(why) => ResumeOutcome::RecoveredCorrupt(why),
            None => ResumeOutcome::Fresh,
        };
        Ok((report, outcome))
    }

    /// Errors out of the round when an armed watchdog deadline is blown.
    fn check_watchdog(
        cfg: &FleetConfig,
        phase: &str,
        spent_ticks: u64,
        deadline_ticks: u64,
    ) -> Result<(), FleetError> {
        if cfg.watchdog.enabled && spent_ticks > deadline_ticks {
            return Err(FleetError::Watchdog {
                phase: phase.to_string(),
                spent_ticks,
                deadline_ticks,
            });
        }
        Ok(())
    }

    /// Phase 1 for one device, driven through the retry policy. Straggler
    /// stalls and retry backoff spend virtual ticks; every attempt rebuilds
    /// the stream from the same seed, so a healed fault yields exactly the
    /// shard a healthy run would have.
    fn acquire_with_recovery(
        &self,
        d: usize,
        peak: &PeakRows,
        plan: &FaultPlan,
        clock: &VirtualClock,
    ) -> Attempted<DeviceStage> {
        let cfg = &self.config;
        let device = DEVICE_CYCLE[cfg.member_id(d) as usize % DEVICE_CYCLE.len()];
        let dp = plan.device(d);
        let res = &cfg.resilience;
        let mut observed = Vec::new();
        let mut retries = 0;
        let mut attempt = 0;
        loop {
            if dp.fires(FaultKind::Straggle, attempt) {
                let stall = dp.magnitude(FaultKind::Straggle).unwrap_or(0);
                let budget = res.straggler_budget_ticks;
                if stall > budget {
                    // The orchestrator waits out the budget, then gives up
                    // on the attempt.
                    clock.advance(budget);
                    observed.push(format!(
                        "device {d} ({device}) straggler: stalled {stall} ticks, budget {budget} \
                         [attempt {attempt}]"
                    ));
                    let err = FleetError::device(
                        d,
                        device,
                        DeviceFaultKind::Straggler,
                        format!("stalled {stall} virtual ticks (budget {budget})"),
                    );
                    if attempt < res.max_retries {
                        clock.advance(backoff_ticks(
                            res.backoff_base_ticks,
                            res.backoff_cap_ticks,
                            attempt,
                        ));
                        FLEET_RETRIES.incr(1);
                        event(
                            "fleet.retry",
                            0,
                            &[kv("device", d as u64), kv("attempt", attempt as u64)],
                        );
                        retries += 1;
                        attempt += 1;
                        continue;
                    }
                    return Attempted {
                        result: Err(err),
                        retries,
                        observed,
                    };
                }
                // Slow but within budget: absorbed, not a failure.
                clock.advance(stall);
                observed.push(format!(
                    "device {d} ({device}) straggler: stalled {stall} ticks, absorbed within \
                     budget {budget} [attempt {attempt}]"
                ));
            }
            match self.acquire_device(d, peak, dp.fault_spec_for(attempt, cfg.rows_per_device)) {
                Ok(stage) => {
                    if dp.fires(FaultKind::TruncateChunks, attempt) {
                        observed.push(format!(
                            "device {d} ({device}) truncate-chunks: shard ended at {} of {} rows \
                             [attempt {attempt}]",
                            stage.shard_rows, cfg.rows_per_device
                        ));
                    }
                    return Attempted {
                        result: Ok(stage),
                        retries,
                        observed,
                    };
                }
                Err(e) => {
                    let kind = if dp.fires(FaultKind::CrashAcquire, attempt) {
                        DeviceFaultKind::CrashAcquire
                    } else {
                        DeviceFaultKind::Stream
                    };
                    let err = FleetError::device(d, device, kind, e.to_string());
                    observed.push(format!("{err} [attempt {attempt}]"));
                    if attempt < res.max_retries {
                        clock.advance(backoff_ticks(
                            res.backoff_base_ticks,
                            res.backoff_cap_ticks,
                            attempt,
                        ));
                        FLEET_RETRIES.incr(1);
                        event(
                            "fleet.retry",
                            0,
                            &[kv("device", d as u64), kv("attempt", attempt as u64)],
                        );
                        retries += 1;
                        attempt += 1;
                        continue;
                    }
                    return Attempted {
                        result: Err(err),
                        retries,
                        observed,
                    };
                }
            }
        }
    }

    /// One acquisition attempt: stream the (possibly fault-wrapped) shard
    /// into a bounded window and record the observed class vocabulary.
    /// Corrupt chunks are caught by a device-side integrity scan before
    /// they can enter the working window.
    fn acquire_device(
        &self,
        d: usize,
        peak: &PeakRows,
        fault_spec: ChunkFaultSpec,
    ) -> Result<DeviceStage, DataError> {
        let cfg = &self.config;
        // Seed and identity key off the *stable member id*, not the slot,
        // so a resident member keeps its shard stream across churn.
        let id = cfg.member_id(d);
        let device = DEVICE_CYCLE[id as usize % DEVICE_CYCLE.len()].to_string();
        let seed = cfg.seed.wrapping_add(id.wrapping_mul(101));
        let sim = LabSimulator::new(LabSimConfig {
            n_records: cfg.rows_per_device,
            seed,
            attack_fraction: cfg.attack_fraction_for(d),
        });
        let source = FaultedSource::new(
            sim.device_chunk_source(&device, cfg.rows_per_device),
            fault_spec,
        );
        let mut shard = StreamingShard::new(source, cfg.chunk_rows, peak.clone());
        let scope = LabSimulator::label_column();
        let numeric: Vec<String> = LabSimulator::schema()
            .continuous_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut vocab = BTreeSet::new();
        let mut rows_scanned = 0usize;
        // The decoded working set a device retains while streaming.
        enum Window {
            /// Bounded working set: a deterministic uniform sample.
            Bounded(Reservoir),
            /// Pre-fleet behavior: the whole shard decoded at once.
            Eager(Table),
        }
        let mut window = match cfg.device_window {
            Some(cap) => {
                Window::Bounded(Reservoir::new(LabSimulator::schema(), cap, seed ^ 0x5a3d))
            }
            None => Window::Eager(Table::empty(LabSimulator::schema())),
        };
        shard.for_each_chunk(|chunk| -> Result<usize, DataError> {
            // Device-side integrity check: a corrupt chunk must never
            // reach the working window (or, later, a training table).
            for col in &numeric {
                let bad = chunk
                    .num_column(col)?
                    .iter()
                    .filter(|v| !v.is_finite())
                    .count();
                if bad > 0 {
                    return Err(DataError::Parse(format!(
                        "corrupt chunk: {bad} non-finite {col} cell(s) near row {rows_scanned}"
                    )));
                }
            }
            rows_scanned += chunk.n_rows();
            for v in chunk.cat_column(scope)? {
                if !vocab.contains(v) {
                    vocab.insert(v.clone());
                }
            }
            match &mut window {
                Window::Bounded(reservoir) => {
                    reservoir.offer(chunk)?;
                    Ok(reservoir.len())
                }
                Window::Eager(full) => {
                    full.append(chunk)?;
                    Ok(full.n_rows())
                }
            }
        })?;
        let local = match window {
            Window::Bounded(reservoir) => reservoir.into_table(),
            Window::Eager(full) => full,
        };
        Ok(DeviceStage {
            device,
            local,
            vocab,
            shard_rows: shard.rows_seen(),
        })
    }

    /// Phase 3 for one device, driven through the retry policy. Mid-fit
    /// crashes abort before the (expensive) fit; share poisoning applies
    /// to the successful attempt's product and is left for the
    /// aggregator's quarantine to catch.
    fn prepare_with_recovery(
        &self,
        d: usize,
        stage: &DeviceStage,
        missing: &[String],
        test: &Table,
        plan: &FaultPlan,
        clock: &VirtualClock,
    ) -> Attempted<DeviceOutcome> {
        let cfg = &self.config;
        let dp = plan.device(d);
        let res = &cfg.resilience;
        let seed = cfg.seed.wrapping_add(cfg.member_id(d).wrapping_mul(101));
        let mut observed = Vec::new();
        let mut retries = 0;
        let mut attempt = 0;
        loop {
            let result = if dp.fires(FaultKind::CrashMidFit, attempt) {
                Err(FleetError::device(
                    d,
                    &stage.device,
                    DeviceFaultKind::CrashMidFit,
                    "injected crash during generator fit",
                ))
            } else {
                self.prepare_device(d, stage, missing, test)
            };
            match result {
                Ok(mut outcome) => {
                    if let Some(share) = outcome.share.as_mut() {
                        if dp.fires(FaultKind::PoisonShareNan, attempt) {
                            poison_share(share, PoisonKind::NonFinite, seed);
                            observed.push(format!(
                                "device {d} ({}) poison-share-nan: release carries non-finite \
                                 cells [attempt {attempt}]",
                                stage.device
                            ));
                        } else if dp.fires(FaultKind::PoisonShareKg, attempt) {
                            poison_share(share, PoisonKind::KgInvalid, seed);
                            observed.push(format!(
                                "device {d} ({}) poison-share-kg: release carries KG-invalid \
                                 values [attempt {attempt}]",
                                stage.device
                            ));
                        }
                    }
                    return Attempted {
                        result: Ok(outcome),
                        retries,
                        observed,
                    };
                }
                Err(e) => {
                    observed.push(format!("{e} [attempt {attempt}]"));
                    if attempt < res.max_retries && e.is_retryable() {
                        clock.advance(backoff_ticks(
                            res.backoff_base_ticks,
                            res.backoff_cap_ticks,
                            attempt,
                        ));
                        FLEET_RETRIES.incr(1);
                        event(
                            "fleet.retry",
                            0,
                            &[kv("device", d as u64), kv("attempt", attempt as u64)],
                        );
                        retries += 1;
                        attempt += 1;
                        continue;
                    }
                    return Attempted {
                        result: Err(e),
                        retries,
                        observed,
                    };
                }
            }
        }
    }

    /// One preparation attempt: union seeding, training (for synthetic
    /// sharing), and share production.
    fn prepare_device(
        &self,
        d: usize,
        stage: &DeviceStage,
        missing: &[String],
        test: &Table,
    ) -> Result<DeviceOutcome, FleetError> {
        let cfg = &self.config;
        let device = &stage.device;
        let seed = cfg.seed.wrapping_add(cfg.member_id(d).wrapping_mul(101));
        let training =
            |e: String| FleetError::device(d, device.clone(), DeviceFaultKind::Training, e);
        // kinet-lint: allow(wall-clock) — per-device prep timing, report metadata the fingerprint excludes
        // kinet-lint: allow(determinism-taint) — same contract: prep timing is metadata the fingerprint excludes
        let t0 = Instant::now();
        match &cfg.policy {
            SharingPolicy::Raw => Ok(DeviceOutcome {
                share: Some(stage.local.clone()),
                prep_ms: t0.elapsed().as_secs_f64() * 1e3,
                local_eval: None,
                seeded_classes: Vec::new(),
                diag: None,
            }),
            SharingPolicy::LocalOnly => {
                let eval = evaluate_nids(
                    &stage.local,
                    test,
                    &stage.local,
                    LabSimulator::label_column(),
                    &LabSimulator::attack_events(),
                )
                .map_err(|e| {
                    FleetError::device(d, device.clone(), DeviceFaultKind::Other, e.to_string())
                })?;
                Ok(DeviceOutcome {
                    share: None,
                    prep_ms: t0.elapsed().as_secs_f64() * 1e3,
                    local_eval: Some((eval.accuracy, eval.attack_recall)),
                    seeded_classes: Vec::new(),
                    diag: None,
                })
            }
            SharingPolicy::Synthetic(kind) => {
                // Union seeding: append KG-valid exemplars of the classes
                // this shard is missing, so the generator's condition
                // dictionary covers the fleet union.
                let kg = LabSimulator::knowledge_graph();
                let mut train_table = stage.local.clone();
                let mut seeded_classes = Vec::new();
                if !missing.is_empty() {
                    let seeds = union::synthesize_seeds(
                        &kg,
                        &stage.local,
                        missing,
                        cfg.union.seeds_per_class,
                        seed ^ 0xc0de,
                    )?;
                    seeded_classes = seeds
                        .category_counts(LabSimulator::label_column())
                        .map_err(|e| {
                            FleetError::device(
                                d,
                                device.clone(),
                                DeviceFaultKind::Other,
                                e.to_string(),
                            )
                        })?
                        .into_keys()
                        .collect();
                    train_table.append(&seeds).map_err(|e| {
                        FleetError::device(d, device.clone(), DeviceFaultKind::Other, e.to_string())
                    })?;
                }
                let n_release = cfg.release_rows.unwrap_or(stage.shard_rows);
                let mut diag = None;
                let synth = match kind {
                    ModelKind::KinetGan => {
                        // The small-shard schedule (DESIGN.md §2.4);
                        // `model_epochs` still controls the budget. Seeded
                        // devices additionally draw sampling-time
                        // conditions with the union balance mode so their
                        // handful of seed rows is actually emitted.
                        let mut mcfg = KinetGanConfig::small_shard()
                            .with_epochs(cfg.model_epochs)
                            .with_seed(seed);
                        if !seeded_classes.is_empty() {
                            mcfg = mcfg.with_sample_balance(cfg.union.sample_balance);
                        }
                        let mut model = KinetGan::new(mcfg, kg);
                        model
                            .fit(&train_table)
                            .map_err(|e| training(e.to_string()))?;
                        diag = model.report().map(|r| DeviceTrainingDiag {
                            device_index: d,
                            device: device.clone(),
                            final_d_loss: r.d_loss.last().copied().unwrap_or(0.0) as f64,
                            final_g_loss: r.g_loss.last().copied().unwrap_or(0.0) as f64,
                            probe_accuracy: r.probe_accuracy,
                            final_validity: r.final_validity,
                            epochs: r.d_loss.len(),
                        });
                        model
                            .sample(n_release, seed ^ 1)
                            .map_err(|e| training(e.to_string()))?
                    }
                    ModelKind::CtGan => {
                        let mcfg = BaselineConfig::fast_demo()
                            .with_epochs(cfg.model_epochs)
                            .with_seed(seed);
                        let mut model = CtGan::new(mcfg);
                        model
                            .fit(&train_table)
                            .map_err(|e| training(e.to_string()))?;
                        model
                            .sample(n_release, seed ^ 1)
                            .map_err(|e| training(e.to_string()))?
                    }
                    ModelKind::Tvae => {
                        let mcfg = BaselineConfig::fast_demo()
                            .with_epochs(cfg.model_epochs)
                            .with_seed(seed);
                        let mut model = Tvae::new(mcfg);
                        model
                            .fit(&train_table)
                            .map_err(|e| training(e.to_string()))?;
                        model
                            .sample(n_release, seed ^ 1)
                            .map_err(|e| training(e.to_string()))?
                    }
                };
                Ok(DeviceOutcome {
                    share: Some(synth),
                    prep_ms: t0.elapsed().as_secs_f64() * 1e3,
                    local_eval: None,
                    seeded_classes,
                    diag,
                })
            }
        }
    }

    /// Validates and pools shares in device order, enforces quorum, scores
    /// the pool, and assembles the report (returned with the pooled table
    /// for the serving path).
    fn aggregate(
        &self,
        input: AggregateInput<'_>,
    ) -> Result<(FleetReport, Option<Table>), FleetError> {
        let AggregateInput {
            acquired,
            union_events,
            mut prepared,
            union_classes,
            plan,
            clock,
            test,
            peak,
            start,
        } = input;
        let cfg = &self.config;
        let kg = LabSimulator::knowledge_graph();
        let scope = LabSimulator::label_column();

        let mut pool: Option<Table> = None;
        let mut bytes_shared = 0usize;
        let mut validity = StreamValidity::new();
        let mut devices = Vec::with_capacity(cfg.n_devices);
        let mut local_accs = Vec::new();
        let mut local_recalls = Vec::new();
        let mut release_cov_sum = 0.0;
        let mut reported = vec![false; cfg.n_devices];
        let mut degraded: Vec<(usize, String)> = Vec::new();
        let mut quarantined: Vec<(usize, String)> = Vec::new();
        let mut observed: Vec<String> = Vec::new();
        let mut total_retries = 0usize;
        let mut prep_times = Vec::new();
        let mut seeded_pairs = 0usize;
        let mut coverage_before_sum = 0.0;
        let mut coverage_after_sum = 0.0;
        let mut live_devices = 0usize;

        for (d, (acq, prep)) in acquired.iter().zip(prepared.iter_mut()).enumerate() {
            total_retries += acq.retries;
            observed.extend(acq.observed.iter().cloned());
            observed.extend(union_events[d].iter().cloned());
            let device_name = match &acq.result {
                Ok(stage) => stage.device.clone(),
                Err(_) => DEVICE_CYCLE[cfg.member_id(d) as usize % DEVICE_CYCLE.len()].to_string(),
            };
            let mut report = DeviceReport {
                device_index: d,
                device: device_name,
                status: DEVICE_OK.to_string(),
                retries: acq.retries,
                shard_rows: 0,
                shard_classes: Vec::new(),
                seeded_classes: Vec::new(),
                share_rows: 0,
                prep_ms: 0.0,
                local_accuracy: None,
                local_attack_recall: None,
                diag: None,
            };
            match (&acq.result, prep) {
                (Err(e), _) => {
                    report.status = format!("degraded: {e}");
                    degraded.push((d, e.to_string()));
                }
                (Ok(stage), Some(att)) => {
                    live_devices += 1;
                    report.retries += att.retries;
                    total_retries += att.retries;
                    observed.extend(att.observed.iter().cloned());
                    report.shard_rows = stage.shard_rows;
                    report.shard_classes = stage.vocab.iter().cloned().collect();
                    if !union_classes.is_empty() {
                        let denom = union_classes.len() as f64;
                        coverage_before_sum += stage
                            .vocab
                            .iter()
                            .filter(|c| union_classes.contains(*c))
                            .count() as f64
                            / denom;
                    }
                    match &mut att.result {
                        Ok(outcome) => {
                            report.seeded_classes = outcome.seeded_classes.clone();
                            report.prep_ms = outcome.prep_ms;
                            report.diag = outcome.diag.clone();
                            prep_times.push(outcome.prep_ms);
                            seeded_pairs += outcome.seeded_classes.len();
                            if !union_classes.is_empty() {
                                let covered: BTreeSet<&String> = stage
                                    .vocab
                                    .iter()
                                    .chain(&outcome.seeded_classes)
                                    .filter(|c| union_classes.contains(*c))
                                    .collect();
                                coverage_after_sum +=
                                    covered.len() as f64 / union_classes.len() as f64;
                            }
                            // Take the share out of the outcome: the table
                            // moves into the pool instead of being cloned.
                            if let Some(share) = outcome.share.take() {
                                match resilience::validate_share(
                                    &share,
                                    &kg,
                                    &cfg.resilience,
                                    cfg.chunk_rows,
                                ) {
                                    Ok(share_validity) => {
                                        report.share_rows = share.n_rows();
                                        let mut wire = Vec::new();
                                        share.write_csv(&mut wire).map_err(|e| {
                                            FleetError::Data {
                                                context: "wire encoding failed".into(),
                                                source: e,
                                            }
                                        })?;
                                        bytes_shared += wire.len();
                                        validity.absorb(&share_validity);
                                        if !union_classes.is_empty() {
                                            let present = share
                                                .category_counts(scope)
                                                .map_err(FleetError::from)?
                                                .into_keys()
                                                .filter(|c| union_classes.contains(c))
                                                .count();
                                            release_cov_sum +=
                                                present as f64 / union_classes.len() as f64;
                                        }
                                        match &mut pool {
                                            Some(p) => {
                                                p.append(&share).map_err(|e| FleetError::Data {
                                                    context: "pooling failed".into(),
                                                    source: e,
                                                })?
                                            }
                                            None => pool = Some(share),
                                        }
                                        reported[d] = true;
                                    }
                                    Err(reason) => {
                                        let why = reason.describe();
                                        observed.push(format!(
                                            "device {d} ({}) quarantined: {why}",
                                            stage.device
                                        ));
                                        report.status = format!("quarantined: {why}");
                                        FLEET_QUARANTINES.incr(1);
                                        event(
                                            "fleet.quarantine",
                                            clock.total(),
                                            &[kv("device", d as u64)],
                                        );
                                        quarantined.push((d, why));
                                    }
                                }
                            }
                            if let Some((acc, recall)) = outcome.local_eval {
                                report.local_accuracy = Some(acc);
                                report.local_attack_recall = Some(recall);
                                local_accs.push(acc);
                                local_recalls.push(recall);
                                reported[d] = true;
                            }
                        }
                        Err(e) => {
                            report.status = format!("degraded: {e}");
                            degraded.push((d, e.to_string()));
                        }
                    }
                }
                (Ok(_), None) => {
                    // Unreachable by construction: phase 3 settles Some for
                    // every acquired device.
                    return Err(FleetError::Internal(format!(
                        "device {d}: acquired but never prepared"
                    )));
                }
            }
            devices.push(report);
        }

        resilience::check_quorum(&reported, &degraded, &cfg.resilience)?;
        let devices_reported = reported.iter().filter(|&&r| r).count();
        event(
            "fleet.quorum",
            clock.total(),
            &[
                kv("reported", devices_reported as u64),
                kv(
                    "required",
                    cfg.resilience.quorum_required(cfg.n_devices) as u64,
                ),
            ],
        );

        let (global_accuracy, attack_recall, pool_kg_validity, pool_rows, pool_class_counts) =
            match (&cfg.policy, &pool) {
                (SharingPolicy::LocalOnly, _) => {
                    let n = local_accs.len().max(1) as f64;
                    (
                        local_accs.iter().sum::<f64>() / n,
                        local_recalls.iter().sum::<f64>() / n,
                        1.0,
                        0,
                        Vec::new(),
                    )
                }
                (_, Some(pool)) => {
                    let eval = evaluate_nids(
                        pool,
                        test,
                        test,
                        LabSimulator::label_column(),
                        &LabSimulator::attack_events(),
                    )
                    .map_err(|e| FleetError::Internal(format!("global evaluation failed: {e}")))?;
                    let counts = pool
                        .category_counts(scope)
                        .map_err(|e| FleetError::Data {
                            context: "pool label histogram failed".into(),
                            source: e,
                        })?
                        .into_iter()
                        .collect();
                    (
                        eval.accuracy,
                        eval.attack_recall,
                        validity.rate(),
                        pool.n_rows(),
                        counts,
                    )
                }
                (_, None) => {
                    return Err(FleetError::Internal(
                        "no device shared any data, yet quorum passed".into(),
                    ))
                }
            };

        let union_report = if cfg.union.enabled {
            let n_live = live_devices.max(1) as f64;
            UnionReport {
                enabled: true,
                classes: union_classes.iter().cloned().collect(),
                devices_opted_in: (0..cfg.n_devices)
                    .filter(|&d| cfg.union.participates(d))
                    .count(),
                seeded_pairs,
                coverage_before: coverage_before_sum / n_live,
                coverage_after: coverage_after_sum / n_live,
                release_coverage: release_cov_sum / n_live,
            }
        } else {
            UnionReport::default()
        };

        let fault_report = FaultReport {
            enabled: cfg.fault.enabled,
            injected: plan.describe(),
            observed,
            retries: total_retries,
            quarantined,
            degraded,
            devices_reported,
            quorum_required: cfg.resilience.quorum_required(cfg.n_devices),
            quorum_met: true,
            virtual_ticks: clock.total(),
        };

        let prep_sum: f64 = prep_times.iter().sum();
        let report = FleetReport {
            policy: cfg.policy.label(),
            n_devices: cfg.n_devices,
            rows_per_device: cfg.rows_per_device,
            chunk_rows: cfg.chunk_rows,
            global_accuracy,
            attack_recall,
            bytes_shared,
            mean_device_prep_ms: prep_sum / prep_times.len().max(1) as f64,
            pool_kg_validity,
            pool_rows,
            pool_class_counts,
            peak_decoded_rows: peak.peak(),
            union: union_report,
            fault: fault_report,
            devices,
            total_wall_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        Ok((report, pool))
    }
}

/// Bundled aggregation inputs (one fleet round's settled phases).
struct AggregateInput<'a> {
    acquired: Vec<Attempted<DeviceStage>>,
    union_events: Vec<Vec<String>>,
    prepared: Vec<Option<Attempted<DeviceOutcome>>>,
    union_classes: BTreeSet<String>,
    plan: &'a FaultPlan,
    clock: &'a VirtualClock,
    test: &'a Table,
    peak: &'a PeakRows,
    start: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnionConfig;
    use crate::fault::DeviceFaultSpec;

    #[test]
    fn raw_fleet_end_to_end() {
        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run()
            .unwrap();
        assert_eq!(report.n_devices, 2);
        assert!(report.global_accuracy > 0.5, "{report}");
        assert!(report.bytes_shared > 1000);
        assert_eq!(report.policy, "raw");
        assert!(
            (report.pool_kg_validity - 1.0).abs() < 1e-9,
            "simulator output satisfies its own KG: {report}"
        );
        assert_eq!(report.devices.len(), 2);
        assert!(report.devices.iter().all(|d| d.shard_rows == 250));
        // A fault-free round reports everyone healthy.
        assert!(report.devices.iter().all(|d| d.status == DEVICE_OK));
        assert_eq!(report.fault.devices_reported, 2);
        assert!(report.fault.quorum_met);
        assert!(report.fault.observed.is_empty());
        assert_eq!(report.fault.virtual_ticks, 0);
    }

    #[test]
    fn local_only_shares_nothing() {
        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::LocalOnly))
            .run()
            .unwrap();
        assert_eq!(report.bytes_shared, 0);
        assert_eq!(report.pool_rows, 0);
        assert!(report.global_accuracy > 0.0);
        assert!(report.devices.iter().all(|d| d.local_accuracy.is_some()));
        assert_eq!(
            report.fault.devices_reported, 2,
            "local evals count as reports"
        );
    }

    #[test]
    fn bounded_window_bounds_peak_decoded_rows() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.rows_per_device = 2000;
        cfg.chunk_rows = 128;
        cfg.device_window = Some(64);
        let report = FleetSim::new(cfg).run().unwrap();
        // Residency = one chunk in flight + the reservoir window; the 2000
        // decoded rows of the eager path must never exist at once.
        assert!(
            report.peak_decoded_rows <= 128 + 64,
            "peak {} exceeds chunk + window",
            report.peak_decoded_rows
        );
        assert_eq!(report.devices[0].share_rows, 64);
        assert_eq!(report.devices[0].shard_rows, 2000);
    }

    #[test]
    fn eager_window_matches_shard() {
        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run()
            .unwrap();
        // No window cap: the share is the whole shard, peak reflects it.
        assert_eq!(report.devices[0].share_rows, 250);
        assert!(report.peak_decoded_rows >= 250);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.chunk_rows = 0;
        let err = FleetSim::new(cfg).run().unwrap_err();
        assert_eq!(err.exit_code(), crate::error::EXIT_CONFIG_INVALID);
    }

    #[test]
    fn union_vocabs_surface_in_report() {
        // Raw policy skips training, so this exercises the vocabulary
        // exchange and the report plumbing cheaply. Device 1 is benign-only.
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.device_attack_fraction = vec![(1, 0.0)];
        cfg.union = UnionConfig::enabled();
        let report = FleetSim::new(cfg).run().unwrap();
        assert!(report.union.enabled);
        assert!(!report.union.classes.is_empty());
        assert!(report.union.coverage_before <= 1.0);
        assert!(report.union.devices_opted_in == 2);
        // Raw sharing performs no seeding.
        assert_eq!(report.union.seeded_pairs, 0);
        assert_eq!(report.union.coverage_before, report.union.coverage_after);
    }

    #[test]
    fn transient_crash_is_retried_and_the_round_stays_healthy() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::transient(
            1,
            FaultKind::CrashAcquire,
            2,
        )
        .with_magnitude(40)]);
        let report = FleetSim::new(cfg.clone()).run().unwrap();
        assert_eq!(report.devices[1].retries, 2, "two failed attempts retried");
        assert_eq!(report.devices[1].status, DEVICE_OK, "third attempt heals");
        assert_eq!(report.fault.retries, 2);
        assert!(report.fault.degraded.is_empty());
        assert!(
            report.fault.virtual_ticks > 0,
            "backoff spent virtual ticks: {}",
            report.fault.virtual_ticks
        );
        // The healed shard is identical to a fault-free one: recovery costs
        // ticks, not data.
        let mut clean = cfg.clone();
        clean.fault = crate::fault::FaultConfig::default();
        let clean_report = FleetSim::new(clean).run().unwrap();
        assert_eq!(
            report.devices[1].shard_rows,
            clean_report.devices[1].shard_rows
        );
        assert_eq!(report.global_accuracy, clean_report.global_accuracy);
    }

    #[test]
    fn permanent_crash_degrades_the_device_under_partial_quorum() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::permanent(
            1,
            FaultKind::CrashAcquire,
        )
        .with_magnitude(40)]);
        cfg.resilience.quorum_frac = 0.5;
        let report = FleetSim::new(cfg).run().unwrap();
        assert!(report.devices[1].status.starts_with("degraded:"));
        assert_eq!(report.fault.degraded.len(), 1);
        assert_eq!(report.fault.devices_reported, 1);
        assert_eq!(report.fault.quorum_required, 1);
        assert_eq!(
            report.devices[1].share_rows, 0,
            "no data from the dead device"
        );
        assert!(report.pool_rows > 0, "the survivor still pools");
    }

    #[test]
    fn permanent_crash_with_full_quorum_fails_loud() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::permanent(
            0,
            FaultKind::CrashAcquire,
        )]);
        let err = FleetSim::new(cfg).run().unwrap_err();
        assert_eq!(err.exit_code(), crate::error::EXIT_QUORUM_LOST);
        assert!(err.to_string().contains("quorum lost"), "{err}");
    }

    #[test]
    fn poisoned_share_is_quarantined_not_pooled() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::permanent(
            1,
            FaultKind::PoisonShareNan,
        )]);
        cfg.resilience.quorum_frac = 0.5;
        let report = FleetSim::new(cfg.clone()).run().unwrap();
        assert!(report.devices[1].status.starts_with("quarantined:"));
        assert_eq!(report.fault.quarantined.len(), 1);
        assert_eq!(report.fault.devices_reported, 1);
        // The pool holds only the healthy device's share — and is finite.
        let mut clean = cfg;
        clean.fault = crate::fault::FaultConfig::default();
        let clean_report = FleetSim::new(clean).run().unwrap();
        assert_eq!(report.pool_rows, clean_report.pool_rows / 2);
        assert!(
            (report.pool_kg_validity - 1.0).abs() < 1e-9,
            "quarantine keeps the pool clean: {}",
            report.pool_kg_validity
        );
    }

    #[test]
    fn vocab_drop_shrinks_the_union_but_not_the_round() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        // Device 0 is the only one seeing attacks; its vocab message drops.
        cfg.device_attack_fraction = vec![(1, 0.0)];
        cfg.union = UnionConfig::enabled();
        cfg.fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::permanent(
            0,
            FaultKind::DropVocab,
        )]);
        let report = FleetSim::new(cfg.clone()).run().unwrap();
        let mut clean = cfg;
        clean.fault = crate::fault::FaultConfig::default();
        let clean_report = FleetSim::new(clean).run().unwrap();
        assert!(
            report.union.classes.len() < clean_report.union.classes.len(),
            "union falls back to surviving vocabs: {:?} vs {:?}",
            report.union.classes,
            clean_report.union.classes
        );
        assert_eq!(
            report.fault.devices_reported, 2,
            "both devices still report"
        );
        assert!(!report.fault.observed.is_empty());
    }

    #[test]
    fn checkpoint_resume_round_trips() {
        let dir = std::env::temp_dir().join("kinet_fleet_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.json");
        let _ = std::fs::remove_file(&path);
        let sim = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw));
        let (fresh, outcome) = sim.run_or_resume(&path).unwrap();
        assert_eq!(outcome, ResumeOutcome::Fresh, "first run computes");
        let (reloaded, outcome) = sim.run_or_resume(&path).unwrap();
        assert_eq!(
            outcome,
            ResumeOutcome::Resumed,
            "second run resumes from the checkpoint"
        );
        assert_eq!(
            fresh.deterministic_fingerprint(),
            reloaded.deterministic_fingerprint()
        );
        // A different config ignores the stale checkpoint and re-runs.
        let mut other_cfg = FleetConfig::fast(SharingPolicy::Raw);
        other_cfg.seed = 43;
        let (other, outcome) = FleetSim::new(other_cfg).run_or_resume(&path).unwrap();
        assert_eq!(
            outcome,
            ResumeOutcome::Fresh,
            "config key mismatch forces a fresh round"
        );
        assert_ne!(
            other.deterministic_fingerprint(),
            fresh.deterministic_fingerprint()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_is_reran_loudly() {
        let dir = std::env::temp_dir().join("kinet_fleet_ckpt_torn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.json");
        let _ = std::fs::remove_file(&path);
        let sim = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw));
        let (fresh, _) = sim.run_or_resume(&path).unwrap();
        // Tear the checkpoint in half — a crash mid-write on a filesystem
        // without the atomic-rename guarantee.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (recovered, outcome) = sim.run_or_resume(&path).unwrap();
        match &outcome {
            ResumeOutcome::RecoveredCorrupt(why) => {
                assert!(why.contains("verify"), "{why}")
            }
            other => panic!("expected corrupt recovery, got {other:?}"),
        }
        assert!(
            recovered
                .fault
                .observed
                .iter()
                .any(|o| o.contains("checkpoint corrupt")),
            "re-run is recorded in the fault log"
        );
        // The re-run recomputed the same round; only the fault log differs.
        assert_eq!(recovered.pool_rows, fresh.pool_rows);
        assert_ne!(
            recovered.deterministic_fingerprint(),
            fresh.deterministic_fingerprint(),
            "corrupt recovery is loud in the fingerprint"
        );
        // The rewritten checkpoint is intact again and resumes cleanly.
        let (_, outcome) = sim.run_or_resume(&path).unwrap();
        assert_eq!(outcome, ResumeOutcome::Resumed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn member_ids_pin_shard_streams_across_slots() {
        // The same member in a different slot (churned fleet) must stream
        // the same shard: data follows identity, not position.
        let mut a = FleetConfig::fast(SharingPolicy::Raw);
        a.member_ids = vec![0, 5];
        let ra = FleetSim::new(a).run().unwrap();
        let mut b = FleetConfig::fast(SharingPolicy::Raw);
        b.member_ids = vec![5, 0];
        let rb = FleetSim::new(b).run().unwrap();
        assert_eq!(ra.devices[1].device, rb.devices[0].device);
        assert_eq!(ra.devices[1].shard_classes, rb.devices[0].shard_classes);
        // And the default is bit-identical to explicit slot ids.
        let mut c = FleetConfig::fast(SharingPolicy::Raw);
        c.member_ids = vec![0, 1];
        let rc = FleetSim::new(c).run().unwrap();
        let rd = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run()
            .unwrap();
        assert_eq!(
            rc.deterministic_fingerprint(),
            rd.deterministic_fingerprint()
        );
    }

    #[test]
    fn watchdog_aborts_a_hung_acquire_phase() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        // A straggler that stalls 900 ticks inside a 1000-tick budget is
        // absorbed — but blows a 500-tick watchdog deadline.
        cfg.fault = crate::fault::FaultConfig::scripted(vec![DeviceFaultSpec::permanent(
            1,
            FaultKind::Straggle,
        )
        .with_magnitude(900)]);
        cfg.watchdog = crate::config::WatchdogConfig::armed(500);
        let err = FleetSim::new(cfg.clone()).run().unwrap_err();
        match &err {
            FleetError::Watchdog {
                phase,
                spent_ticks,
                deadline_ticks,
            } => {
                assert_eq!(phase, "acquire");
                assert!(*spent_ticks > *deadline_ticks);
            }
            other => panic!("expected a watchdog abort, got {other:?}"),
        }
        // The same round with the watchdog disarmed commits normally.
        cfg.watchdog.enabled = false;
        assert!(FleetSim::new(cfg).run().is_ok());
    }

    #[test]
    fn run_detailed_surfaces_the_pool() {
        let (report, pool) = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run_detailed()
            .unwrap();
        let pool = pool.expect("raw sharing pools");
        assert_eq!(pool.n_rows(), report.pool_rows);
        let (_, none) = FleetSim::new(FleetConfig::fast(SharingPolicy::LocalOnly))
            .run_detailed()
            .unwrap();
        assert!(none.is_none(), "local-only shares nothing");
    }
}
