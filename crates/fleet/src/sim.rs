//! The fleet orchestrator: streaming shard acquisition, pool-worker device
//! scheduling, the condition-union exchange, and aggregation.
//!
//! A run has three phases:
//!
//! 1. **Acquire** (parallel): every device streams its shard chunk-by-chunk
//!    ([`kinet_data::stream`]) into a bounded working window, publishing
//!    its observed class vocabulary. No device ever holds more decoded
//!    rows than `chunk + window`.
//! 2. **Union** (aggregator): class vocabularies fold into their union;
//!    participating devices missing a class receive KG-synthesized seed
//!    rows for it ([`crate::union`]).
//! 3. **Prepare & pool** (parallel, then aggregator): devices train/sample
//!    (or ship raw windows), results are merged **in device-index order**
//!    (completion order is scheduling noise), the pooled table is scored
//!    and evaluated against a held-out global stream.
//!
//! Every random draw derives from `seed` and the device index, so the full
//! [`FleetReport`] fingerprint is bit-identical for every `KINET_THREADS`
//! value.

use crate::config::{FleetConfig, ModelKind, SharingPolicy};
use crate::report::{DeviceReport, DeviceTrainingDiag, FleetReport, UnionReport};
use crate::{schedule, union};
use kinet_baselines::{common::BaselineConfig, CtGan, Tvae};
use kinet_data::encoded::KgTableChecker;
use kinet_data::stream::{PeakRows, Reservoir, StreamValidity, StreamingShard, TableChunks};
use kinet_data::synth::TabularSynthesizer;
use kinet_data::{DataError, Table};
use kinet_datasets::lab::{LabSimConfig, LabSimulator};
use kinet_eval::utility::evaluate_nids;
use kinetgan::{KinetGan, KinetGanConfig};
use std::collections::BTreeSet;
use std::time::Instant;

const DEVICE_CYCLE: [&str; 4] = ["blink_camera", "smart_plug", "motion_sensor", "tag_manager"];

/// Everything phase 1 learns about a device before any training happens.
struct DeviceStage {
    device: String,
    local: Table,
    vocab: BTreeSet<String>,
    shard_rows: usize,
}

/// A device's phase-3 product.
struct DeviceOutcome {
    share: Option<Table>,
    prep_ms: f64,
    local_eval: Option<(f64, f64)>,
    seeded_classes: Vec<String>,
    diag: Option<DeviceTrainingDiag>,
}

/// The fleet simulator over the lab IoT deployment.
#[derive(Clone, Debug)]
pub struct FleetSim {
    config: FleetConfig,
}

impl FleetSim {
    /// Creates a simulator.
    pub fn new(config: FleetConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the fleet end to end and reports metrics.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on configuration or device failures
    /// (model training error, schema mismatch).
    pub fn run(&self) -> Result<FleetReport, String> {
        let cfg = &self.config;
        cfg.validate()?;
        // kinet-lint: allow(wall-clock) — feeds only timing fields that deterministic_fingerprint() excludes
        let start = Instant::now();
        let peak = PeakRows::new();

        // Global held-out stream for evaluation (what the deployed NIDS
        // will face). Bounded by `test_records`, so generated eagerly.
        let test = LabSimulator::new(LabSimConfig {
            n_records: cfg.test_records,
            seed: cfg.seed ^ 0xfeed,
            ..LabSimConfig::default()
        })
        .generate()
        .map_err(|e| format!("test stream generation failed: {e}"))?;

        // ---- phase 1: acquire shards (streaming, parallel) ----
        let stages = schedule::run_indexed(cfg.n_devices, |d| self.acquire_device(d, &peak))?;

        // ---- phase 2: condition-union exchange ----
        let union_classes = if cfg.union.enabled {
            union::merge_vocabs(stages.iter().map(|s| &s.vocab))
        } else {
            BTreeSet::new()
        };
        let missing: Vec<Vec<String>> = stages
            .iter()
            .enumerate()
            .map(|(d, s)| {
                if cfg.union.participates(d) {
                    union::missing_classes(&s.vocab, &union_classes)
                } else {
                    Vec::new()
                }
            })
            .collect();

        // ---- phase 3: prepare shares (parallel) ----
        let outcomes = schedule::run_indexed(cfg.n_devices, |d| {
            self.prepare_device(d, &stages[d], &missing[d], &test)
        })?;

        // ---- aggregation, in device-index order ----
        self.aggregate(stages, outcomes, union_classes, &test, &peak, start)
    }

    /// Phase 1 for one device: stream the shard into a bounded window and
    /// record the observed class vocabulary.
    fn acquire_device(&self, d: usize, peak: &PeakRows) -> Result<DeviceStage, String> {
        let cfg = &self.config;
        let device = DEVICE_CYCLE[d % DEVICE_CYCLE.len()].to_string();
        let seed = cfg.seed.wrapping_add(d as u64 * 101);
        let sim = LabSimulator::new(LabSimConfig {
            n_records: cfg.rows_per_device,
            seed,
            attack_fraction: cfg.attack_fraction_for(d),
        });
        let source = sim.device_chunk_source(&device, cfg.rows_per_device);
        let mut shard = StreamingShard::new(source, cfg.chunk_rows, peak.clone());
        let scope = LabSimulator::label_column();
        let mut vocab = BTreeSet::new();
        // The decoded working set a device retains while streaming.
        enum Window {
            /// Bounded working set: a deterministic uniform sample.
            Bounded(Reservoir),
            /// Pre-fleet behavior: the whole shard decoded at once.
            Eager(Table),
        }
        let mut window = match cfg.device_window {
            Some(cap) => {
                Window::Bounded(Reservoir::new(LabSimulator::schema(), cap, seed ^ 0x5a3d))
            }
            None => Window::Eager(Table::empty(LabSimulator::schema())),
        };
        shard
            .for_each_chunk(|chunk| -> Result<usize, DataError> {
                for v in chunk.cat_column(scope)? {
                    if !vocab.contains(v) {
                        vocab.insert(v.clone());
                    }
                }
                match &mut window {
                    Window::Bounded(reservoir) => {
                        reservoir.offer(chunk)?;
                        Ok(reservoir.len())
                    }
                    Window::Eager(full) => {
                        full.append(chunk)?;
                        Ok(full.n_rows())
                    }
                }
            })
            .map_err(|e| format!("device {device}: {e}"))?;
        let local = match window {
            Window::Bounded(reservoir) => reservoir.into_table(),
            Window::Eager(full) => full,
        };
        Ok(DeviceStage {
            device,
            local,
            vocab,
            shard_rows: shard.rows_seen(),
        })
    }

    /// Phase 3 for one device: union seeding, training (for synthetic
    /// sharing), and share production.
    fn prepare_device(
        &self,
        d: usize,
        stage: &DeviceStage,
        missing: &[String],
        test: &Table,
    ) -> Result<DeviceOutcome, String> {
        let cfg = &self.config;
        let device = &stage.device;
        let seed = cfg.seed.wrapping_add(d as u64 * 101);
        // kinet-lint: allow(wall-clock) — per-device prep timing, report metadata the fingerprint excludes
        let t0 = Instant::now();
        match &cfg.policy {
            SharingPolicy::Raw => Ok(DeviceOutcome {
                share: Some(stage.local.clone()),
                prep_ms: t0.elapsed().as_secs_f64() * 1e3,
                local_eval: None,
                seeded_classes: Vec::new(),
                diag: None,
            }),
            SharingPolicy::LocalOnly => {
                let eval = evaluate_nids(
                    &stage.local,
                    test,
                    &stage.local,
                    LabSimulator::label_column(),
                    &LabSimulator::attack_events(),
                )
                .map_err(|e| format!("device {device}: {e}"))?;
                Ok(DeviceOutcome {
                    share: None,
                    prep_ms: t0.elapsed().as_secs_f64() * 1e3,
                    local_eval: Some((eval.accuracy, eval.attack_recall)),
                    seeded_classes: Vec::new(),
                    diag: None,
                })
            }
            SharingPolicy::Synthetic(kind) => {
                // Union seeding: append KG-valid exemplars of the classes
                // this shard is missing, so the generator's condition
                // dictionary covers the fleet union.
                let kg = LabSimulator::knowledge_graph();
                let mut train_table = stage.local.clone();
                let mut seeded_classes = Vec::new();
                if !missing.is_empty() {
                    let seeds = union::synthesize_seeds(
                        &kg,
                        &stage.local,
                        missing,
                        cfg.union.seeds_per_class,
                        seed ^ 0xc0de,
                    )
                    .map_err(|e| format!("device {device}: union seeding: {e}"))?;
                    seeded_classes = seeds
                        .category_counts(LabSimulator::label_column())
                        .map_err(|e| e.to_string())?
                        .into_keys()
                        .collect();
                    train_table
                        .append(&seeds)
                        .map_err(|e| format!("device {device}: {e}"))?;
                }
                let n_release = cfg.release_rows.unwrap_or(stage.shard_rows);
                let mut diag = None;
                let synth = match kind {
                    ModelKind::KinetGan => {
                        // The small-shard schedule (DESIGN.md §2.4);
                        // `model_epochs` still controls the budget. Seeded
                        // devices additionally draw sampling-time
                        // conditions with the union balance mode so their
                        // handful of seed rows is actually emitted.
                        let mut mcfg = KinetGanConfig::small_shard()
                            .with_epochs(cfg.model_epochs)
                            .with_seed(seed);
                        if !seeded_classes.is_empty() {
                            mcfg = mcfg.with_sample_balance(cfg.union.sample_balance);
                        }
                        let mut model = KinetGan::new(mcfg, kg);
                        model.fit(&train_table).map_err(|e| e.to_string())?;
                        diag = model.report().map(|r| DeviceTrainingDiag {
                            device_index: d,
                            device: device.clone(),
                            final_d_loss: r.d_loss.last().copied().unwrap_or(0.0) as f64,
                            final_g_loss: r.g_loss.last().copied().unwrap_or(0.0) as f64,
                            probe_accuracy: r.probe_accuracy,
                            final_validity: r.final_validity,
                            epochs: r.d_loss.len(),
                        });
                        model
                            .sample(n_release, seed ^ 1)
                            .map_err(|e| e.to_string())?
                    }
                    ModelKind::CtGan => {
                        let mcfg = BaselineConfig::fast_demo()
                            .with_epochs(cfg.model_epochs)
                            .with_seed(seed);
                        let mut model = CtGan::new(mcfg);
                        model.fit(&train_table).map_err(|e| e.to_string())?;
                        model
                            .sample(n_release, seed ^ 1)
                            .map_err(|e| e.to_string())?
                    }
                    ModelKind::Tvae => {
                        let mcfg = BaselineConfig::fast_demo()
                            .with_epochs(cfg.model_epochs)
                            .with_seed(seed);
                        let mut model = Tvae::new(mcfg);
                        model.fit(&train_table).map_err(|e| e.to_string())?;
                        model
                            .sample(n_release, seed ^ 1)
                            .map_err(|e| e.to_string())?
                    }
                };
                Ok(DeviceOutcome {
                    share: Some(synth),
                    prep_ms: t0.elapsed().as_secs_f64() * 1e3,
                    local_eval: None,
                    seeded_classes,
                    diag,
                })
            }
        }
    }

    /// Pools shares in device order, scores them, and assembles the report.
    fn aggregate(
        &self,
        stages: Vec<DeviceStage>,
        mut outcomes: Vec<DeviceOutcome>,
        union_classes: BTreeSet<String>,
        test: &Table,
        peak: &PeakRows,
        start: Instant,
    ) -> Result<FleetReport, String> {
        let cfg = &self.config;
        let kg = LabSimulator::knowledge_graph();
        let scope = LabSimulator::label_column();

        let mut pool: Option<Table> = None;
        let mut bytes_shared = 0usize;
        let mut validity = StreamValidity::new();
        let checker =
            KgTableChecker::new(kg.compiled(), kg.base_interner(), &LabSimulator::schema());
        let mut devices = Vec::with_capacity(cfg.n_devices);
        let mut local_accs = Vec::new();
        let mut local_recalls = Vec::new();
        let mut release_cov_sum = 0.0;

        for (d, (stage, outcome)) in stages.iter().zip(outcomes.iter_mut()).enumerate() {
            let mut share_rows = 0;
            // Take the share out of the outcome: the table moves into the
            // pool instead of being cloned (the unwindowed path would
            // otherwise hold every release twice during aggregation).
            if let Some(share) = outcome.share.take() {
                share_rows = share.n_rows();
                let mut wire = Vec::new();
                share
                    .write_csv(&mut wire)
                    .map_err(|e| format!("wire encoding failed: {e}"))?;
                bytes_shared += wire.len();
                // Score what actually crossed the wire chunk-by-chunk —
                // the same out-of-core path a real aggregator would use.
                let mut chunks = TableChunks::new(&share);
                use kinet_data::stream::ChunkSource;
                while let Some(chunk) = chunks
                    .next_chunk(cfg.chunk_rows)
                    .map_err(|e| e.to_string())?
                {
                    validity
                        .observe(&checker, &chunk)
                        .map_err(|e| e.to_string())?;
                }
                if !union_classes.is_empty() {
                    let present = share
                        .category_counts(scope)
                        .map_err(|e| e.to_string())?
                        .into_keys()
                        .filter(|c| union_classes.contains(c))
                        .count();
                    release_cov_sum += present as f64 / union_classes.len() as f64;
                }
                match &mut pool {
                    Some(p) => p
                        .append(&share)
                        .map_err(|e| format!("pooling failed: {e}"))?,
                    None => pool = Some(share),
                }
            }
            if let Some((acc, recall)) = outcome.local_eval {
                local_accs.push(acc);
                local_recalls.push(recall);
            }
            devices.push(DeviceReport {
                device_index: d,
                device: stage.device.clone(),
                shard_rows: stage.shard_rows,
                shard_classes: stage.vocab.iter().cloned().collect(),
                seeded_classes: outcome.seeded_classes.clone(),
                share_rows,
                prep_ms: outcome.prep_ms,
                local_accuracy: outcome.local_eval.map(|(a, _)| a),
                local_attack_recall: outcome.local_eval.map(|(_, r)| r),
                diag: outcome.diag.clone(),
            });
        }

        let (global_accuracy, attack_recall, pool_kg_validity, pool_rows, pool_class_counts) =
            match (&cfg.policy, &pool) {
                (SharingPolicy::LocalOnly, _) => {
                    let n = local_accs.len().max(1) as f64;
                    (
                        local_accs.iter().sum::<f64>() / n,
                        local_recalls.iter().sum::<f64>() / n,
                        1.0,
                        0,
                        Vec::new(),
                    )
                }
                (_, Some(pool)) => {
                    let eval = evaluate_nids(
                        pool,
                        test,
                        test,
                        LabSimulator::label_column(),
                        &LabSimulator::attack_events(),
                    )
                    .map_err(|e| format!("global evaluation failed: {e}"))?;
                    let counts = pool
                        .category_counts(scope)
                        .map_err(|e| format!("pool label histogram failed: {e}"))?
                        .into_iter()
                        .collect();
                    (
                        eval.accuracy,
                        eval.attack_recall,
                        validity.rate(),
                        pool.n_rows(),
                        counts,
                    )
                }
                (_, None) => return Err("no device shared any data".to_string()),
            };

        let union_report = if cfg.union.enabled {
            let n = cfg.n_devices as f64;
            let denom = union_classes.len().max(1) as f64;
            let coverage_before = stages
                .iter()
                .map(|s| {
                    s.vocab
                        .iter()
                        .filter(|c| union_classes.contains(*c))
                        .count() as f64
                })
                .sum::<f64>()
                / (n * denom);
            let coverage_after = stages
                .iter()
                .zip(&outcomes)
                .map(|(s, o)| {
                    let covered: BTreeSet<&String> = s
                        .vocab
                        .iter()
                        .chain(&o.seeded_classes)
                        .filter(|c| union_classes.contains(*c))
                        .collect();
                    covered.len() as f64
                })
                .sum::<f64>()
                / (n * denom);
            UnionReport {
                enabled: true,
                classes: union_classes.iter().cloned().collect(),
                devices_opted_in: (0..cfg.n_devices)
                    .filter(|&d| cfg.union.participates(d))
                    .count(),
                seeded_pairs: outcomes.iter().map(|o| o.seeded_classes.len()).sum(),
                coverage_before,
                coverage_after,
                release_coverage: release_cov_sum / n,
            }
        } else {
            UnionReport::default()
        };

        let prep_sum: f64 = outcomes.iter().map(|o| o.prep_ms).sum();
        Ok(FleetReport {
            policy: cfg.policy.label(),
            n_devices: cfg.n_devices,
            rows_per_device: cfg.rows_per_device,
            chunk_rows: cfg.chunk_rows,
            global_accuracy,
            attack_recall,
            bytes_shared,
            mean_device_prep_ms: prep_sum / outcomes.len().max(1) as f64,
            pool_kg_validity,
            pool_rows,
            pool_class_counts,
            peak_decoded_rows: peak.peak(),
            union: union_report,
            devices,
            total_wall_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnionConfig;

    #[test]
    fn raw_fleet_end_to_end() {
        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run()
            .unwrap();
        assert_eq!(report.n_devices, 2);
        assert!(report.global_accuracy > 0.5, "{report}");
        assert!(report.bytes_shared > 1000);
        assert_eq!(report.policy, "raw");
        assert!(
            (report.pool_kg_validity - 1.0).abs() < 1e-9,
            "simulator output satisfies its own KG: {report}"
        );
        assert_eq!(report.devices.len(), 2);
        assert!(report.devices.iter().all(|d| d.shard_rows == 250));
    }

    #[test]
    fn local_only_shares_nothing() {
        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::LocalOnly))
            .run()
            .unwrap();
        assert_eq!(report.bytes_shared, 0);
        assert_eq!(report.pool_rows, 0);
        assert!(report.global_accuracy > 0.0);
        assert!(report.devices.iter().all(|d| d.local_accuracy.is_some()));
    }

    #[test]
    fn bounded_window_bounds_peak_decoded_rows() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.rows_per_device = 2000;
        cfg.chunk_rows = 128;
        cfg.device_window = Some(64);
        let report = FleetSim::new(cfg).run().unwrap();
        // Residency = one chunk in flight + the reservoir window; the 2000
        // decoded rows of the eager path must never exist at once.
        assert!(
            report.peak_decoded_rows <= 128 + 64,
            "peak {} exceeds chunk + window",
            report.peak_decoded_rows
        );
        assert_eq!(report.devices[0].share_rows, 64);
        assert_eq!(report.devices[0].shard_rows, 2000);
    }

    #[test]
    fn eager_window_matches_shard() {
        let report = FleetSim::new(FleetConfig::fast(SharingPolicy::Raw))
            .run()
            .unwrap();
        // No window cap: the share is the whole shard, peak reflects it.
        assert_eq!(report.devices[0].share_rows, 250);
        assert!(report.peak_decoded_rows >= 250);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.chunk_rows = 0;
        assert!(FleetSim::new(cfg).run().is_err());
    }

    #[test]
    fn union_vocabs_surface_in_report() {
        // Raw policy skips training, so this exercises the vocabulary
        // exchange and the report plumbing cheaply. Device 1 is benign-only.
        let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
        cfg.device_attack_fraction = vec![(1, 0.0)];
        cfg.union = UnionConfig::enabled();
        let report = FleetSim::new(cfg).run().unwrap();
        assert!(report.union.enabled);
        assert!(!report.union.classes.is_empty());
        assert!(report.union.coverage_before <= 1.0);
        assert!(report.union.devices_opted_in == 2);
        // Raw sharing performs no seeding.
        assert_eq!(report.union.seeded_pairs, 0);
        assert_eq!(report.union.coverage_before, report.union.coverage_after);
    }
}
