//! Integration tests of the condition-union protocol and the fleet's
//! determinism contract.

use kinet_fleet::{FleetConfig, FleetSim, ModelKind, SharingPolicy, UnionConfig};
use kinet_tensor::pool::with_threads;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union merging is a pure set fold: any permutation of the device
    /// vocabularies produces the identical union, and every union class
    /// traces back to at least one device.
    #[test]
    fn union_merge_is_order_insensitive(
        vocabs in prop::collection::vec(
            prop::collection::btree_set(
                prop::sample::select(vec![
                    "heartbeat", "dns_lookup", "motion_detected", "tag_sync",
                    "port_scan", "traffic_flooding", "cve_1999_0003",
                ]),
                0..6,
            ),
            0..8,
        ),
        rotation in 0usize..8,
    ) {
        let owned: Vec<BTreeSet<String>> = vocabs
            .iter()
            .map(|v| v.iter().map(|s| s.to_string()).collect())
            .collect();
        let forward = kinet_fleet::union::merge_vocabs(owned.iter());
        // A rotated (and reversed) arrival order must not change the union.
        let mut rotated: Vec<&BTreeSet<String>> = owned.iter().collect();
        if !rotated.is_empty() {
            let by = rotation % rotated.len();
            rotated.rotate_left(by);
            rotated.reverse();
        }
        let backward = kinet_fleet::union::merge_vocabs(rotated.into_iter());
        prop_assert_eq!(&forward, &backward);
        // Soundness: every union class appears in some vocabulary, and
        // every vocabulary is contained in the union.
        for class in &forward {
            prop_assert!(owned.iter().any(|v| v.contains(class)));
        }
        for v in &owned {
            prop_assert!(v.is_subset(&forward));
        }
    }

    /// The missing-set is exactly the union minus the local vocabulary.
    #[test]
    fn missing_classes_partition_the_union(
        local in prop::collection::btree_set(
            prop::sample::select(vec!["a", "b", "c", "d", "e"]), 0..5),
        extra in prop::collection::btree_set(
            prop::sample::select(vec!["a", "b", "c", "d", "e", "f", "g"]), 0..6),
    ) {
        let local: BTreeSet<String> = local.iter().map(|s| s.to_string()).collect();
        let extra: BTreeSet<String> = extra.iter().map(|s| s.to_string()).collect();
        let union = kinet_fleet::union::merge_vocabs([&local, &extra]);
        let missing = kinet_fleet::union::missing_classes(&local, &union);
        for m in &missing {
            prop_assert!(!local.contains(m));
            prop_assert!(union.contains(m));
        }
        let covered: BTreeSet<String> =
            local.iter().cloned().chain(missing.iter().cloned()).collect();
        prop_assert_eq!(covered, union);
    }
}

/// The vocabulary scan and union exchange are deterministic for every
/// `KINET_THREADS` value: the full deterministic fingerprint (pool
/// histograms, byte counts, union coverage, per-device classes) must be
/// bit-identical whether devices run on 1, 2, or 4 workers.
#[test]
fn fleet_fingerprint_invariant_across_thread_counts() {
    let mut cfg = FleetConfig::fast(SharingPolicy::Synthetic(ModelKind::KinetGan));
    cfg.n_devices = 3;
    cfg.rows_per_device = 220;
    cfg.model_epochs = 2;
    cfg.chunk_rows = 64;
    cfg.device_attack_fraction = vec![(1, 0.0), (2, 0.0)];
    cfg.union = UnionConfig::enabled();
    let fingerprints: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            with_threads(t, || {
                FleetSim::new(cfg.clone())
                    .run()
                    .unwrap()
                    .deterministic_fingerprint()
            })
        })
        .collect();
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 threads");
    assert_eq!(fingerprints[0], fingerprints[2], "1 vs 4 threads");
}

/// The headline union property: on a crafted class-skewed split (three of
/// four devices never observe a single attack), switching the protocol on
/// at the same seed strictly improves pooled attack recall, and the
/// benign-only devices demonstrably emit attack classes they never saw.
#[test]
fn union_recovers_attack_recall_on_skewed_split() {
    let base = FleetConfig {
        n_devices: 4,
        rows_per_device: 400,
        test_records: 800,
        policy: SharingPolicy::Synthetic(ModelKind::KinetGan),
        model_epochs: 60,
        seed: 42,
        // Devices 1–3 are benign-only: without the union protocol their
        // generators cannot emit any attack class.
        device_attack_fraction: vec![(1, 0.0), (2, 0.0), (3, 0.0)],
        ..FleetConfig::default()
    };
    let mut with_union = base.clone();
    with_union.union = UnionConfig::enabled();

    let off = FleetSim::new(base).run().unwrap();
    let on = FleetSim::new(with_union).run().unwrap();
    println!("union off: {off}");
    println!("union on:  {on}");

    let attacks = kinet_datasets::lab::LabSimulator::attack_events();
    // The union must actually have been exercised: every benign-only
    // device seeded with (at least) all three attack classes — shards are
    // single-device streams, so device-specific benign classes (a camera
    // never witnesses `lamp_on`) are legitimately seeded as well.
    assert!(on.union.enabled && !off.union.enabled);
    assert!(on.union.seeded_pairs >= 9, "{:?}", on.union);
    assert!(
        on.union.coverage_after > on.union.coverage_before,
        "{:?}",
        on.union
    );
    assert!(
        (on.union.coverage_after - 1.0).abs() < 1e-9,
        "seeding completes coverage: {:?}",
        on.union
    );
    // Benign-only devices are seeded with every attack class.
    for d in &on.devices[1..] {
        for attack in &attacks {
            assert!(
                d.seeded_classes.iter().any(|c| c == attack),
                "device {} missing attack seed {attack}: {:?}",
                d.device_index,
                d.seeded_classes
            );
        }
    }
    assert!(
        on.union.release_coverage > off_release_coverage_bound(&off),
        "union releases cover more classes: on {:.3}",
        on.union.release_coverage
    );
    // More attack training rows reach the aggregator…
    let on_attacks = on.pool_attack_count(&attacks);
    let off_attacks = off.pool_attack_count(&attacks);
    assert!(
        on_attacks > off_attacks,
        "pooled attack rows: union on {on_attacks} vs off {off_attacks}"
    );
    // …and the deployed detector strictly improves on attack recall at the
    // same seed.
    assert!(
        on.attack_recall > off.attack_recall,
        "attack recall must strictly improve: on {:.3} vs off {:.3}",
        on.attack_recall,
        off.attack_recall
    );
    // The protocol must not wreck overall accuracy or semantic validity.
    assert!(on.global_accuracy >= 0.5, "{on}");
    assert!(on.pool_kg_validity >= 0.5, "{on}");
}

/// With the protocol off, release coverage is reported as zero; helper to
/// keep the assertion self-describing.
fn off_release_coverage_bound(off: &kinet_fleet::FleetReport) -> f64 {
    assert_eq!(off.union.release_coverage, 0.0);
    0.0
}

/// Opted-out devices receive no seeds even when the protocol runs.
#[test]
fn opt_out_devices_are_not_seeded() {
    let mut cfg = FleetConfig::fast(SharingPolicy::Synthetic(ModelKind::KinetGan));
    cfg.n_devices = 3;
    cfg.rows_per_device = 220;
    cfg.model_epochs = 2;
    cfg.device_attack_fraction = vec![(1, 0.0), (2, 0.0)];
    cfg.union = UnionConfig::enabled();
    cfg.union.opt_out = vec![2];
    let report = FleetSim::new(cfg).run().unwrap();
    assert_eq!(report.union.devices_opted_in, 2);
    assert!(
        !report.devices[1].seeded_classes.is_empty(),
        "participating benign-only device is seeded: {:?}",
        report.devices[1]
    );
    assert!(
        report.devices[2].seeded_classes.is_empty(),
        "opted-out device stays unseeded: {:?}",
        report.devices[2]
    );
}
