//! Integration tests of the fault-injection/recovery layer's determinism
//! contract: a chaotic round is exactly as bit-reproducible as a healthy
//! one, and quorum verdicts never depend on completion order.

use kinet_fleet::resilience::check_quorum;
use kinet_fleet::{
    DeviceFaultSpec, FaultConfig, FaultKind, FaultRates, FleetConfig, FleetError, FleetSim,
    ModelKind, ResilienceConfig, SharingPolicy, UnionConfig,
};
use kinet_tensor::pool::with_threads;
use proptest::prelude::*;

/// A non-trivial fault plan over a fast synthetic fleet: a transient
/// acquire crash (exercises retry + backoff), a straggler past the budget
/// (exercises the virtual clock), a NaN-poisoned share (exercises
/// quarantine), and a dropped vocab message (exercises union fallback).
fn chaotic_config() -> FleetConfig {
    let mut cfg = FleetConfig::fast(SharingPolicy::Synthetic(ModelKind::KinetGan));
    cfg.n_devices = 4;
    cfg.rows_per_device = 220;
    cfg.model_epochs = 2;
    cfg.chunk_rows = 64;
    cfg.device_attack_fraction = vec![(1, 0.0), (2, 0.0), (3, 0.0)];
    cfg.union = UnionConfig::enabled();
    cfg.fault = FaultConfig::scripted(vec![
        DeviceFaultSpec::transient(1, FaultKind::CrashAcquire, 1).with_magnitude(50),
        DeviceFaultSpec::transient(2, FaultKind::Straggle, 1).with_magnitude(3000),
        DeviceFaultSpec::permanent(3, FaultKind::PoisonShareNan),
        DeviceFaultSpec::permanent(0, FaultKind::DropVocab),
    ]);
    cfg.resilience = ResilienceConfig {
        quorum_frac: 0.5,
        ..ResilienceConfig::default()
    };
    cfg
}

/// The determinism-under-faults contract: retries, backoff ticks,
/// quarantines, degraded lists, and the union fallback are all folded into
/// the fingerprint, and the whole thing is bit-identical at 1, 2, and 4
/// workers.
#[test]
fn faulted_fleet_fingerprint_invariant_across_thread_counts() {
    let cfg = chaotic_config();
    let reports: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&t| with_threads(t, || FleetSim::new(cfg.clone()).run().unwrap()))
        .collect();
    let fp: Vec<String> = reports
        .iter()
        .map(|r| r.deterministic_fingerprint())
        .collect();
    assert_eq!(fp[0], fp[1], "1 vs 2 threads");
    assert_eq!(fp[0], fp[2], "1 vs 4 threads");
    // The plan actually fired — this is not a vacuous fingerprint match.
    let fault = &reports[0].fault;
    assert!(fault.enabled);
    assert_eq!(fault.injected.len(), 4, "{:?}", fault.injected);
    assert!(!fault.observed.is_empty());
    assert!(
        fault.retries >= 2,
        "crash + straggler both retried: {fault:?}"
    );
    assert_eq!(fault.quarantined.len(), 1, "{:?}", fault.quarantined);
    assert_eq!(fault.quarantined[0].0, 3);
    assert!(
        fault.degraded.is_empty(),
        "everything healed or quarantined"
    );
    assert_eq!(fault.devices_reported, 3);
    assert!(fault.virtual_ticks > 0, "straggle and backoff spent ticks");
}

/// Random-rate fault derivation is part of the same contract: the plan is
/// derived before any worker starts, so even probabilistic chaos is
/// thread-count invariant.
#[test]
fn random_rate_faults_are_thread_count_invariant() {
    let mut cfg = FleetConfig::fast(SharingPolicy::Raw);
    cfg.n_devices = 6;
    cfg.fault = FaultConfig {
        enabled: true,
        specs: Vec::new(),
        rates: FaultRates {
            crash: 0.3,
            straggle: 0.4,
            ..FaultRates::default()
        },
        transient_attempts: 1,
    };
    cfg.resilience.quorum_frac = 0.5;
    let fp: Vec<String> = [1usize, 4]
        .iter()
        .map(|&t| {
            with_threads(t, || {
                FleetSim::new(cfg.clone())
                    .run()
                    .unwrap()
                    .deterministic_fingerprint()
            })
        })
        .collect();
    assert_eq!(fp[0], fp[1]);
}

/// Re-running the identical chaotic config reproduces the identical
/// report — fault injection consumes no ambient entropy.
#[test]
fn chaotic_rounds_are_rerun_reproducible() {
    let cfg = chaotic_config();
    let a = FleetSim::new(cfg.clone()).run().unwrap();
    let b = FleetSim::new(cfg).run().unwrap();
    assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The quorum verdict is a function of the *set* of reporting devices:
    /// any completion/arrival order of the degraded list produces the
    /// identical verdict, and a `QuorumLost` always lists the degraded
    /// devices sorted by index.
    #[test]
    fn quorum_verdict_invariant_to_completion_order(
        reported in prop::collection::vec(any::<bool>(), 1..12),
        quorum_frac in 0.0f64..=1.0,
        rotation in 0usize..12,
    ) {
        let cfg = ResilienceConfig {
            quorum_frac,
            ..ResilienceConfig::default()
        };
        // Degraded devices in index order, then in an arbitrary rotated +
        // reversed "completion order".
        let degraded: Vec<(usize, String)> = reported
            .iter()
            .enumerate()
            .filter(|(_, r)| !**r)
            .map(|(d, _)| (d, format!("device {d} failed")))
            .collect();
        let mut shuffled = degraded.clone();
        if !shuffled.is_empty() {
            let by = rotation % shuffled.len();
            shuffled.rotate_left(by);
            shuffled.reverse();
        }
        let a = check_quorum(&reported, &degraded, &cfg);
        let b = check_quorum(&reported, &shuffled, &cfg);
        match (a, b) {
            (Ok(()), Ok(())) => {}
            (Err(ea), Err(eb)) => {
                // Same typed verdict, byte for byte, regardless of arrival
                // order — the degraded list is canonicalized.
                prop_assert_eq!(ea.to_string(), eb.to_string());
                if let FleetError::QuorumLost { degraded: listed, reported: ok, required, n_devices } = ea {
                    prop_assert!(listed.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by device");
                    prop_assert!(ok < required);
                    prop_assert_eq!(n_devices, reported.len());
                    prop_assert_eq!(ok, reported.iter().filter(|&&r| r).count());
                }
            }
            (a, b) => prop_assert!(false, "verdicts diverged: {a:?} vs {b:?}"),
        }
    }

    /// `quorum_required` is monotone in the fraction, rounds up, and never
    /// exceeds the fleet (nor hits zero on a live fleet).
    #[test]
    fn quorum_required_is_well_behaved(
        frac in 0.0f64..=1.0,
        n in 0usize..64,
    ) {
        let cfg = ResilienceConfig { quorum_frac: frac, ..ResilienceConfig::default() };
        let req = cfg.quorum_required(n);
        if n == 0 {
            prop_assert_eq!(req, 0);
        } else {
            prop_assert!((1..=n).contains(&req));
            prop_assert!(req as f64 + 1.0 > frac * n as f64, "ceil lower bound");
        }
    }
}
