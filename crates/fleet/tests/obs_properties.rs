//! Property and regression tests of the observability determinism
//! contract (DESIGN.md §2.10): journal bytes are invariant across
//! worker-pool sizes for arbitrary scoped workloads, and turning the
//! layer on never perturbs a fleet round's deterministic fingerprint.
//!
//! Sessions are exclusive (a global lock serializes them), so these
//! tests are safe under the default parallel test runner — they just
//! queue behind one another.

use kinet_fleet::schedule::run_indexed_settled;
use kinet_fleet::{
    DeviceFaultSpec, FaultConfig, FaultKind, FleetConfig, FleetSim, ModelKind, ResilienceConfig,
    SharingPolicy, UnionConfig,
};
use kinet_obs::{event, kv, span_close, span_open, start, with_scope, ObsConfig, Scope};
use kinet_tensor::pool::with_threads;
use proptest::prelude::*;

/// Runs one synthetic scoped workload under an obs session and returns
/// the canonical journal rendering plus the flight-recorder length.
///
/// The workload mimics the fleet's phase shape: the orchestrator opens a
/// span, `n_tasks` device closures race on the settled scheduler (each
/// emitting a deterministic burst of events from its own scope), and the
/// orchestrator closes the span after the barrier. Event payloads are
/// pure functions of the device index, never of scheduling order.
fn journal_of(
    threads: usize,
    n_tasks: usize,
    events_per_task: usize,
    ring: usize,
) -> (String, usize) {
    let session = start(ObsConfig {
        ring_capacity: ring,
    });
    with_threads(threads, || {
        with_scope(Scope::Orch, || {
            span_open("prop.round", 0, &[kv("tasks", n_tasks as u64)]);
        });
        run_indexed_settled(n_tasks, |d| {
            with_scope(Scope::Device(d as u32), || {
                for i in 0..events_per_task {
                    event(
                        "prop.step",
                        0,
                        &[kv("device", d as u64), kv("step", i as u64)],
                    );
                }
                d
            })
        });
        with_scope(Scope::Orch, || {
            span_close(
                "prop.round",
                0,
                &[
                    kv("ticks", 0),
                    kv("rows", (n_tasks * events_per_task) as u64),
                ],
            );
        });
    });
    let capture = session.finish();
    (capture.journal.render(), capture.ring.len())
}

/// The faulted-round configuration from the chaos suite: retries,
/// quarantine, and union fallback all fire, so the instrumented code
/// paths this crate added in PR 10 are actually exercised.
fn faulted_config() -> FleetConfig {
    let mut cfg = FleetConfig::fast(SharingPolicy::Synthetic(ModelKind::KinetGan));
    cfg.n_devices = 4;
    cfg.rows_per_device = 220;
    cfg.model_epochs = 2;
    cfg.chunk_rows = 64;
    cfg.device_attack_fraction = vec![(1, 0.0), (2, 0.0), (3, 0.0)];
    cfg.union = UnionConfig::enabled();
    cfg.fault = FaultConfig::scripted(vec![
        DeviceFaultSpec::transient(1, FaultKind::CrashAcquire, 1).with_magnitude(50),
        DeviceFaultSpec::permanent(3, FaultKind::PoisonShareNan),
    ]);
    cfg.resilience = ResilienceConfig {
        quorum_frac: 0.5,
        min_share_validity: 0.0,
        ..ResilienceConfig::default()
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Journal bytes are identical across 1, 2, and 4 workers for any
    /// task fan-out, per-task event burst, and ring capacity — the
    /// (scope, seq) merge order fully hides the scheduler interleaving.
    #[test]
    fn journal_bytes_invariant_across_thread_counts(
        n_tasks in 1usize..9,
        events_per_task in 0usize..6,
        ring in prop::sample::select(vec![1usize, 4, 64, 256]),
    ) {
        let (r1, len1) = journal_of(1, n_tasks, events_per_task, ring);
        let (r2, len2) = journal_of(2, n_tasks, events_per_task, ring);
        let (r4, len4) = journal_of(4, n_tasks, events_per_task, ring);
        prop_assert_eq!(&r1, &r2, "1 vs 2 workers");
        prop_assert_eq!(&r1, &r4, "1 vs 4 workers");
        // The flight recorder is bounded by its capacity and holds the
        // same count regardless of worker parallelism.
        let total = 2 + n_tasks * events_per_task;
        prop_assert_eq!(len1, total.min(ring));
        prop_assert_eq!(len2, len1);
        prop_assert_eq!(len4, len1);
        // The journal itself is unbounded: every record survives merge.
        prop_assert_eq!(r1.lines().count(), total);
    }
}

/// Regression: enabling observability around a faulted round leaves the
/// round's deterministic fingerprint byte-identical — the taps read
/// state, they never steer it.
#[test]
fn faulted_round_fingerprint_identical_obs_on_vs_off() {
    let cfg = faulted_config();
    let plain = with_threads(2, || FleetSim::new(cfg.clone()).run().unwrap());
    let session = start(ObsConfig::default());
    let observed = with_threads(2, || FleetSim::new(cfg.clone()).run().unwrap());
    let capture = session.finish();
    assert_eq!(
        plain.deterministic_fingerprint(),
        observed.deterministic_fingerprint(),
        "observability must be a pure read of the round"
    );
    // The session actually saw the round: retries and quarantines fired.
    assert!(
        capture.journal.events_for("fleet.retry").count() > 0,
        "scripted transient crash should surface as a retry event"
    );
    assert!(
        capture.journal.events_for("fleet.quarantine").count() > 0,
        "poisoned share should surface as a quarantine event"
    );
    assert!(!capture.journal.render().is_empty());
}

/// The instrumented journal itself is thread-count-invariant for a real
/// faulted round, not just for synthetic workloads.
#[test]
fn faulted_round_journal_bytes_invariant() {
    let cfg = faulted_config();
    let mut renders = Vec::new();
    for threads in [1usize, 2, 4] {
        let session = start(ObsConfig::default());
        with_threads(threads, || FleetSim::new(cfg.clone()).run().unwrap());
        renders.push(session.finish().journal.render());
    }
    assert_eq!(renders[0], renders[1], "1 vs 2 workers");
    assert_eq!(renders[0], renders[2], "1 vs 4 workers");
}
