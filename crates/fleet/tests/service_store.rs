//! Property tests for the durable snapshot store: under any single
//! injected storage fault — torn write, flipped bit, stale (dropped)
//! write, lost rename — `SnapshotStore::load_latest` returns the newest
//! *intact* generation with its exact payload, or a typed answer. It
//! never returns garbage.

use kinet_fleet::storage::{decode_record, encode_record, FaultStorage, MemStorage};
use kinet_fleet::{SnapshotStore, StorageFaultKind, StorageFaultSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn load_latest_returns_newest_intact_or_nothing(
        generations in 1usize..5,
        kind_index in 0usize..4,
        write_index in 0usize..5,
        magnitude in 0u64..512,
    ) {
        let kind = StorageFaultKind::all()[kind_index];
        let spec = StorageFaultSpec::new(write_index, kind).with_magnitude(magnitude);
        let mut store = SnapshotStore::new(Box::new(FaultStorage::new(
            MemStorage::new(),
            vec![spec],
        )));
        let payloads: Vec<Vec<u8>> = (1..=generations)
            .map(|g| format!("generation {g} payload {}", "x".repeat(g * 7)).into_bytes())
            .collect();
        for (i, payload) in payloads.iter().enumerate() {
            // Every fault kind is silent at commit time — that is the
            // failure mode being modeled.
            store.commit((i + 1) as u64, payload).unwrap();
        }

        // Exactly one write was damaged (if the fault's write index was
        // reached at all); every other generation must survive.
        let damaged = (write_index < generations).then_some(write_index as u64 + 1);
        let newest_intact = (1..=generations as u64).rev().find(|g| Some(*g) != damaged);

        let loaded = store.load_latest().unwrap();
        match newest_intact {
            Some(g) => {
                let snapshot = loaded.expect("an intact generation exists");
                prop_assert_eq!(snapshot.generation, g);
                prop_assert_eq!(&snapshot.payload, &payloads[(g - 1) as usize]);
            }
            None => prop_assert!(loaded.is_none(), "no intact generation to return"),
        }

        // The recovery scan walks newest-first and stops at the first
        // intact record, so a rejection is visible exactly when the
        // *newest* generation was damaged in place (torn/flipped); stale
        // and lost writes leave no object to reject.
        let expect_rejection = damaged == Some(generations as u64)
            && matches!(kind, StorageFaultKind::TornWrite | StorageFaultKind::BitFlip);
        prop_assert_eq!(store.rejected().len(), usize::from(expect_rejection));
        prop_assert_eq!(store.injected_faults().len(), usize::from(damaged.is_some()));
    }

    #[test]
    fn single_bit_flips_never_smuggle_a_payload(
        payload in prop::collection::vec(0u8..=255, 0..200),
        flip_at in any::<usize>(),
        generation in 0u64..1_000_000,
    ) {
        let record = encode_record(generation, &payload);
        let (g, p) = decode_record(&record).expect("intact record decodes");
        prop_assert_eq!(g, generation);
        prop_assert_eq!(p, &payload[..]);

        let mut bad = record.clone();
        let i = flip_at % bad.len();
        bad[i] ^= 1;
        match decode_record(&bad) {
            // Almost every flip is caught right here (magic, length,
            // checksum, or field parse).
            Err(_) => {}
            // The one survivable flip is inside the generation digits —
            // the checksum covers only the payload. The payload must
            // still be exact and the stamp visibly different, which is
            // precisely what `SnapshotStore`'s name-vs-stamp check
            // rejects one layer up.
            Ok((g2, p2)) => {
                prop_assert_eq!(p2, &payload[..]);
                prop_assert_ne!(g2, generation);
            }
        }
    }
}
