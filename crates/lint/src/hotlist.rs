//! The hot-path manifest: `crates/lint/hotlist.toml` names the functions
//! whose bodies the allocation lint patrols (the PR 2–3 allocation-free
//! contracts: tape backward, the GEMM kernel, the `KgTrainPipeline` batch
//! loop, the in-place optimizers).
//!
//! The file is a tiny TOML subset parsed by hand (no TOML crate in the
//! offline build): `[[hot]]` array-of-tables entries with a `file` string
//! and a `functions` string array. Unknown keys or malformed lines are
//! hard errors — a silently ignored manifest line would silently drop
//! lint coverage.

/// One manifest entry: a file and the hot functions inside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotFile {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// `fn` names whose bodies must stay allocation-free.
    pub functions: Vec<String>,
}

/// Parses the manifest. See the module docs for the accepted grammar.
///
/// # Errors
///
/// Returns a `line: message` string on any line that is not a comment,
/// blank, `[[hot]]` header, `file = "…"`, or `functions = ["…", …]`.
pub fn parse_hotlist(text: &str) -> Result<Vec<HotFile>, String> {
    let mut out: Vec<HotFile> = Vec::new();
    let mut open = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[hot]]" {
            if open {
                validate_entry(out.last().unwrap(), lineno)?;
            }
            out.push(HotFile {
                file: String::new(),
                functions: Vec::new(),
            });
            open = true;
            continue;
        }
        let entry = out
            .last_mut()
            .ok_or_else(|| format!("{lineno}: key outside a [[hot]] entry"))?;
        if let Some(v) = strip_key(line, "file") {
            entry.file = parse_string(v).ok_or_else(|| format!("{lineno}: file wants a string"))?;
        } else if let Some(v) = strip_key(line, "functions") {
            entry.functions = parse_string_array(v)
                .ok_or_else(|| format!("{lineno}: functions wants [\"…\"]"))?;
        } else {
            return Err(format!("{lineno}: unrecognized manifest line {line:?}"));
        }
    }
    if let Some(last) = out.last() {
        validate_entry(last, text.lines().count())?;
    }
    Ok(out)
}

fn validate_entry(e: &HotFile, lineno: usize) -> Result<(), String> {
    if e.file.is_empty() {
        return Err(format!("{lineno}: [[hot]] entry missing file"));
    }
    if e.functions.is_empty() {
        return Err(format!(
            "{lineno}: [[hot]] entry for {} lists no functions",
            e.file
        ));
    }
    Ok(())
}

fn strip_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(key)?.trim_start();
    rest.strip_prefix('=').map(str::trim)
}

fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    (!inner.contains('"')).then(|| inner.to_string())
}

pub(crate) fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item.trim()))
        .collect()
}

/// Parses the unsafe allowlist: one workspace-relative path per line, one
/// line per permitted `unsafe` site (a file with two sites appears twice);
/// `#` comments and blank lines are ignored.
pub fn parse_unsafe_allowlist(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_comments_and_blanks() {
        let text = r#"
# hot functions
[[hot]]
file = "crates/nn/src/tape.rs"
functions = ["backward"]

[[hot]]
file = "crates/tensor/src/kernel.rs"
functions = ["gemm", "gemm_rows"]
"#;
        let hot = parse_hotlist(text).unwrap();
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].file, "crates/nn/src/tape.rs");
        assert_eq!(hot[1].functions, ["gemm", "gemm_rows"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_hotlist("file = \"x\"\n").is_err(), "key before entry");
        assert!(
            parse_hotlist("[[hot]]\nfile = \"x\"\n").is_err(),
            "no functions"
        );
        assert!(
            parse_hotlist("[[hot]]\nfunctions = [\"f\"]\n").is_err(),
            "no file"
        );
        assert!(
            parse_hotlist("[[hot]]\nfile = \"x\"\nfunctions = [\"f\"]\nbogus : 3\n").is_err(),
            "unknown key"
        );
        assert!(
            parse_hotlist("[[hot]]\n[[hot]]\nfile = \"x\"\nfunctions = [\"f\"]\n").is_err(),
            "first entry empty"
        );
    }

    #[test]
    fn unsafe_allowlist_counts_lines() {
        let text = "# none yet\n\ncrates/x/src/a.rs\ncrates/x/src/a.rs\n";
        let list = parse_unsafe_allowlist(text);
        assert_eq!(list.len(), 2);
        assert!(parse_unsafe_allowlist("# empty\n").is_empty());
    }
}
