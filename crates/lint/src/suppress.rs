//! Inline suppression comments.
//!
//! Syntax (one per comment):
//!
//! ```text
//! // kinet-lint: allow(<rule>) — <reason>
//! ```
//!
//! The separator may be an em-dash, `--`, `-`, or `:`; the reason is
//! mandatory — a suppression without one is itself a violation
//! ([`crate::rules::RULE_SUPPRESSION`]), as is naming a rule the engine
//! does not know. A directive on its own line covers the next line holding
//! code (the annotate-above-the-declaration idiom — the comment may wrap
//! over several lines); a directive trailing code covers only its own
//! line. Either way, the named rule only.

use crate::lexer::Token;
use crate::rules::known_rule;

/// One parsed `kinet-lint: allow(...)` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule the directive names (not necessarily a known one).
    pub rule: String,
    /// The written justification; empty when missing.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// The code line this directive excuses: its own line for a directive
    /// trailing code, otherwise the next line holding any code (comment
    /// continuation lines in between are skipped).
    pub target: usize,
}

impl Suppression {
    /// `true` when this directive excuses a finding at `line`.
    pub fn covers(&self, line: usize) -> bool {
        line == self.line || line == self.target
    }
}

/// A malformed directive, surfaced as a finding by the engine.
#[derive(Clone, Debug)]
pub enum SuppressError {
    /// `allow(rule)` had no ` — reason` tail.
    MissingReason { rule: String, line: usize },
    /// The rule name is not in the engine's catalog.
    UnknownRule { rule: String, line: usize },
    /// `kinet-lint:` marker without a parsable `allow(...)`.
    Malformed { line: usize },
}

/// Extracts every suppression directive (and every malformed one) from a
/// token stream's comments.
pub fn parse_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<SuppressError>) {
    let mut ok = Vec::new();
    let mut errs = Vec::new();
    let code_lines: std::collections::BTreeSet<usize> = tokens
        .iter()
        .filter(|t| t.is_code())
        .map(|t| t.line)
        .collect();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        // The directive must open the comment (after the `//`/`/*`/doc
        // markers) — prose or doc examples *mentioning* the syntax
        // mid-comment are not directives.
        let mut body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        if let Some(stripped) = body.strip_suffix("*/") {
            body = stripped.trim_end();
        }
        let Some(rest) = body.strip_prefix("kinet-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            errs.push(SuppressError::Malformed { line: t.line });
            continue;
        };
        let Some(close) = args.find(')') else {
            errs.push(SuppressError::Malformed { line: t.line });
            continue;
        };
        let rule = args[..close].trim().to_string();
        if !known_rule(&rule) {
            errs.push(SuppressError::UnknownRule { rule, line: t.line });
            continue;
        }
        let tail = args[close + 1..].trim_start();
        let reason = ["—", "--", "-", ":"]
            .iter()
            .find_map(|sep| tail.strip_prefix(sep))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            errs.push(SuppressError::MissingReason { rule, line: t.line });
            continue;
        }
        let target = if code_lines.contains(&t.line) {
            t.line // trailing a statement: covers that statement only
        } else {
            // Annotate-above: the first code line below the comment block.
            code_lines
                .range(t.line + 1..)
                .next()
                .copied()
                .unwrap_or(t.line)
        };
        ok.push(Suppression {
            rule,
            reason: reason.to_string(),
            line: t.line,
            target,
        });
    }
    (ok, errs)
}

/// The suppression covering `rule` at `line`, if any (see
/// [`Suppression::covers`]).
pub fn covering<'a>(
    suppressions: &'a [Suppression],
    rule: &str,
    line: usize,
) -> Option<&'a Suppression> {
    suppressions
        .iter()
        .find(|s| s.rule == rule && s.covers(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::RULE_WALL_CLOCK;

    #[test]
    fn parses_reasoned_allow_with_every_separator() {
        for sep in ["—", "--", "-", ":"] {
            let src = format!("// kinet-lint: allow(wall-clock) {sep} report-only timing\nx();");
            let (ok, errs) = parse_suppressions(&lex(&src));
            assert!(errs.is_empty(), "sep {sep}");
            assert_eq!(ok.len(), 1);
            assert_eq!(ok[0].rule, RULE_WALL_CLOCK);
            assert_eq!(ok[0].reason, "report-only timing");
            assert!(
                covering(&ok, RULE_WALL_CLOCK, 2).is_some(),
                "covers next line"
            );
            assert!(
                covering(&ok, RULE_WALL_CLOCK, 3).is_none(),
                "two lines down"
            );
        }
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_errors() {
        let src = "// kinet-lint: allow(wall-clock)\n// kinet-lint: allow(made-up) — why\n";
        let (ok, errs) = parse_suppressions(&lex(src));
        assert!(ok.is_empty());
        assert_eq!(errs.len(), 2);
        assert!(
            matches!(&errs[0], SuppressError::MissingReason { rule, line: 1 } if rule == "wall-clock")
        );
        assert!(
            matches!(&errs[1], SuppressError::UnknownRule { rule, line: 2 } if rule == "made-up")
        );
    }

    #[test]
    fn directives_inside_strings_are_ignored() {
        let src = "let s = \"// kinet-lint: allow(wall-clock) — nope\";";
        let (ok, errs) = parse_suppressions(&lex(src));
        assert!(ok.is_empty() && errs.is_empty());
    }

    #[test]
    fn marker_without_allow_is_malformed() {
        let (ok, errs) = parse_suppressions(&lex("// kinet-lint: disable everything\n"));
        assert!(ok.is_empty());
        assert!(matches!(errs[0], SuppressError::Malformed { line: 1 }));
    }
}
