//! The rule catalog and per-file scanner.
//!
//! Every rule is a token-level pattern over the [`crate::lexer`] stream —
//! comments and string literals can never trip a code rule, and the
//! thread-knob rule is the only one that looks *inside* string literals
//! (the env-var name travels as a string). Scope policy lives in
//! [`LintConfig`]; see DESIGN.md §2.6 for the catalog rationale.

use crate::hotlist::HotFile;
use crate::lexer::{TokKind, Token};
use crate::report::Finding;
use crate::suppress::{covering, parse_suppressions, SuppressError, Suppression};

/// `HashMap`/`HashSet` iteration (or any hash-container declaration) in a
/// deterministic crate. Keyed lookups are fine; iteration order is not.
pub const RULE_NONDET_ITER: &str = "nondeterministic-iteration";
/// `Instant::now` / `SystemTime` outside allowlisted timing modules.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Any `unsafe` token without a `// SAFETY:` comment *and* an allowlist
/// entry. Never inline-suppressible.
pub const RULE_NO_UNSAFE: &str = "no-new-unsafe";
/// Allocation inside a `hotlist.toml` function body.
pub const RULE_HOT_ALLOC: &str = "hot-path-allocation";
/// `KINET_THREADS` / `num_threads` referenced outside the pool/schedule
/// modules that own the knob.
pub const RULE_THREAD_KNOB: &str = "thread-knob";
/// Malformed / reason-less / unknown-rule suppression comments.
pub const RULE_SUPPRESSION: &str = "suppression";
/// Allocation in a function *reachable from* a `hotlist.toml` root — the
/// interprocedural extension of [`RULE_HOT_ALLOC`] (see [`crate::reach`]).
/// Suppressible inline at the sink line.
pub const RULE_TRANS_ALLOC: &str = "transitive-allocation";
/// Wall-clock, hash-iteration, or thread-knob effects reachable from a
/// deterministic root (`reach.toml [taint]`). Suppressible inline at the
/// sink line.
pub const RULE_DETERMINISM_TAINT: &str = "determinism-taint";
/// Panic-capable sites (`unwrap`/`expect`/`panic!`/indexing) in functions
/// reachable from the resident serving path (`reach.toml [panic]`). Never
/// inline-suppressible — only a reasoned `panic_allowlist.txt` entry
/// clears a function, mirroring the no-new-unsafe discipline.
pub const RULE_PANIC_PATH: &str = "panic-path";

/// `true` for a rule name `allow(...)` may legally reference. `panic-path`
/// is included so the directive parses, but [`finalize`] never consults
/// inline allows for it — such a directive is always reported stale.
pub fn known_rule(name: &str) -> bool {
    matches!(
        name,
        RULE_NONDET_ITER
            | RULE_WALL_CLOCK
            | RULE_NO_UNSAFE
            | RULE_HOT_ALLOC
            | RULE_THREAD_KNOB
            | RULE_TRANS_ALLOC
            | RULE_DETERMINISM_TAINT
            | RULE_PANIC_PATH
    )
}

/// The enforced rule identifiers, in catalog order.
pub fn rule_catalog() -> Vec<String> {
    [
        RULE_NONDET_ITER,
        RULE_WALL_CLOCK,
        RULE_NO_UNSAFE,
        RULE_HOT_ALLOC,
        RULE_THREAD_KNOB,
        RULE_TRANS_ALLOC,
        RULE_DETERMINISM_TAINT,
        RULE_PANIC_PATH,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Scope policy + manifests for one lint run.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Crate directory names under `crates/` whose `src/` trees promise
    /// deterministic iteration (the bit-for-bit contract holders).
    pub deterministic_crates: Vec<String>,
    /// Path prefixes where wall-clock reads are legitimate (timing/report
    /// harnesses).
    pub wallclock_allow: Vec<String>,
    /// Path prefixes that may reference the thread knob (the modules that
    /// own it, plus this linter's own rule tables).
    pub thread_allow: Vec<String>,
    /// Allocation-free function manifest (`hotlist.toml`).
    pub hotlist: Vec<HotFile>,
    /// Committed `unsafe` allowlist: one path entry per permitted site.
    pub unsafe_allow: Vec<String>,
}

impl LintConfig {
    /// The repository's standing policy (manifests supplied by the caller;
    /// [`crate::load_workspace_config`] reads them from `crates/lint/`).
    pub fn repo_policy(hotlist: Vec<HotFile>, unsafe_allow: Vec<String>) -> Self {
        LintConfig {
            deterministic_crates: ["tensor", "nn", "kg", "data", "core", "fleet", "obs"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            wallclock_allow: vec![
                // The vendored bench harness is a timing shim by definition.
                "vendor/criterion/".into(),
                // Experiment/report drivers time their own phases.
                "crates/bench/".into(),
            ],
            thread_allow: vec![
                // The two modules that own the knob (ISSUE 6 contract).
                "crates/tensor/src/pool.rs".into(),
                "crates/fleet/src/schedule.rs".into(),
                // The linter's own rule tables spell the tokens they hunt.
                "crates/lint/src/".into(),
            ],
            hotlist,
            unsafe_allow,
        }
    }
}

/// One file's first-stage scan: local rule hits (suppressions not yet
/// applied), findings that are already final (`no-new-unsafe`, malformed
/// directives), the parsed suppressions, and the call-graph nodes
/// extracted from the file's items. Suppression resolution is deferred to
/// [`finalize`] so interprocedural findings landing in this file can use
/// (and thereby justify) the same inline allows.
pub struct FileScan {
    /// Workspace-relative path with forward slashes.
    pub relpath: String,
    raw: Vec<(String, usize, String)>,
    early: Vec<Finding>,
    suppressions: Vec<Suppression>,
    /// Call-graph nodes for [`crate::callgraph::CallGraph::build`].
    pub nodes: Vec<crate::callgraph::Node>,
}

/// Stage 1: lexes one file, runs every local rule, and extracts its call
/// graph nodes. `relpath` is workspace-relative with forward slashes —
/// scope decisions key off it.
pub fn scan_file(relpath: &str, src: &str, cfg: &LintConfig) -> FileScan {
    let tokens = crate::lexer::lex(src);
    let (suppressions, sup_errs) = parse_suppressions(&tokens);
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();

    let mut raw: Vec<(String, usize, String)> = Vec::new();
    if let Some(krate) = deterministic_crate(relpath, cfg) {
        nondet_iteration(&code, krate, &mut raw);
    }
    if !cfg.wallclock_allow.iter().any(|p| relpath.starts_with(p)) {
        wall_clock(&code, &mut raw);
    }
    if relpath.starts_with("crates/")
        && relpath.contains("/src/")
        && !cfg.thread_allow.iter().any(|p| relpath.starts_with(p))
    {
        thread_knob(&code, &mut raw);
    }
    for hot in cfg.hotlist.iter().filter(|h| h.file == relpath) {
        hot_path_alloc(&code, hot, &mut raw);
    }

    // no-new-unsafe is stricter: inline `allow` does not apply; only a
    // SAFETY comment plus a committed allowlist entry clears a site.
    let mut early = Vec::new();
    no_new_unsafe(relpath, &tokens, cfg, &mut early);
    suppression_diagnostics(relpath, &sup_errs, &mut early);

    let names = hash_bindings(&code);
    let test_scope = crate::callgraph::test_scoped_path(relpath);
    let nodes = crate::symbols::parse_items(&code)
        .into_iter()
        .map(|item| {
            let scan = item
                .body
                .map(|(s, e)| crate::callgraph::scan_body(&code[s..e], &names))
                .unwrap_or_default();
            crate::callgraph::Node {
                file: relpath.to_string(),
                item,
                test_scope,
                effects: scan.effects,
                calls: scan.calls,
            }
        })
        .collect();

    FileScan {
        relpath: relpath.to_string(),
        raw,
        early,
        suppressions,
        nodes,
    }
}

/// Stage 2: resolves a file's local hits plus its share of the
/// interprocedural findings (`inter`) against the file's inline
/// suppressions, then audits the suppressions themselves. `panic-path`
/// findings and findings arriving pre-suppressed pass through untouched —
/// the panic allowlist already decided them.
pub fn finalize(scan: FileScan, inter: Vec<Finding>) -> Vec<Finding> {
    let FileScan {
        relpath,
        raw,
        early,
        suppressions,
        nodes: _,
    } = scan;
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .map(|(rule, line, message)| {
            let sup = covering(&suppressions, &rule, line);
            Finding {
                rule,
                file: relpath.clone(),
                line,
                message,
                suppressed: sup.is_some(),
                reason: sup.map(|s| s.reason.clone()).unwrap_or_default(),
            }
        })
        .collect();
    for mut f in inter {
        if !f.suppressed && f.rule != RULE_PANIC_PATH {
            if let Some(sup) = covering(&suppressions, &f.rule, f.line) {
                f.suppressed = true;
                f.reason = sup.reason.clone();
            }
        }
        findings.push(f);
    }
    findings.extend(early);
    let resolved = findings.clone();
    unused_suppressions(&relpath, &suppressions, &resolved, &mut findings);
    findings
}

/// Lints one file's source with local rules only — [`scan_file`] +
/// [`finalize`] with no interprocedural findings. Unit-test surface and
/// the semantics PR 6 shipped; the workspace runner goes through the
/// two-stage API instead.
pub fn scan_source(relpath: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    finalize(scan_file(relpath, src, cfg), Vec::new())
}

/// The deterministic-crate name owning `relpath`, if any.
fn deterministic_crate<'a>(relpath: &str, cfg: &'a LintConfig) -> Option<&'a str> {
    cfg.deterministic_crates
        .iter()
        .map(String::as_str)
        .find(|c| relpath.starts_with(&format!("crates/{c}/src/")))
}

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Rule 1: hash-container declarations and iteration in deterministic
/// crates.
///
/// Two findings classes: (a) every `HashMap`/`HashSet` type mention or
/// constructor (`Foo<…>` / `Foo::…`) — annotate the lookup-only contract
/// or switch to a BTree container; (b) iteration over a binding whose
/// declaration named a hash container — `name.iter()` & friends within the
/// same statement, and `for … in name`.
fn nondet_iteration(code: &[&Token], krate: &str, out: &mut Vec<(String, usize, String)>) {
    let is_hash = |t: &Token| t.is_ident("HashMap") || t.is_ident("HashSet");
    // (a) declarations / constructors.
    for (i, t) in code.iter().enumerate() {
        if is_hash(t) {
            let next_lt = code.get(i + 1).is_some_and(|n| n.is_punct('<'));
            let next_path = code.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && code.get(i + 2).is_some_and(|n| n.is_punct(':'));
            if next_lt || next_path {
                out.push((
                    RULE_NONDET_ITER.to_string(),
                    t.line,
                    format!(
                        "{} in deterministic crate `{krate}`: iteration order is \
                         nondeterministic — use a BTree container or annotate the \
                         lookup-only contract",
                        t.text
                    ),
                ));
            }
        }
    }
    // Bindings whose type region or initializer names a hash container.
    let names = hash_bindings(code);
    // (b) iteration over those bindings.
    for site in hash_iter_sites(code, &names) {
        let message = match &site.method {
            None => format!("for-loop over hash container `{}`", site.name),
            Some(m) => format!("`{}.{m}()` iterates a hash container", site.name),
        };
        out.push((RULE_NONDET_ITER.to_string(), site.line, message));
    }
}

/// One iteration site over a known hash-container binding.
pub(crate) struct HashIterSite {
    /// 1-based line of the binding mention.
    pub line: usize,
    /// The binding name.
    pub name: String,
    /// The iterating method (`keys`, `iter`, …); `None` for a `for` loop
    /// directly over the binding.
    pub method: Option<String>,
}

/// Iteration sites over the given hash-container binding names:
/// `for … in name` loops and same-statement `name.<iter-method>()` calls.
/// Shared by the per-file rule (a) above and the determinism-taint effect
/// scan in [`crate::reach`].
pub(crate) fn hash_iter_sites(code: &[&Token], names: &[String]) -> Vec<HashIterSite> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !names.iter().any(|n| n == &t.text) {
            continue;
        }
        // `for … in name` / `for … in &mut name`.
        if preceded_by_for_in(code, i) {
            out.push(HashIterSite {
                line: t.line,
                name: t.text.clone(),
                method: None,
            });
            continue;
        }
        // Same-statement iteration-method call after the binding.
        for w in code[i + 1..].iter().take_while(|w| !stmt_end(w)) {
            if w.kind == TokKind::Ident && ITER_METHODS.contains(&w.text.as_str()) {
                out.push(HashIterSite {
                    line: t.line,
                    name: t.text.clone(),
                    method: Some(w.text.clone()),
                });
                break;
            }
        }
    }
    out
}

fn stmt_end(t: &Token) -> bool {
    t.is_punct(';') || t.is_punct('{')
}

/// `true` when `code[i]` sits in the head of `for … in [&][mut] code[i]`.
fn preceded_by_for_in(code: &[&Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = code[j - 1];
        if p.is_punct('&') || p.is_ident("mut") {
            j -= 1;
        } else {
            break;
        }
    }
    j > 0 && code[j - 1].is_ident("in")
}

/// Binding names whose declared type (or `let` initializer) names a hash
/// container: `name: …HashMap<…>…` fields/params/lets, and
/// `let [mut] name = …HashMap…;`.
pub(crate) fn hash_bindings(code: &[&Token]) -> Vec<String> {
    let mut names = Vec::new();
    let is_hash = |t: &Token| t.is_ident("HashMap") || t.is_ident("HashSet");
    for (i, t) in code.iter().enumerate() {
        // `name :` followed by a type region mentioning a hash container.
        if t.kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !code.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let mut depth = 0i32;
            for w in &code[i + 2..] {
                if depth == 0
                    && (stmt_end(w) || w.is_punct(',') || w.is_punct(')') || w.is_punct('='))
                {
                    break;
                }
                match () {
                    _ if w.is_punct('<') || w.is_punct('(') || w.is_punct('[') => depth += 1,
                    _ if w.is_punct('>') || w.is_punct(')') || w.is_punct(']') => depth -= 1,
                    _ => {}
                }
                if is_hash(w) {
                    names.push(t.text.clone());
                    break;
                }
            }
        }
        // `let [mut] name = … HashMap …` up to the statement end.
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = code.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if !code.get(j + 1).is_some_and(|n| n.is_punct('=')) {
                continue;
            }
            if code[j + 2..]
                .iter()
                .take_while(|w| !w.is_punct(';'))
                .any(|w| is_hash(w))
            {
                names.push(name.text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Wall-clock read sites: `Instant::now` (the call, not the type —
/// passing an already-taken `Instant` around is fine) and any
/// `SystemTime` mention. Shared by rule 2 and the taint effect scan.
pub(crate) fn wall_clock_sites(code: &[&Token]) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("Instant")
            && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push((t.line, "Instant::now()"));
        }
        if t.is_ident("SystemTime") {
            out.push((t.line, "SystemTime"));
        }
    }
    out
}

/// Rule 2: wall-clock reads.
fn wall_clock(code: &[&Token], out: &mut Vec<(String, usize, String)>) {
    for (line, what) in wall_clock_sites(code) {
        out.push((
            RULE_WALL_CLOCK.to_string(),
            line,
            format!("`{what}` outside an allowlisted timing module"),
        ));
    }
}

/// Thread-knob reference sites: the `num_threads` identifier and any
/// string literal carrying `KINET_THREADS`. Shared by rule 5 and the
/// taint effect scan.
pub(crate) fn thread_knob_sites(code: &[&Token]) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for t in code {
        if t.is_ident("num_threads") {
            out.push((t.line, "num_threads"));
        }
        if t.kind == TokKind::Str && t.text.contains("KINET_THREADS") {
            out.push((t.line, "KINET_THREADS"));
        }
    }
    out
}

/// Rule 5: thread-knob containment — the knob may only be read where the
/// pool owns it, so every other module inherits one consistent worker
/// count.
fn thread_knob(code: &[&Token], out: &mut Vec<(String, usize, String)>) {
    for (line, what) in thread_knob_sites(code) {
        let message = if what == "num_threads" {
            "`num_threads` referenced outside the pool/schedule modules".to_string()
        } else {
            "`KINET_THREADS` string referenced outside the pool/schedule modules".to_string()
        };
        out.push((RULE_THREAD_KNOB.to_string(), line, message));
    }
}

const ALLOC_IDENTS: [&str; 4] = ["clone", "to_vec", "collect", "to_string"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
const ALLOC_PATHS: [(&str, &str); 3] = [("Vec", "new"), ("String", "new"), ("Box", "new")];

/// Rule 4: allocation tokens inside a hotlisted function body. Body
/// ranges come from the same hardened extractor that feeds the call
/// graph ([`crate::symbols::fn_body`]).
fn hot_path_alloc(code: &[&Token], hot: &HotFile, out: &mut Vec<(String, usize, String)>) {
    for fname in &hot.functions {
        let mut found = false;
        let mut i = 0usize;
        while i + 1 < code.len() {
            if code[i].is_ident("fn") && code[i + 1].is_ident(fname) {
                if let Some((body_start, body_end)) = crate::symbols::fn_body(code, i + 2) {
                    found = true;
                    for (line, what) in alloc_sites(&code[body_start..body_end]) {
                        out.push((
                            RULE_HOT_ALLOC.to_string(),
                            line,
                            format!(
                                "`{what}` allocates inside hot function `{fname}` \
                                 (allocation-free contract)"
                            ),
                        ));
                    }
                    i = body_end;
                    continue;
                }
            }
            i += 1;
        }
        if !found {
            out.push((
                RULE_HOT_ALLOC.to_string(),
                1,
                format!(
                    "hotlist names `fn {fname}` but {} does not define it — \
                     update crates/lint/hotlist.toml so coverage does not rot",
                    hot.file
                ),
            ));
        }
    }
}

/// Allocation sites in a body: allocating method names, `vec!`/`format!`
/// macros, and `Vec::new`-style constructor paths. Shared by rule 4 and
/// the transitive-allocation effect scan in [`crate::reach`].
pub(crate) fn alloc_sites(body: &[&Token]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = if ALLOC_IDENTS.contains(&t.text.as_str()) {
            Some(t.text.clone())
        } else if ALLOC_MACROS.contains(&t.text.as_str())
            && body.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            Some(format!("{}!", t.text))
        } else if let Some((head, tail)) = ALLOC_PATHS.iter().find(|(head, _)| t.is_ident(head)) {
            (body.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && body.get(i + 3).is_some_and(|n| n.is_ident(tail)))
            .then(|| format!("{head}::{tail}"))
        } else {
            None
        };
        if let Some(what) = what {
            out.push((t.line, what));
        }
    }
    out
}

/// Rule 3: `unsafe` tokens. A site is only clean with BOTH a `SAFETY:`
/// comment (same line or the two lines above) and a committed allowlist
/// entry for the file; inline `allow` never applies.
fn no_new_unsafe(relpath: &str, tokens: &[Token], cfg: &LintConfig, out: &mut Vec<Finding>) {
    let safety_lines: Vec<usize> = tokens
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect();
    let budget = cfg
        .unsafe_allow
        .iter()
        .filter(|p| p.as_str() == relpath)
        .count();
    let mut seen = 0usize;
    for t in tokens.iter().filter(|t| t.is_code()) {
        if !t.is_ident("unsafe") {
            continue;
        }
        seen += 1;
        let has_safety = safety_lines.iter().any(|&l| l <= t.line && l + 2 >= t.line);
        let in_allowlist = seen <= budget;
        if has_safety && in_allowlist {
            continue;
        }
        let mut missing = Vec::new();
        if !has_safety {
            missing.push("a `// SAFETY:` comment");
        }
        if !in_allowlist {
            missing.push("an entry in crates/lint/unsafe_allowlist.txt");
        }
        out.push(Finding {
            rule: RULE_NO_UNSAFE.to_string(),
            file: relpath.to_string(),
            line: t.line,
            message: format!("`unsafe` without {}", missing.join(" and ")),
            suppressed: false,
            reason: String::new(),
        });
    }
}

/// Malformed suppression comments are findings themselves.
fn suppression_diagnostics(relpath: &str, errs: &[SuppressError], out: &mut Vec<Finding>) {
    for e in errs {
        let (line, message) = match e {
            SuppressError::MissingReason { rule, line } => (
                *line,
                format!("allow({rule}) without a written reason — every suppression must say why"),
            ),
            SuppressError::UnknownRule { rule, line } => {
                (*line, format!("allow({rule}) names an unknown rule"))
            }
            SuppressError::Malformed { line } => (
                *line,
                "kinet-lint directive is not `allow(<rule>) — <reason>`".to_string(),
            ),
        };
        out.push(Finding {
            rule: RULE_SUPPRESSION.to_string(),
            file: relpath.to_string(),
            line,
            message,
            suppressed: false,
            reason: String::new(),
        });
    }
}

/// A reasoned `allow` that matched no finding is dead weight (the code it
/// excused was fixed or moved) — flag it so annotations cannot rot.
fn unused_suppressions(
    relpath: &str,
    suppressions: &[Suppression],
    resolved: &[Finding],
    out: &mut Vec<Finding>,
) {
    for s in suppressions {
        let used = resolved
            .iter()
            .any(|f| f.suppressed && f.rule == s.rule && s.covers(f.line));
        if !used {
            out.push(Finding {
                rule: RULE_SUPPRESSION.to_string(),
                file: relpath.to_string(),
                line: s.line,
                message: format!(
                    "allow({}) suppresses nothing — remove the stale annotation",
                    s.rule
                ),
                suppressed: false,
                reason: String::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::repo_policy(Vec::new(), Vec::new())
    }

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_source(path, src, &cfg())
    }

    #[test]
    fn hash_iteration_flagged_lookups_allowed() {
        let src = "struct S { m: HashMap<String, bool> }\n\
                   fn f(s: &S) { for k in s.m.keys() { drop(k); } }\n";
        let hits = scan("crates/kg/src/x.rs", src);
        assert!(hits
            .iter()
            .any(|f| f.rule == RULE_NONDET_ITER && f.line == 1));
        assert!(hits
            .iter()
            .any(|f| f.rule == RULE_NONDET_ITER && f.line == 2));
        // Keyed lookups: only the declaration fires.
        let src = "struct S { m: HashMap<String, bool> }\n\
                   fn f(s: &S) -> bool { *s.m.get(\"k\").unwrap() }\n";
        let hits = scan("crates/kg/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn hash_rules_scoped_to_deterministic_crates() {
        let src = "fn f() { let m = HashMap::new(); for v in m.values() { drop(v); } }\n";
        assert!(!scan("crates/kg/src/x.rs", src).is_empty());
        assert!(
            scan("crates/eval/src/x.rs", src).is_empty(),
            "eval is not deterministic-scoped"
        );
        assert!(scan("crates/kg/tests/x.rs", src).is_empty(), "tests exempt");
    }

    #[test]
    fn btree_containers_never_fire() {
        let src = "fn f(m: &BTreeMap<String, u32>) { for v in m.values() { drop(v); } }\n";
        assert!(scan("crates/kg/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_and_allowlist() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); drop((t, s)); }\n";
        let hits = scan("crates/fleet/src/x.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == RULE_WALL_CLOCK).count(), 2);
        assert!(scan("vendor/criterion/src/lib.rs", src).is_empty());
        assert!(scan("crates/bench/src/bin/gate.rs", src).is_empty());
        // The type alone (e.g. storing a start token) is not a read.
        assert!(scan("crates/fleet/src/x.rs", "fn f(start: Instant) {}\n").is_empty());
    }

    #[test]
    fn thread_knob_containment() {
        let src = "fn f() -> usize { std::env::var(\"KINET_THREADS\"); num_threads() }\n";
        assert_eq!(scan("crates/nids/src/lib.rs", src).len(), 2);
        assert!(
            scan("crates/tensor/src/pool.rs", src).is_empty(),
            "owner module"
        );
        assert!(
            scan("crates/fleet/src/schedule.rs", src).is_empty(),
            "owner module"
        );
        assert!(
            scan("crates/nids/tests/t.rs", src).is_empty(),
            "tests exempt"
        );
        // Comments never fire.
        assert!(scan("crates/nids/src/lib.rs", "// KINET_THREADS num_threads\n").is_empty());
    }

    #[test]
    fn unsafe_requires_comment_and_allowlist() {
        let src = "fn f() { unsafe { core() } }\n";
        let hits = scan("crates/tensor/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("SAFETY") && hits[0].message.contains("allowlist"));

        let commented = "// SAFETY: checked above\nfn f() { unsafe { core() } }\n";
        let mut c = cfg();
        c.unsafe_allow.push("crates/tensor/src/x.rs".to_string());
        assert!(scan_source("crates/tensor/src/x.rs", commented, &c).is_empty());
        // Allowlist without the comment still fails, and vice versa.
        assert_eq!(scan_source("crates/tensor/src/x.rs", src, &c).len(), 1);
        assert_eq!(scan("crates/tensor/src/x.rs", commented).len(), 1);
        // Inline allow() cannot clear it.
        let allowed =
            "// SAFETY: x\n// kinet-lint: allow(no-new-unsafe) — nope\nfn f() { unsafe {} }\n";
        assert!(scan("crates/tensor/src/x.rs", allowed)
            .iter()
            .any(|f| f.rule == RULE_NO_UNSAFE && !f.suppressed));
    }

    #[test]
    fn hotlist_scans_bodies_and_reports_drift() {
        let mut c = cfg();
        c.hotlist.push(HotFile {
            file: "crates/nn/src/x.rs".into(),
            functions: vec!["hot".into(), "gone".into()],
        });
        let src = "fn cold() { let v = vec![1]; drop(v.clone()); }\n\
                   fn hot() { let v = vec![1]; let w = v.to_vec(); drop(w); }\n";
        let hits = scan_source("crates/nn/src/x.rs", src, &c);
        let hot: Vec<&Finding> = hits.iter().filter(|f| f.rule == RULE_HOT_ALLOC).collect();
        assert!(hot.iter().any(|f| f.line == 2 && f.message.contains("vec")));
        assert!(hot
            .iter()
            .any(|f| f.line == 2 && f.message.contains("to_vec")));
        assert!(
            hot.iter().any(|f| f.message.contains("gone")),
            "missing hot fn is manifest drift: {hits:?}"
        );
        assert!(
            !hot.iter().any(|f| f.message.contains("clone")),
            "cold fn not scanned"
        );
    }

    #[test]
    fn suppressions_cover_same_and_next_line_with_reason() {
        let src = "fn f() {\n\
                   // kinet-lint: allow(wall-clock) — report-only timing\n\
                   let t = Instant::now();\n\
                   let u = Instant::now(); // kinet-lint: allow(wall-clock) — ditto\n\
                   let v = Instant::now();\n\
                   drop((t, u, v)); }\n";
        let hits = scan("crates/fleet/src/x.rs", src);
        let wall: Vec<&Finding> = hits.iter().filter(|f| f.rule == RULE_WALL_CLOCK).collect();
        assert_eq!(wall.len(), 3);
        assert!(wall.iter().find(|f| f.line == 3).unwrap().suppressed);
        assert_eq!(
            wall.iter().find(|f| f.line == 3).unwrap().reason,
            "report-only timing"
        );
        assert!(wall.iter().find(|f| f.line == 4).unwrap().suppressed);
        assert!(!wall.iter().find(|f| f.line == 5).unwrap().suppressed);
    }

    #[test]
    fn bad_suppressions_are_their_own_findings() {
        let src = "// kinet-lint: allow(wall-clock)\n\
                   // kinet-lint: allow(imaginary-rule) — because\n\
                   // kinet-lint: allow(wall-clock) — excuses nothing here\n\
                   fn f() {}\n";
        let hits = scan("crates/fleet/src/x.rs", src);
        assert_eq!(
            hits.iter().filter(|f| f.rule == RULE_SUPPRESSION).count(),
            3
        );
        assert!(hits
            .iter()
            .any(|f| f.message.contains("without a written reason")));
        assert!(hits.iter().any(|f| f.message.contains("unknown rule")));
        assert!(hits
            .iter()
            .any(|f| f.message.contains("suppresses nothing")));
    }
}
