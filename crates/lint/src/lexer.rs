//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rules in [`crate::rules`] match on *code* tokens — identifiers,
//! punctuation, literals — so a `HashMap` inside a doc comment or a
//! `"KINET_THREADS"` mention in a test-fixture string never produces a
//! false finding. The lexer therefore has to get exactly the hard parts of
//! Rust's surface syntax right: line and (nested) block comments, plain and
//! raw strings with arbitrary `#` fences, byte strings, char literals vs.
//! lifetimes, and multi-byte UTF-8 text.
//!
//! It is deliberately *not* a full grammar: numbers are lumped greedily,
//! keywords are ordinary identifiers, and every other byte is a single-char
//! punctuation token. That is enough to recognize every pattern the rules
//! hunt for while staying a few hundred lines of dependency-free code.
//!
//! [`ChunkedLexer`] is the resumable form: feed the source in arbitrary
//! byte chunks (split on char boundaries) and the token stream is
//! guaranteed identical to a whole-file [`lex`] — a property test pins
//! this, so a finding can never be split or lost across a chunk boundary.

/// What a token is, as far as the lint rules care.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// String or byte-string literal, plain or raw; `text` keeps the quotes.
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`); kept distinct so `'x'` disambiguation is explicit.
    Lifetime,
    /// Numeric literal, greedily lumped (`0xff`, `1.5e3` minus the sign).
    Num,
    /// `// …` comment (doc comments included), without the newline.
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Any other single character (`:`, `<`, `{`, …).
    Punct,
}

/// One lexed token with its location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// `true` for a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` for tokens the rules match on (everything but comments).
    pub fn is_code(&self) -> bool {
        !self.is_comment()
    }
}

/// Lexes a complete source file into tokens (comments included,
/// whitespace skipped — adjacency checks like `vec` `!` or `Instant` `::`
/// `now` see only meaningful tokens).
pub fn lex(src: &str) -> Vec<Token> {
    lex_spanned(src).into_iter().map(|(t, _)| t).collect()
}

/// [`lex`] plus each token's starting byte offset (the chunked lexer needs
/// the offsets to cut its pending buffer precisely).
fn lex_spanned(src: &str) -> Vec<(Token, usize)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;
    let bytes = src.as_bytes();
    while pos < bytes.len() {
        // Whitespace separates tokens but is not one.
        if bytes[pos].is_ascii_whitespace() {
            if bytes[pos] == b'\n' {
                line += 1;
            }
            pos += 1;
            continue;
        }
        let start = pos;
        let start_line = line;
        let kind = scan_one(src, &mut pos, &mut line);
        out.push((
            Token {
                kind,
                text: src[start..pos].to_string(),
                line: start_line,
            },
            start,
        ));
    }
    out
}

/// Scans the single token starting at `*pos`, advancing `pos` and `line`.
/// An unterminated string or block comment extends to end of input (the
/// chunked lexer relies on the tail always being one well-defined token).
fn scan_one(src: &str, pos: &mut usize, line: &mut usize) -> TokKind {
    let bytes = src.as_bytes();
    let c = bytes[*pos];
    // Comments.
    if c == b'/' && peek(bytes, *pos + 1) == Some(b'/') {
        while *pos < bytes.len() && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        return TokKind::LineComment;
    }
    if c == b'/' && peek(bytes, *pos + 1) == Some(b'*') {
        *pos += 2;
        let mut depth = 1usize;
        while *pos < bytes.len() && depth > 0 {
            if bytes[*pos] == b'/' && peek(bytes, *pos + 1) == Some(b'*') {
                depth += 1;
                *pos += 2;
            } else if bytes[*pos] == b'*' && peek(bytes, *pos + 1) == Some(b'/') {
                depth -= 1;
                *pos += 2;
            } else {
                if bytes[*pos] == b'\n' {
                    *line += 1;
                }
                *pos += advance_len(src, *pos);
            }
        }
        return TokKind::BlockComment;
    }
    // Raw / byte string prefixes: r" r#" br" br#" b" — checked before
    // identifiers so `r` and `b` do not lex as a plain ident.
    if let Some(len) = raw_prefix_len(bytes, *pos) {
        *pos += len;
        return scan_raw_string(src, pos, line);
    }
    if (c == b'"') || (c == b'b' && peek(bytes, *pos + 1) == Some(b'"')) {
        if c == b'b' {
            *pos += 1;
        }
        return scan_string(src, pos, line);
    }
    if c == b'b' && peek(bytes, *pos + 1) == Some(b'\'') {
        *pos += 1;
        return scan_char_or_lifetime(src, pos, line);
    }
    // Identifiers and keywords.
    if c.is_ascii_alphabetic() || c == b'_' {
        while *pos < bytes.len()
            && (bytes[*pos].is_ascii_alphanumeric() || bytes[*pos] == b'_' || bytes[*pos] >= 0x80)
        {
            *pos += advance_len(src, *pos);
        }
        return TokKind::Ident;
    }
    // Numbers (greedy lump: hex, suffixes, float dots).
    if c.is_ascii_digit() {
        while *pos < bytes.len()
            && (bytes[*pos].is_ascii_alphanumeric() || bytes[*pos] == b'_' || bytes[*pos] == b'.')
        {
            *pos += 1;
        }
        return TokKind::Num;
    }
    // Char literal or lifetime.
    if c == b'\'' {
        return scan_char_or_lifetime(src, pos, line);
    }
    // Single punctuation character (multi-byte UTF-8 safe; ASCII
    // whitespace never reaches here — the caller skips it).
    *pos += advance_len(src, *pos);
    TokKind::Punct
}

/// Byte length of the char starting at `pos` (1 for ASCII).
fn advance_len(src: &str, pos: usize) -> usize {
    let b = src.as_bytes()[pos];
    if b < 0x80 {
        1
    } else {
        src[pos..].chars().next().map(char::len_utf8).unwrap_or(1)
    }
}

fn peek(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes.get(pos).copied()
}

/// Length of a raw-string opener (`r"`, `r###"`, `br#"`) at `pos`, if one
/// starts there. Returns the length up to but not including the quote.
fn raw_prefix_len(bytes: &[u8], pos: usize) -> Option<usize> {
    let mut p = pos;
    if peek(bytes, p) == Some(b'b') {
        p += 1;
    }
    if peek(bytes, p) != Some(b'r') {
        return None;
    }
    p += 1;
    while peek(bytes, p) == Some(b'#') {
        p += 1;
    }
    if peek(bytes, p) == Some(b'"') {
        Some(p - pos)
    } else {
        None
    }
}

/// Scans a raw string; `pos` sits on the opening quote with the fence
/// hashes immediately before it.
fn scan_raw_string(src: &str, pos: &mut usize, line: &mut usize) -> TokKind {
    let bytes = src.as_bytes();
    // Count the fence by walking back over the hashes just consumed.
    let mut hashes = 0usize;
    let mut back = *pos;
    while back > 0 && bytes[back - 1] == b'#' {
        hashes += 1;
        back -= 1;
    }
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    while *pos < bytes.len() {
        if bytes[*pos] == b'"' {
            let mut p = *pos + 1;
            let mut seen = 0usize;
            while seen < hashes && peek(bytes, p) == Some(b'#') {
                seen += 1;
                p += 1;
            }
            if seen == hashes {
                *pos = p;
                return TokKind::Str;
            }
        }
        if bytes[*pos] == b'\n' {
            *line += 1;
        }
        *pos += advance_len(src, *pos);
    }
    TokKind::Str // unterminated: extends to end of input
}

/// Scans a plain (escaped) string; `pos` sits on the opening quote.
fn scan_string(src: &str, pos: &mut usize, line: &mut usize) -> TokKind {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => {
                *pos += 1;
                if *pos < bytes.len() {
                    if bytes[*pos] == b'\n' {
                        *line += 1;
                    }
                    *pos += advance_len(src, *pos);
                }
            }
            b'"' => {
                *pos += 1;
                return TokKind::Str;
            }
            b'\n' => {
                *line += 1;
                *pos += 1;
            }
            _ => *pos += advance_len(src, *pos),
        }
    }
    TokKind::Str // unterminated
}

/// Scans either a char literal (`'x'`, `'\u{1f600}'`) or a lifetime
/// (`'static`); `pos` sits on the quote.
fn scan_char_or_lifetime(src: &str, pos: &mut usize, line: &mut usize) -> TokKind {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[*pos], b'\'');
    let after = *pos + 1;
    // Lifetime: quote, ident-start, ident-continue*, and *no* closing quote.
    if after < bytes.len() && (bytes[after].is_ascii_alphabetic() || bytes[after] == b'_') {
        let mut p = after;
        while p < bytes.len() && (bytes[p].is_ascii_alphanumeric() || bytes[p] == b'_') {
            p += 1;
        }
        if peek(bytes, p) != Some(b'\'') {
            *pos = p;
            return TokKind::Lifetime;
        }
    }
    // Char literal: consume up to the closing quote, honoring escapes.
    *pos += 1;
    if peek(bytes, *pos) == Some(b'\\') {
        *pos += 1;
        if *pos < bytes.len() {
            *pos += advance_len(src, *pos);
        }
        // `\u{...}` payload.
        while *pos < bytes.len() && bytes[*pos] != b'\'' && bytes[*pos] != b'\n' {
            *pos += advance_len(src, *pos);
        }
    } else if *pos < bytes.len() {
        if bytes[*pos] == b'\n' {
            *line += 1;
        }
        *pos += advance_len(src, *pos);
    }
    if peek(bytes, *pos) == Some(b'\'') {
        *pos += 1;
    }
    TokKind::Char
}

/// A resumable lexer: accepts the source in chunks and yields the same
/// token stream as a single [`lex`] over the concatenation.
///
/// Strategy: keep a pending buffer, lex it fully on every feed, emit every
/// token except a small held-back tail, and carry the tail's bytes forward.
/// The last token is always held (more input could extend it — maximal
/// munch makes every earlier token final), plus any trailing run of `#`
/// puncts and `r`/`b`/`br` identifiers: those are the only already-complete
/// tokens a later chunk can *merge* (into a raw/byte string opener like
/// `r#"…`), so they must not be emitted until a non-mergeable token lands
/// after them. [`ChunkedLexer::finish`] flushes the remainder.
#[derive(Default)]
pub struct ChunkedLexer {
    pending: String,
    tokens: Vec<Token>,
    lines_consumed: usize,
}

/// How many trailing tokens could still change with more input.
fn hold_back(toks: &[(Token, usize)]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut hold = 1usize;
    while hold < toks.len() {
        let t = &toks[toks.len() - 1 - hold].0;
        let mergeable = t.is_punct('#')
            || (t.kind == TokKind::Ident && matches!(t.text.as_str(), "r" | "b" | "br"));
        if !mergeable {
            break;
        }
        hold += 1;
    }
    hold
}

impl ChunkedLexer {
    /// A fresh lexer with no pending input.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one chunk (must split the source on a char boundary).
    pub fn feed(&mut self, chunk: &str) {
        self.pending.push_str(chunk);
        let toks = lex_spanned(&self.pending);
        let hold = hold_back(&toks);
        if toks.len() <= hold {
            return; // everything held; keep buffering
        }
        let emit = toks.len() - hold;
        let cut = toks[emit].1;
        for (mut t, _) in toks.into_iter().take(emit) {
            t.line += self.lines_consumed;
            self.tokens.push(t);
        }
        self.lines_consumed += self.pending[..cut].matches('\n').count();
        self.pending.drain(..cut);
    }

    /// Flushes the pending tail and returns the full token stream.
    pub fn finish(mut self) -> Vec<Token> {
        for mut t in lex(&self.pending) {
            t.line += self.lines_consumed;
            self.tokens.push(t);
        }
        self.tokens
    }
}

/// Lexes `src` fed to a [`ChunkedLexer`] in chunks of `chunk_chars`
/// characters — test/diagnostic helper proving chunk-size independence.
pub fn lex_chunked(src: &str, chunk_chars: usize) -> Vec<Token> {
    let chunk_chars = chunk_chars.max(1);
    let mut lexer = ChunkedLexer::new();
    let mut rest = src;
    while !rest.is_empty() {
        let cut = rest
            .char_indices()
            .nth(chunk_chars)
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        lexer.feed(&rest[..cut]);
        rest = &rest[cut..];
    }
    lexer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_not_code() {
        let toks = lex("a // HashMap\n/* unsafe /* nested */ still */ b");
        let code: Vec<&Token> = toks.iter().filter(|t| t.is_code()).collect();
        let idents: Vec<&str> = code
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::BlockComment && t.text.contains("nested")));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let cases = [
            r#"let s = "un*safe // not a comment";"#,
            r##"let s = r#"raw "quoted" body"#;"##,
            r#"let s = b"bytes";"#,
            "let s = r\"no hashes\";",
        ];
        for src in cases {
            let toks = lex(src);
            assert_eq!(
                toks.iter().filter(|t| t.kind == TokKind::Str).count(),
                1,
                "{src}"
            );
            assert!(
                !toks.iter().any(|t| t.is_comment()),
                "string body leaked a comment: {src}"
            );
        }
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds(r"let c: char = 'x'; fn f<'a>(v: &'a str) { let q = '\''; }");
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn line_numbers_track_all_token_forms() {
        let src = "a\n\"two\nline\"\n/* c\nc */ b\n";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("\"two\nline\""), 2);
        assert_eq!(find("b"), 5);
    }

    #[test]
    fn multibyte_text_lexes_cleanly() {
        let toks = lex("// em — dash\nlet s = \"∀x\"; // ünïcode");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(toks.iter().filter(|t| t.is_comment()).count() == 2);
    }

    #[test]
    fn chunked_matches_whole_file() {
        let src = "fn main() { // KINET_THREADS\n  let m: HashMap<u8, u8> = r#\"x\"#; '\\n' }\n";
        let whole = lex(src);
        for chunk in 1..=src.chars().count() {
            assert_eq!(lex_chunked(src, chunk), whole, "chunk_chars={chunk}");
        }
    }

    #[test]
    fn unterminated_forms_extend_to_eof() {
        assert_eq!(lex("\"open").len(), 1);
        assert_eq!(lex("/* open").len(), 1);
        assert_eq!(lex("r#\"open\"").len(), 1);
    }
}
