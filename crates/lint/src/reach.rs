//! The three interprocedural reachability analyses.
//!
//! Built on the [`crate::callgraph`] stage, each analysis pairs a **root
//! set** (from committed policy) with a **sink effect** (a primitive
//! token pattern found in function bodies) and reports every sink
//! reachable from a root, with the full call chain in the message:
//!
//! 1. **transitive-allocation** — roots are the `hotlist.toml`
//!    functions; sinks are allocation tokens. The per-function
//!    `hot-path-allocation` rule patrols the roots themselves; this
//!    analysis patrols everything they can call
//!    (`gemm → helper → Vec::new`). Suppressible inline at the sink.
//! 2. **determinism-taint** — roots are the fingerprint renderers,
//!    report constructors, and seeded RNG domains named in
//!    `reach.toml [taint] roots`; sinks are wall-clock reads,
//!    hash-container iteration, and thread-knob references outside the
//!    `[taint] sanctioned` modules. Suppressible inline at the sink.
//! 3. **panic-path** — roots are the resident serving path named in
//!    `reach.toml [panic] roots`; sinks are `unwrap`/`expect`,
//!    panicking macros, and indexing expressions. *Never* inline
//!    suppressible: only a committed `panic_allowlist.txt` entry with a
//!    written reason clears a site, mirroring the no-new-unsafe rule.
//!
//! Every analysis is deterministic: roots are processed in policy order,
//! BFS uses sorted adjacency, and duplicate sinks reachable from several
//! roots collapse onto the first (shortest) chain.

use crate::callgraph::{CallGraph, RootReach};
use crate::hotlist::HotFile;
use crate::lexer::{TokKind, Token};
use crate::report::Finding;
use crate::rules::{
    alloc_sites, hash_iter_sites, thread_knob_sites, wall_clock_sites, RULE_DETERMINISM_TAINT,
    RULE_PANIC_PATH, RULE_SUPPRESSION, RULE_TRANS_ALLOC,
};
use crate::symbols::is_expr_keyword;
use std::collections::BTreeMap;

/// What a primitive effect site does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EffectKind {
    /// Heap allocation (`Vec::new`, `vec!`, `clone`, `collect`, …).
    Alloc,
    /// Wall-clock read (`Instant::now`, `SystemTime`).
    WallClock,
    /// Iteration over a hash container binding.
    HashIter,
    /// Thread-knob reference (`num_threads`, `"KINET_THREADS"`).
    ThreadKnob,
    /// Potential panic (`unwrap`, `expect`, `panic!`, indexing).
    Panic,
}

/// One effect site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EffectSite {
    /// Effect class.
    pub kind: EffectKind,
    /// 1-based line.
    pub line: usize,
    /// The offending token or pattern, for messages.
    pub what: String,
}

/// Scans one body's code tokens for every effect class. `hash_names` are
/// the file-level hash-container binding names (see
/// [`crate::rules::hash_bindings`]).
pub fn scan_effects(body: &[&Token], hash_names: &[String]) -> Vec<EffectSite> {
    let mut out = Vec::new();
    for (line, what) in alloc_sites(body) {
        out.push(EffectSite {
            kind: EffectKind::Alloc,
            line,
            what,
        });
    }
    for (line, what) in wall_clock_sites(body) {
        out.push(EffectSite {
            kind: EffectKind::WallClock,
            line,
            what: what.to_string(),
        });
    }
    for s in hash_iter_sites(body, hash_names) {
        let what = match &s.method {
            Some(m) => format!("{}.{m}()", s.name),
            None => format!("for … in {}", s.name),
        };
        out.push(EffectSite {
            kind: EffectKind::HashIter,
            line: s.line,
            what,
        });
    }
    for (line, what) in thread_knob_sites(body) {
        out.push(EffectSite {
            kind: EffectKind::ThreadKnob,
            line,
            what: what.to_string(),
        });
    }
    for (line, what) in panic_sites(body) {
        out.push(EffectSite {
            kind: EffectKind::Panic,
            line,
            what,
        });
    }
    out.sort_by(|a, b| (a.line, a.what.as_str()).cmp(&(b.line, b.what.as_str())));
    out
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_CALLS: [&str; 2] = ["unwrap", "expect"];

/// Potential panic sites: `unwrap`/`expect` calls, panicking macros, and
/// indexing expressions (`buf[i]`, `&rows[a..b]` — slicing panics too).
/// `assert!` family macros are deliberate guards, not accidents, and are
/// not flagged. Array *types* and slice *patterns* are excluded by
/// requiring an indexable expression tail before the `[`.
pub fn panic_sites(body: &[&Token]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind == TokKind::Ident {
            if PANIC_CALLS.contains(&t.text.as_str())
                && body.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push((t.line, format!("{}()", t.text)));
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && body.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push((t.line, format!("{}!", t.text)));
            }
        }
        if t.is_punct('[') {
            let Some(prev) = i.checked_sub(1).map(|p| body[p]) else {
                continue;
            };
            let indexable = (prev.kind == TokKind::Ident && !is_expr_keyword(&prev.text))
                || prev.is_punct(']')
                || prev.is_punct(')');
            if indexable {
                out.push((t.line, format!("{}[..]", prev.text)));
            }
        }
    }
    out
}

/// One `panic_allowlist.txt` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicAllow {
    /// `path/prefix/`, `exact/file.rs`, or `exact/file.rs::fn_name`.
    pub pattern: String,
    /// Mandatory written justification.
    pub reason: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

impl PanicAllow {
    /// `true` when this entry covers a panic finding in `file` inside
    /// function `fn_name`.
    pub fn covers(&self, file: &str, fn_name: &str) -> bool {
        if let Some((pat_file, pat_fn)) = self.pattern.split_once("::") {
            return pat_file == file && pat_fn == fn_name;
        }
        if self.pattern.ends_with('/') {
            return file.starts_with(&self.pattern);
        }
        self.pattern == file
    }
}

/// Parses `panic_allowlist.txt`: one `<pattern> — <reason>` entry per
/// line (`#` comments and blanks ignored; `--` and `:` also accepted as
/// separators, after the pattern's first whitespace). Entries without a
/// reason are returned in the error list — an unexplained panic waiver
/// is itself a finding.
pub fn parse_panic_allowlist(text: &str) -> (Vec<PanicAllow>, Vec<Finding>) {
    let mut ok = Vec::new();
    let mut errs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (pattern, tail) = match line.split_once(char::is_whitespace) {
            Some((p, t)) => (p.to_string(), t.trim_start()),
            None => (line.to_string(), ""),
        };
        let reason = ["—", "--", ":"]
            .iter()
            .find_map(|sep| tail.strip_prefix(sep))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            errs.push(Finding {
                rule: RULE_SUPPRESSION.to_string(),
                file: PANIC_ALLOWLIST_PATH.to_string(),
                line: lineno,
                message: format!(
                    "panic allowlist entry `{pattern}` has no written reason — \
                     every panic waiver must say why"
                ),
                suppressed: false,
                reason: String::new(),
            });
            continue;
        }
        ok.push(PanicAllow {
            pattern,
            reason: reason.to_string(),
            line: lineno,
        });
    }
    (ok, errs)
}

/// Workspace-relative location of the committed panic allowlist.
pub const PANIC_ALLOWLIST_PATH: &str = "crates/lint/panic_allowlist.txt";
/// Workspace-relative location of the committed reachability policy.
pub const REACH_POLICY_PATH: &str = "crates/lint/reach.toml";

/// Reachability policy from `reach.toml` + `panic_allowlist.txt`.
#[derive(Clone, Debug, Default)]
pub struct ReachPolicy {
    /// Determinism-taint roots (`Owner::name` or bare `name` specs).
    pub taint_roots: Vec<String>,
    /// Path prefixes whose effects are sanctioned for taint (the modules
    /// that *own* a knob or clock and keep the determinism contract).
    pub taint_sanctioned: Vec<String>,
    /// Panic-path roots (the resident serving path).
    pub panic_roots: Vec<String>,
    /// Committed panic waivers.
    pub panic_allow: Vec<PanicAllow>,
}

/// Parses `reach.toml` (the same hand-rolled TOML subset as
/// `hotlist.toml`): `[taint]` with `roots`/`sanctioned` string arrays and
/// `[panic]` with `roots`.
///
/// # Errors
///
/// `line: message` on any unrecognized line, unknown section, or
/// non-array value — a silently dropped policy line would silently drop
/// analysis coverage.
pub fn parse_reach(text: &str) -> Result<ReachPolicy, String> {
    let mut policy = ReachPolicy::default();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            if !matches!(name, "taint" | "panic") {
                return Err(format!("{lineno}: unknown section [{name}]"));
            }
            section = name.to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("{lineno}: unrecognized policy line {line:?}"));
        };
        let key = key.trim();
        let values = crate::hotlist::parse_string_array(value.trim())
            .ok_or_else(|| format!("{lineno}: {key} wants [\"…\"]"))?;
        match (section.as_str(), key) {
            ("taint", "roots") => policy.taint_roots = values,
            ("taint", "sanctioned") => policy.taint_sanctioned = values,
            ("panic", "roots") => policy.panic_roots = values,
            _ => return Err(format!("{lineno}: unrecognized key {key:?} in [{section}]")),
        }
    }
    Ok(policy)
}

/// Output of the interprocedural stage: findings (panic ones already
/// resolved against the allowlist; the rest raw, pending inline
/// suppression resolution) plus the per-root reachability rows for
/// `callgraph.json`.
pub struct ReachOutcome {
    /// All interprocedural findings.
    pub findings: Vec<Finding>,
    /// Per-root reachable-set sizes, in policy order.
    pub roots: Vec<RootReach>,
}

/// Runs all three analyses over a built graph.
pub fn run_analyses(graph: &CallGraph, hotlist: &[HotFile], policy: &ReachPolicy) -> ReachOutcome {
    let mut findings = Vec::new();
    let mut roots = Vec::new();
    transitive_allocation(graph, hotlist, &mut findings, &mut roots);
    determinism_taint(graph, policy, &mut findings, &mut roots);
    panic_path(graph, policy, &mut findings, &mut roots);
    ReachOutcome { findings, roots }
}

/// Hotlisted functions, resolved to node ids per manifest entry. A hot
/// function missing from its file is already a per-file finding
/// (manifest drift) — not repeated here.
fn hot_roots(graph: &CallGraph, hotlist: &[HotFile]) -> Vec<(String, Vec<usize>)> {
    let mut out = Vec::new();
    for hot in hotlist {
        for fname in &hot.functions {
            let ids: Vec<usize> = graph
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.file == hot.file && n.item.name == *fname)
                .map(|(id, _)| id)
                .collect();
            out.push((format!("{}::{fname}", hot.file), ids));
        }
    }
    out
}

fn transitive_allocation(
    graph: &CallGraph,
    hotlist: &[HotFile],
    findings: &mut Vec<Finding>,
    roots_out: &mut Vec<RootReach>,
) {
    // Nodes that are themselves hotlisted: patrolled per-function by the
    // local rule, so their own allocation sites are not re-reported.
    let mut is_hot = vec![false; graph.nodes.len()];
    let specs = hot_roots(graph, hotlist);
    for (_, ids) in &specs {
        for &id in ids {
            is_hot[id] = true;
        }
    }
    let mut seen_sites: BTreeMap<(String, usize, String), ()> = BTreeMap::new();
    for (spec, ids) in &specs {
        let parent = graph.bfs(ids);
        let reached = reached_set(graph, ids, &parent);
        roots_out.push(RootReach {
            analysis: "alloc".to_string(),
            root: spec.clone(),
            reachable: reached.len(),
        });
        for &node in &reached {
            if is_hot[node] {
                continue;
            }
            let n = &graph.nodes[node];
            for e in n.effects.iter().filter(|e| e.kind == EffectKind::Alloc) {
                let key = (n.file.clone(), e.line, e.what.clone());
                if seen_sites.contains_key(&key) {
                    continue;
                }
                seen_sites.insert(key, ());
                findings.push(Finding {
                    rule: RULE_TRANS_ALLOC.to_string(),
                    file: n.file.clone(),
                    line: e.line,
                    message: format!(
                        "`{}` allocates in `{}`, reachable from hot `{spec}`: {} → `{}`",
                        e.what,
                        n.display(),
                        graph.chain(&parent, node),
                        e.what
                    ),
                    suppressed: false,
                    reason: String::new(),
                });
            }
        }
    }
}

fn determinism_taint(
    graph: &CallGraph,
    policy: &ReachPolicy,
    findings: &mut Vec<Finding>,
    roots_out: &mut Vec<RootReach>,
) {
    let mut seen_sites: BTreeMap<(String, usize, String), ()> = BTreeMap::new();
    for spec in &policy.taint_roots {
        let ids = graph.resolve_root(spec);
        if ids.is_empty() {
            findings.push(root_drift(RULE_DETERMINISM_TAINT, spec, "taint"));
        }
        let parent = graph.bfs(&ids);
        let reached = reached_set(graph, &ids, &parent);
        roots_out.push(RootReach {
            analysis: "taint".to_string(),
            root: spec.clone(),
            reachable: reached.len(),
        });
        for &node in &reached {
            let n = &graph.nodes[node];
            if policy
                .taint_sanctioned
                .iter()
                .any(|p| n.file.starts_with(p.as_str()))
            {
                continue;
            }
            for e in n.effects.iter().filter(|e| {
                matches!(
                    e.kind,
                    EffectKind::WallClock | EffectKind::HashIter | EffectKind::ThreadKnob
                )
            }) {
                let key = (n.file.clone(), e.line, e.what.clone());
                if seen_sites.contains_key(&key) {
                    continue;
                }
                seen_sites.insert(key, ());
                let kind = match e.kind {
                    EffectKind::WallClock => "wall-clock read",
                    EffectKind::HashIter => "hash-container iteration",
                    _ => "thread-knob reference",
                };
                findings.push(Finding {
                    rule: RULE_DETERMINISM_TAINT.to_string(),
                    file: n.file.clone(),
                    line: e.line,
                    message: format!(
                        "{kind} `{}` reachable from deterministic root `{spec}`: {} → `{}`",
                        e.what,
                        graph.chain(&parent, node),
                        e.what
                    ),
                    suppressed: false,
                    reason: String::new(),
                });
            }
        }
    }
}

fn panic_path(
    graph: &CallGraph,
    policy: &ReachPolicy,
    findings: &mut Vec<Finding>,
    roots_out: &mut Vec<RootReach>,
) {
    let mut seen_sites: BTreeMap<(String, usize, String), ()> = BTreeMap::new();
    let mut used = vec![false; policy.panic_allow.len()];
    for spec in &policy.panic_roots {
        let ids = graph.resolve_root(spec);
        if ids.is_empty() {
            findings.push(root_drift(RULE_PANIC_PATH, spec, "panic"));
        }
        let parent = graph.bfs(&ids);
        let reached = reached_set(graph, &ids, &parent);
        roots_out.push(RootReach {
            analysis: "panic".to_string(),
            root: spec.clone(),
            reachable: reached.len(),
        });
        for &node in &reached {
            let n = &graph.nodes[node];
            let sites: Vec<&EffectSite> = n
                .effects
                .iter()
                .filter(|e| e.kind == EffectKind::Panic)
                .collect();
            if sites.is_empty() {
                continue;
            }
            // One finding per reached function, not per site: a kernel
            // with 40 indexing expressions is one triage decision (and one
            // allowlist line), not 40.
            let key = (n.file.clone(), n.item.line, n.item.name.clone());
            if seen_sites.contains_key(&key) {
                continue;
            }
            seen_sites.insert(key, ());
            let allow = policy
                .panic_allow
                .iter()
                .position(|a| a.covers(&n.file, &n.item.name));
            if let Some(idx) = allow {
                used[idx] = true;
            }
            let reason = allow
                .map(|i| policy.panic_allow[i].reason.clone())
                .unwrap_or_default();
            let whats: std::collections::BTreeSet<String> =
                sites.iter().map(|e| format!("`{}`", e.what)).collect();
            let whats: Vec<String> = whats.into_iter().collect();
            findings.push(Finding {
                rule: RULE_PANIC_PATH.to_string(),
                file: n.file.clone(),
                line: sites[0].line,
                message: format!(
                    "{} panic-capable site(s) in `{}` ({}), reachable from serving \
                     root `{spec}`: {}",
                    sites.len(),
                    n.display(),
                    whats.join(", "),
                    graph.chain(&parent, node)
                ),
                suppressed: allow.is_some(),
                reason,
            });
        }
    }
    for (idx, entry) in policy.panic_allow.iter().enumerate() {
        if !used[idx] {
            findings.push(Finding {
                rule: RULE_SUPPRESSION.to_string(),
                file: PANIC_ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "panic allowlist entry `{}` waives nothing reachable — \
                     remove the stale entry",
                    entry.pattern
                ),
                suppressed: false,
                reason: String::new(),
            });
        }
    }
}

fn root_drift(rule: &str, spec: &str, section: &str) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: REACH_POLICY_PATH.to_string(),
        line: 1,
        message: format!(
            "[{section}] root `{spec}` matches no workspace function — \
             update {REACH_POLICY_PATH} so coverage does not rot"
        ),
        suppressed: false,
        reason: String::new(),
    }
}

/// The reached node ids (roots included), ascending — deterministic for
/// a deterministic parent table.
fn reached_set(graph: &CallGraph, roots: &[usize], parent: &[usize]) -> Vec<usize> {
    let mut reached: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| parent[i] != usize::MAX || roots.contains(&i))
        .collect();
    reached.sort_unstable();
    reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sites(src: &str) -> Vec<(usize, String)> {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| t.is_code()).collect();
        panic_sites(&code)
    }

    #[test]
    fn panic_sites_cover_calls_macros_and_indexing() {
        let src = "fn f(v: &[u8], m: &M) {\n\
                   v.get(0).unwrap();\n\
                   m.load().expect(\"x\");\n\
                   panic!(\"boom\");\n\
                   let x = v[0];\n\
                   let s = &v[1..3];\n\
                   }\n";
        let got = sites(src);
        let whats: Vec<&str> = got.iter().map(|(_, w)| w.as_str()).collect();
        assert_eq!(
            whats,
            ["unwrap()", "expect()", "panic!", "v[..]", "v[..]"],
            "{got:?}"
        );
    }

    #[test]
    fn array_types_patterns_and_attributes_are_not_indexing() {
        for src in [
            "fn f() -> [f32; 4] { [0.0; 4] }",
            "fn f(x: [u8; 2]) { let [a, b] = x; drop((a, b)); }",
            "#[derive(Debug)]\nstruct S;",
            "fn f() { let v = vec![1, 2]; drop(v); }",
        ] {
            assert!(sites(src).is_empty(), "{src}: {:?}", sites(src));
        }
    }

    #[test]
    fn assert_macros_are_not_panic_sites() {
        assert!(sites("fn f() { assert!(true); assert_eq!(1, 1); debug_assert!(x); }").is_empty());
    }

    #[test]
    fn allowlist_parses_patterns_and_requires_reasons() {
        let text = "# waivers\n\
                    vendor/ — vendored shims reviewed at import\n\
                    crates/a/src/x.rs::helper -- index guarded above\n\
                    crates/a/src/y.rs\n";
        let (ok, errs) = parse_panic_allowlist(text);
        assert_eq!(ok.len(), 2);
        assert!(ok[0].covers("vendor/rand/src/lib.rs", "anything"));
        assert!(ok[1].covers("crates/a/src/x.rs", "helper"));
        assert!(!ok[1].covers("crates/a/src/x.rs", "other"));
        assert_eq!(errs.len(), 1, "reason-less entry is a finding");
        assert!(errs[0].message.contains("no written reason"));
    }

    #[test]
    fn reach_policy_parses_and_rejects_unknowns() {
        let text = "# policy\n\
                    [taint]\n\
                    roots = [\"FleetReport::deterministic_fingerprint\"]\n\
                    sanctioned = [\"crates/tensor/src/pool.rs\"]\n\
                    [panic]\n\
                    roots = [\"FleetService::run\", \"score_rows\"]\n";
        let p = parse_reach(text).unwrap();
        assert_eq!(p.taint_roots.len(), 1);
        assert_eq!(p.taint_sanctioned.len(), 1);
        assert_eq!(p.panic_roots.len(), 2);
        assert!(parse_reach("[bogus]\n").is_err());
        assert!(parse_reach("[taint]\nroots = nope\n").is_err());
        assert!(parse_reach("[taint]\nwhat = [\"x\"]\n").is_err());
    }
}
