//! # kinet_lint — workspace invariant linting
//!
//! A comment- and string-aware source scanner (hand-rolled [`lexer`], no
//! rustc plugin) that walks every workspace and `vendor/` `.rs` file and
//! enforces the contracts the earlier PRs established in prose:
//!
//! * [`rules::RULE_NONDET_ITER`] — no hash-container iteration in the
//!   deterministic crates (the bit-for-bit fingerprint holders),
//! * [`rules::RULE_WALL_CLOCK`] — wall-clock reads only in timing modules,
//! * [`rules::RULE_NO_UNSAFE`] — every `unsafe` needs a `SAFETY:` comment
//!   and a committed allowlist entry,
//! * [`rules::RULE_HOT_ALLOC`] — the `hotlist.toml` functions stay
//!   allocation-free,
//! * [`rules::RULE_THREAD_KNOB`] — `KINET_THREADS` stays contained in the
//!   pool/schedule modules.
//!
//! Findings can be excused inline with
//! `// kinet-lint: allow(<rule>) — <reason>` ([`suppress`]); the reason is
//! mandatory and stale or malformed directives are violations themselves.
//! The `lint_gate` bin (in `kinet_bench`) renders a [`LintReport`] to
//! `lint_report.json` and fails CI on any unsuppressed finding.

pub mod hotlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

pub use hotlist::{parse_hotlist, parse_unsafe_allowlist, HotFile};
pub use report::{Finding, LintReport};
pub use rules::{scan_source, LintConfig};

use std::fs;
use std::path::{Path, PathBuf};

/// Every `.rs` file the lint patrols, as sorted
/// `(workspace-relative path, absolute path)` pairs. Skips `target/`,
/// `.git/`, and the lint fixture corpus (deliberate violations used by
/// the engine's own tests).
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = relpath(&path, root);
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" || rel.ends_with("tests/fixtures") {
                continue;
            }
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((rel, path));
        }
    }
    Ok(())
}

fn relpath(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Loads the repository's standing policy: `crates/lint/hotlist.toml` and
/// `crates/lint/unsafe_allowlist.txt` under `root`, wrapped in
/// [`LintConfig::repo_policy`].
pub fn load_workspace_config(root: &Path) -> Result<LintConfig, String> {
    let hot_path = root.join("crates/lint/hotlist.toml");
    let hot_text =
        fs::read_to_string(&hot_path).map_err(|e| format!("read {}: {e}", hot_path.display()))?;
    let hotlist = parse_hotlist(&hot_text).map_err(|e| format!("{}: {e}", hot_path.display()))?;
    let allow_path = root.join("crates/lint/unsafe_allowlist.txt");
    let allow_text = fs::read_to_string(&allow_path)
        .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
    Ok(LintConfig::repo_policy(
        hotlist,
        parse_unsafe_allowlist(&allow_text),
    ))
}

/// Lints the whole workspace under `root` with an explicit config.
pub fn run_with_config(root: &Path, cfg: &LintConfig) -> Result<LintReport, String> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    for (rel, path) in &files {
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(rules::scan_source(rel, &src, cfg));
    }
    Ok(LintReport::from_findings(files.len(), findings))
}

/// Lints the whole workspace under `root` with the committed policy —
/// what `lint_gate` and the smoke test run.
pub fn run_workspace(root: &Path) -> Result<LintReport, String> {
    let cfg = load_workspace_config(root)?;
    run_with_config(root, &cfg)
}
