//! # kinet_lint — workspace invariant linting
//!
//! A comment- and string-aware source scanner (hand-rolled [`lexer`], no
//! rustc plugin) that walks every workspace and `vendor/` `.rs` file and
//! enforces the contracts the earlier PRs established in prose:
//!
//! * [`rules::RULE_NONDET_ITER`] — no hash-container iteration in the
//!   deterministic crates (the bit-for-bit fingerprint holders),
//! * [`rules::RULE_WALL_CLOCK`] — wall-clock reads only in timing modules,
//! * [`rules::RULE_NO_UNSAFE`] — every `unsafe` needs a `SAFETY:` comment
//!   and a committed allowlist entry,
//! * [`rules::RULE_HOT_ALLOC`] — the `hotlist.toml` functions stay
//!   allocation-free,
//! * [`rules::RULE_THREAD_KNOB`] — `KINET_THREADS` stays contained in the
//!   pool/schedule modules.
//!
//! A second, *interprocedural* stage (new in PR 9) parses every file's
//! items into a lightweight model ([`symbols`]), resolves a conservative
//! name-based call graph with an explicit unresolved-edge ledger
//! ([`callgraph`]), and runs three reachability analyses ([`reach`]):
//!
//! * [`rules::RULE_TRANS_ALLOC`] — allocation anywhere *reachable from* a
//!   hotlist root, with the full call chain in the finding,
//! * [`rules::RULE_DETERMINISM_TAINT`] — wall-clock / hash-iteration /
//!   thread-knob effects reachable from the deterministic roots in
//!   `crates/lint/reach.toml`,
//! * [`rules::RULE_PANIC_PATH`] — panic-capable functions reachable from
//!   the resident serving path, answered only by a reasoned
//!   `crates/lint/panic_allowlist.txt` entry.
//!
//! Findings can be excused inline with
//! `// kinet-lint: allow(<rule>) — <reason>` ([`suppress`]); the reason is
//! mandatory and stale or malformed directives are violations themselves.
//! The `lint_gate` bin (in `kinet_bench`) renders a [`LintReport`] to
//! `lint_report.json` plus a [`CallGraphSummary`] to `callgraph.json` and
//! fails CI on any unsuppressed finding.
//!
//! The per-file scan runs on `KINET_THREADS` workers over contiguous
//! slabs of the sorted file list; results are merged in file order and
//! every downstream stage is order-invariant, so the report and graph
//! bytes are identical for any thread count (pinned by proptests).

pub mod callgraph;
pub mod hotlist;
pub mod lexer;
pub mod reach;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod symbols;

pub use callgraph::{CallGraph, CallGraphSummary};
pub use hotlist::{parse_hotlist, parse_unsafe_allowlist, HotFile};
pub use reach::ReachPolicy;
pub use report::{Finding, LintReport, SCHEMA_VERSION};
pub use rules::{scan_source, LintConfig};

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Every `.rs` file the lint patrols, as sorted
/// `(workspace-relative path, absolute path)` pairs. Skips `target/`,
/// `.git/`, and the lint fixture corpus (deliberate violations used by
/// the engine's own tests).
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = relpath(&path, root);
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" || rel.ends_with("tests/fixtures") {
                continue;
            }
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((rel, path));
        }
    }
    Ok(())
}

fn relpath(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Loads the repository's standing policy: `crates/lint/hotlist.toml` and
/// `crates/lint/unsafe_allowlist.txt` under `root`, wrapped in
/// [`LintConfig::repo_policy`].
pub fn load_workspace_config(root: &Path) -> Result<LintConfig, String> {
    let hot_path = root.join("crates/lint/hotlist.toml");
    let hot_text =
        fs::read_to_string(&hot_path).map_err(|e| format!("read {}: {e}", hot_path.display()))?;
    let hotlist = parse_hotlist(&hot_text).map_err(|e| format!("{}: {e}", hot_path.display()))?;
    let allow_path = root.join("crates/lint/unsafe_allowlist.txt");
    let allow_text = fs::read_to_string(&allow_path)
        .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
    Ok(LintConfig::repo_policy(
        hotlist,
        parse_unsafe_allowlist(&allow_text),
    ))
}

/// Loads the reachability policy: `crates/lint/reach.toml` plus
/// `crates/lint/panic_allowlist.txt` under `root`. Both files are
/// required — a missing policy file would silently drop whole analyses.
/// Reason-less allowlist entries come back as findings, not errors, so
/// the gate can report them like any other violation.
pub fn load_reach_policy(root: &Path) -> Result<(ReachPolicy, Vec<Finding>), String> {
    let reach_path = root.join(reach::REACH_POLICY_PATH);
    let text = fs::read_to_string(&reach_path)
        .map_err(|e| format!("read {}: {e}", reach_path.display()))?;
    let mut policy =
        reach::parse_reach(&text).map_err(|e| format!("{}: {e}", reach_path.display()))?;
    let allow_path = root.join(reach::PANIC_ALLOWLIST_PATH);
    let allow_text = fs::read_to_string(&allow_path)
        .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
    let (allow, errs) = reach::parse_panic_allowlist(&allow_text);
    policy.panic_allow = allow;
    Ok((policy, errs))
}

/// Full two-stage lint outcome: the findings report plus the call-graph
/// summary for `callgraph.json`.
pub struct WorkspaceLint {
    /// All findings (local + interprocedural), gate counters, catalog.
    pub report: LintReport,
    /// Node/edge/ledger counts and per-root reachable-set sizes.
    pub graph: CallGraphSummary,
}

/// Lints the whole workspace under `root` with explicit configs and an
/// explicit worker count — the deterministic core [`run_workspace`] wraps.
pub fn run_full(
    root: &Path,
    cfg: &LintConfig,
    policy: &ReachPolicy,
    policy_findings: Vec<Finding>,
    threads: usize,
) -> Result<WorkspaceLint, String> {
    let files = workspace_files(root)?;
    let mut scans = scan_files_parallel(&files, cfg, threads)?;

    // Stage 2: graph + reachability over every file's nodes.
    let graph_nodes: Vec<(String, Vec<callgraph::Node>)> = scans
        .iter_mut()
        .map(|s| (s.relpath.clone(), std::mem::take(&mut s.nodes)))
        .collect();
    let graph = callgraph::CallGraph::build(graph_nodes);
    let outcome = reach::run_analyses(&graph, &cfg.hotlist, policy);

    // Global suppression resolution: each file's inline allows see both
    // its local hits and the interprocedural findings that landed in it.
    let mut per_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in outcome.findings {
        per_file.entry(f.file.clone()).or_default().push(f);
    }
    let mut findings = Vec::new();
    for scan in scans {
        let inter = per_file.remove(&scan.relpath).unwrap_or_default();
        findings.extend(rules::finalize(scan, inter));
    }
    // Findings against policy files themselves (root drift, stale
    // allowlist entries) have no scanned source to resolve against.
    for (_, rest) in per_file {
        findings.extend(rest);
    }
    findings.extend(policy_findings);

    let summary = callgraph::CallGraphSummary::new(files.len(), &graph, outcome.roots);
    Ok(WorkspaceLint {
        report: LintReport::from_findings(files.len(), findings),
        graph: summary,
    })
}

/// Stage-1 scans, fanned out over `threads` workers on contiguous slabs
/// of the sorted file list and merged back in file order — the output is
/// identical for any worker count.
fn scan_files_parallel(
    files: &[(String, PathBuf)],
    cfg: &LintConfig,
    threads: usize,
) -> Result<Vec<rules::FileScan>, String> {
    let scan_one = |rel: &String, path: &PathBuf| -> Result<rules::FileScan, String> {
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Ok(rules::scan_file(rel, &src, cfg))
    };
    if threads <= 1 || files.len() <= 1 {
        return files
            .iter()
            .map(|(rel, path)| scan_one(rel, path))
            .collect();
    }
    let chunk = files.len().div_ceil(threads.min(files.len()));
    let mut results: Vec<Result<Vec<rules::FileScan>, String>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = files
            .chunks(chunk)
            .map(|slab| {
                s.spawn(move || {
                    slab.iter()
                        .map(|(rel, path)| scan_one(rel, path))
                        .collect::<Result<Vec<_>, String>>()
                })
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "lint scan worker panicked".to_string())
                    .and_then(|r| r)
            })
            .collect();
    });
    let mut out = Vec::with_capacity(files.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Worker count: `KINET_THREADS` when set and ≥ 1, else the machine's
/// available parallelism (the same convention as the tensor pool).
fn env_threads() -> usize {
    std::env::var("KINET_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
}

/// Lints the whole workspace under `root` with the committed policy and
/// the ambient worker count — what `lint_gate` and the smoke test run.
pub fn run_workspace(root: &Path) -> Result<WorkspaceLint, String> {
    run_workspace_with_threads(root, env_threads())
}

/// [`run_workspace`] with an explicit worker count, so tests can pin
/// output equality across `KINET_THREADS ∈ {1, 2, 4}` without racing on
/// the process environment.
pub fn run_workspace_with_threads(root: &Path, threads: usize) -> Result<WorkspaceLint, String> {
    let cfg = load_workspace_config(root)?;
    let (policy, policy_findings) = load_reach_policy(root)?;
    run_full(root, &cfg, &policy, policy_findings, threads)
}
