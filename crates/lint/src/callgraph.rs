//! A conservative, name-based workspace call graph.
//!
//! Nodes are the [`crate::symbols::FnItem`]s of every scanned file; edges
//! come from three call shapes found in a body's token stream:
//!
//! * **direct** — `helper(...)`: resolves to every *free* function with
//!   that bare name (a method can only be called bare through a `use`
//!   import, which this model does not track — such sites ledger);
//! * **qualified** — `Owner::helper(...)`: resolves to nodes whose
//!   `impl`/`trait` owner matches (`Self::` resolves against the caller's
//!   own impl block), falling back to free-function matching when no
//!   owner matches (the path segment may be a module, not a type);
//! * **method** — `x.helper(...)`: resolves to every *method* node with
//!   that name, whatever its owner — the receiver's type is unknown, so
//!   the graph over-approximates.
//!
//! Over-approximation is visible, never silent: every call site that
//! resolves to nothing lands in the unresolved-edge **ledger** (a
//! name → site-count map), method names that collide with ubiquitous
//! `std` methods ([`STD_SHADOWED`]) are deliberately routed to the ledger
//! instead of producing edges to every same-named workspace method,
//! qualified calls on `std` container/primitive types ([`STD_QUALIFIERS`])
//! ledger instead of falling back (an edge from every `Vec::new(...)` to
//! every workspace `fn new` would drown the graph in constructors), and
//! multi-candidate sites are counted in `ambiguous_call_sites`. The
//! ledger and counts fold into `callgraph.json` via [`CallGraphSummary`].
//!
//! Determinism: nodes are ordered by (file, line, name) over the sorted
//! file list, adjacency lists are sorted and deduped, and the build takes
//! no locks and spawns no threads — the same inputs produce the same
//! graph bytes for any file visit order or `KINET_THREADS` value (pinned
//! by proptests in `tests/callgraph_props.rs`).

use crate::lexer::{TokKind, Token};
use crate::reach::{scan_effects, EffectSite};
use crate::symbols::{is_expr_keyword, FnItem};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Method names shadowed by ubiquitous `std`/prelude methods: a `.name(`
/// site with one of these names is *recorded in the ledger* instead of
/// resolved, because edges to every same-named workspace method would be
/// noise, and edges to the real `std` implementation are outside the
/// graph by definition.
pub const STD_SHADOWED: [&str; 73] = [
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "display",
    "drain",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "max",
    "min",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "parse",
    "position",
    "push",
    "read",
    "remove",
    "rev",
    "skip",
    "sort",
    "split",
    "sum",
    "take",
    "trim",
    "values",
    "write",
    "zip",
];

/// Qualifiers that name `std` container/primitive types: a
/// `Qualifier::fn(...)` site whose qualifier is one of these (and whose
/// owner lookup found nothing — a vendored shim *may* implement the type)
/// goes straight to the ledger instead of falling back to bare-name
/// matching.
pub const STD_QUALIFIERS: [&str; 34] = [
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "Box",
    "Cell",
    "Duration",
    "HashMap",
    "HashSet",
    "Instant",
    "Mutex",
    "OnceLock",
    "Option",
    "Ordering",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Result",
    "RwLock",
    "String",
    "SystemTime",
    "Vec",
    "VecDeque",
    "char",
    "f32",
    "f64",
    "i32",
    "i64",
    "str",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

/// One call site extracted from a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// Callee name as written.
    pub callee: String,
    /// Path qualifier immediately before `::callee`, if any.
    pub owner: Option<String>,
    /// `true` for `.callee(...)` method syntax.
    pub method: bool,
    /// 1-based line of the call site.
    pub line: usize,
}

/// Everything the interprocedural stage needs from one function body.
#[derive(Clone, Debug, Default)]
pub struct BodyScan {
    /// Call sites, in order of appearance.
    pub calls: Vec<Call>,
    /// Primitive effect sites (allocation, wall-clock, …).
    pub effects: Vec<EffectSite>,
}

/// Extracts call sites and effect sites from one body's code tokens.
/// `hash_names` are the file's hash-container binding names (for the
/// hash-iteration effect).
pub fn scan_body(body: &[&Token], hash_names: &[String]) -> BodyScan {
    BodyScan {
        calls: scan_calls(body),
        effects: scan_effects(body, hash_names),
    }
}

fn scan_calls(body: &[&Token]) -> Vec<Call> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident || is_expr_keyword(&t.text) {
            continue;
        }
        if !body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue; // macros (`name!`) and bare mentions are not calls
        }
        let prev = i.checked_sub(1).map(|p| body[p]);
        if prev.is_some_and(|p| p.is_punct('.')) {
            out.push(Call {
                callee: t.text.clone(),
                owner: None,
                method: true,
                line: t.line,
            });
            continue;
        }
        // `Owner :: callee (` — the two preceding puncts are `::`.
        let qualified = i >= 2 && body[i - 1].is_punct(':') && body[i - 2].is_punct(':');
        let owner = if qualified {
            i.checked_sub(3)
                .map(|p| body[p])
                .filter(|o| o.kind == TokKind::Ident)
                .map(|o| o.text.clone())
        } else {
            None
        };
        if qualified && owner.is_none() {
            // `<T as Trait>::f(...)` and friends: qualifier unknowable by
            // name — treat as a bare call so it still over-approximates.
        }
        out.push(Call {
            callee: t.text.clone(),
            owner,
            method: false,
            line: t.line,
        });
    }
    out
}

/// One graph node: a function plus everything scanned from its body.
#[derive(Clone, Debug)]
pub struct Node {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The item (name, owner, line, body range).
    pub item: FnItem,
    /// `true` when the file is test-scoped (`tests/`, `benches/`,
    /// `examples/`, `src/bin/`): such nodes are never call candidates
    /// for non-test callers — library code cannot link against them.
    pub test_scope: bool,
    /// Effect sites found in the body.
    pub effects: Vec<EffectSite>,
    /// Raw call sites (kept for diagnostics; edges live in the graph).
    pub calls: Vec<Call>,
}

impl Node {
    /// `Owner::name` or bare `name` — used in chains and root specs.
    pub fn display(&self) -> String {
        self.item.qualified()
    }
}

/// `true` for paths whose items only exist under test/bench/bin targets.
pub fn test_scoped_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
}

/// The resolved workspace call graph.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Nodes ordered by (file, line, name) over the sorted file list.
    pub nodes: Vec<Node>,
    /// Sorted, deduped adjacency: `adj[i]` = indices `nodes[i]` may call.
    pub adj: Vec<Vec<usize>>,
    /// Unresolved-edge ledger: callee key → number of call sites that
    /// resolved to nothing. Method-syntax keys are prefixed with `.`;
    /// qualified keys keep their `Owner::` prefix.
    pub unresolved: BTreeMap<String, usize>,
    /// Call sites that resolved to more than one candidate.
    pub ambiguous_call_sites: usize,
}

impl CallGraph {
    /// Builds the graph from per-file node lists. `files` may arrive in
    /// any order — nodes are sorted before resolution, so the result is
    /// order-invariant.
    pub fn build(files: Vec<(String, Vec<Node>)>) -> CallGraph {
        let mut files = files;
        files.sort_by(|a, b| a.0.cmp(&b.0));
        let mut nodes: Vec<Node> = Vec::new();
        for (_, mut ns) in files {
            ns.sort_by(|a, b| {
                (a.item.line, a.item.name.as_str()).cmp(&(b.item.line, b.item.name.as_str()))
            });
            nodes.extend(ns);
        }
        // Name indexes. BTreeMaps keep candidate lists sorted by node id.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(&n.item.name).or_default().push(id);
            if let Some(o) = &n.item.owner {
                by_owner.entry((o, &n.item.name)).or_default().push(id);
            }
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut unresolved: BTreeMap<String, usize> = BTreeMap::new();
        let mut ambiguous = 0usize;
        for (id, n) in nodes.iter().enumerate() {
            for call in &n.calls {
                let (candidates, key) = resolve(call, n, &nodes, &by_name, &by_owner);
                match candidates {
                    Some(c) if !c.is_empty() => {
                        if c.len() > 1 {
                            ambiguous += 1;
                        }
                        adj[id].extend(c);
                    }
                    _ => *unresolved.entry(key).or_insert(0) += 1,
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        CallGraph {
            nodes,
            adj,
            unresolved,
            ambiguous_call_sites: ambiguous,
        }
    }

    /// Total resolved edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Node ids whose qualified or bare name matches `spec`
    /// (`Owner::name` or `name`), excluding test-scoped nodes.
    pub fn resolve_root(&self, spec: &str) -> Vec<usize> {
        let (owner, name) = match spec.split_once("::") {
            Some((o, n)) => (Some(o), n),
            None => (None, spec),
        };
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.test_scope)
            .filter(|(_, n)| {
                n.item.name == name
                    && match owner {
                        Some(o) => n.item.owner.as_deref() == Some(o),
                        None => true,
                    }
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Breadth-first reachability from `roots`, returning each reached
    /// node's predecessor (`parent[i]`, usize::MAX for roots/unreached).
    /// Deterministic: roots are visited in the given order and adjacency
    /// is sorted.
    pub fn bfs(&self, roots: &[usize]) -> Vec<usize> {
        const UNSEEN: usize = usize::MAX;
        let mut parent = vec![UNSEEN; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        for &r in roots {
            parent[r] = UNSEEN;
        }
        parent
    }

    /// The `root → … → node` chain implied by a [`CallGraph::bfs`] parent
    /// table, rendered with qualified names.
    pub fn chain(&self, parent: &[usize], mut node: usize) -> String {
        let mut names = vec![self.nodes[node].display()];
        while parent[node] != usize::MAX {
            node = parent[node];
            names.push(self.nodes[node].display());
        }
        names.reverse();
        names.join(" → ")
    }
}

fn resolve(
    call: &Call,
    caller: &Node,
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_owner: &BTreeMap<(&str, &str), Vec<usize>>,
) -> (Option<Vec<usize>>, String) {
    let visible = |ids: &Vec<usize>| -> Vec<usize> {
        ids.iter()
            .copied()
            .filter(|&id| caller.test_scope || !nodes[id].test_scope)
            .collect()
    };
    if call.method {
        let key = format!(".{}", call.callee);
        if STD_SHADOWED.contains(&call.callee.as_str()) {
            return (None, key);
        }
        let cands = by_name
            .get(call.callee.as_str())
            .map(|ids| {
                visible(ids)
                    .into_iter()
                    .filter(|&id| nodes[id].item.owner.is_some())
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        return (Some(cands).filter(|c| !c.is_empty()), key);
    }
    // Bare and fallback resolution only considers free functions: a
    // method can only be called bare through a `use Type::method` import,
    // which this name model does not track.
    let free = |ids: &Vec<usize>| -> Vec<usize> {
        visible(ids)
            .into_iter()
            .filter(|&id| nodes[id].item.owner.is_none())
            .collect()
    };
    if let Some(owner) = &call.owner {
        // `Self::helper()` names the caller's own impl block.
        let owner = if owner == "Self" {
            caller.item.owner.as_deref().unwrap_or("Self")
        } else {
            owner.as_str()
        };
        let key = format!("{owner}::{}", call.callee);
        if let Some(ids) = by_owner.get(&(owner, call.callee.as_str())) {
            let cands = visible(ids);
            if !cands.is_empty() {
                return (Some(cands), key);
            }
        }
        if STD_QUALIFIERS.contains(&owner) || STD_SHADOWED.contains(&call.callee.as_str()) {
            return (None, key);
        }
        // The qualifier may be a module path segment, not a type: fall
        // back to free-function matching so the edge is not lost.
        let cands = by_name
            .get(call.callee.as_str())
            .map(&free)
            .unwrap_or_default();
        return (Some(cands).filter(|c| !c.is_empty()), key);
    }
    let key = call.callee.clone();
    let cands = by_name
        .get(call.callee.as_str())
        .map(&free)
        .unwrap_or_default();
    (Some(cands).filter(|c| !c.is_empty()), key)
}

/// One unresolved-ledger row for `callgraph.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Callee key (`.method`, `Owner::fn`, or bare `fn`).
    pub callee: String,
    /// Number of call sites that resolved to nothing.
    pub sites: usize,
}

/// Per-root reachability row for `callgraph.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RootReach {
    /// Which analysis owns the root (`alloc`, `taint`, `panic`).
    pub analysis: String,
    /// Root spec as written in policy (`FleetService::run`).
    pub root: String,
    /// Reachable-set size, root included. 0 = the spec matched nothing
    /// (which is itself a finding).
    pub reachable: usize,
}

/// The machine-readable graph summary CI uploads as `callgraph.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CallGraphSummary {
    /// Schema version for downstream diffing.
    pub schema_version: usize,
    /// `.rs` files whose items entered the graph.
    pub files: usize,
    /// Function nodes.
    pub nodes: usize,
    /// Resolved (deduped) edges.
    pub edges: usize,
    /// Call sites that resolved to more than one candidate.
    pub ambiguous_call_sites: usize,
    /// Total call sites in the unresolved ledger.
    pub unresolved_sites: usize,
    /// The full unresolved ledger, sorted by callee key.
    pub unresolved: Vec<LedgerEntry>,
    /// Per-root reachable-set sizes for every analysis root.
    pub roots: Vec<RootReach>,
}

impl CallGraphSummary {
    /// Assembles the summary from a built graph plus the per-root
    /// reachability rows computed by [`crate::reach`].
    pub fn new(files: usize, graph: &CallGraph, roots: Vec<RootReach>) -> Self {
        let unresolved: Vec<LedgerEntry> = graph
            .unresolved
            .iter()
            .map(|(callee, sites)| LedgerEntry {
                callee: callee.clone(),
                sites: *sites,
            })
            .collect();
        CallGraphSummary {
            schema_version: crate::report::SCHEMA_VERSION,
            files,
            nodes: graph.nodes.len(),
            edges: graph.edge_count(),
            ambiguous_call_sites: graph.ambiguous_call_sites,
            unresolved_sites: unresolved.iter().map(|e| e.sites).sum(),
            unresolved,
            roots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::parse_items;

    fn file_nodes(rel: &str, src: &str) -> (String, Vec<Node>) {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| t.is_code()).collect();
        let names = crate::rules::hash_bindings(&code);
        let nodes = parse_items(&code)
            .into_iter()
            .map(|item| {
                let scan = item
                    .body
                    .map(|(s, e)| scan_body(&code[s..e], &names))
                    .unwrap_or_default();
                Node {
                    file: rel.to_string(),
                    item,
                    test_scope: test_scoped_path(rel),
                    effects: scan.effects,
                    calls: scan.calls,
                }
            })
            .collect();
        (rel.to_string(), nodes)
    }

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(files.iter().map(|(r, s)| file_nodes(r, s)).collect())
    }

    fn ids(g: &CallGraph, name: &str) -> Vec<usize> {
        g.resolve_root(name)
    }

    #[test]
    fn direct_qualified_and_method_calls_resolve() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); Store::read_all(); self.score(); }\n\
             fn helper() {}\n\
             impl Store { fn read_all() {} }\n\
             impl Model { fn score(&self) {} }\n",
        )]);
        let top = ids(&g, "top")[0];
        let callees: Vec<String> = g.adj[top].iter().map(|&i| g.nodes[i].display()).collect();
        assert_eq!(callees, ["helper", "Store::read_all", "Model::score"]);
    }

    #[test]
    fn std_shadowed_methods_land_in_the_ledger_not_the_graph() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn top(v: &[u8]) { v.iter(); v.len(); self.custom_step(); }\n\
             impl Engine { fn iter(&self) {} fn custom_step(&self) {} }\n",
        )]);
        let top = ids(&g, "top")[0];
        let callees: Vec<String> = g.adj[top].iter().map(|&i| g.nodes[i].display()).collect();
        assert_eq!(callees, ["Engine::custom_step"], "iter/len shadowed");
        assert_eq!(g.unresolved.get(".iter"), Some(&1));
        assert_eq!(g.unresolved.get(".len"), Some(&1));
    }

    #[test]
    fn test_scoped_candidates_are_invisible_to_library_callers() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn top() { run_case(); }\n"),
            ("crates/a/tests/t.rs", "fn run_case() { top(); }\n"),
        ]);
        let top = ids(&g, "top")[0];
        assert!(g.adj[top].is_empty(), "src cannot call into tests");
        assert_eq!(g.unresolved.get("run_case"), Some(&1));
        // The test caller sees the library fn fine.
        let tc = g
            .nodes
            .iter()
            .position(|n| n.item.name == "run_case")
            .unwrap();
        assert_eq!(g.adj[tc], [top]);
    }

    #[test]
    fn self_calls_resolve_in_the_impl_and_std_qualifiers_ledger() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "impl Engine { fn step(&self) { Self::helper_fx(); let v = Vec::new(); drop(v); } \
             fn helper_fx() {} }\n\
             fn new() {}\n",
        )]);
        let step = ids(&g, "Engine::step")[0];
        let callees: Vec<String> = g.adj[step].iter().map(|&i| g.nodes[i].display()).collect();
        assert_eq!(callees, ["Engine::helper_fx"], "no edge to the free `new`");
        assert_eq!(g.unresolved.get("Vec::new"), Some(&1));
        assert_eq!(g.unresolved.get("drop"), Some(&1));
    }

    #[test]
    fn bare_calls_never_resolve_to_methods() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn top() { refresh_fx(); }\n\
             impl Cache { fn refresh_fx(&self) {} }\n",
        )]);
        let top = ids(&g, "top")[0];
        assert!(g.adj[top].is_empty());
        assert_eq!(g.unresolved.get("refresh_fx"), Some(&1));
    }

    #[test]
    fn build_is_file_order_invariant() {
        let files = [
            ("crates/a/src/lib.rs", "fn a() { b(); }\n"),
            ("crates/b/src/lib.rs", "fn b() { a(); }\n"),
        ];
        let fwd = graph(&files);
        let rev = CallGraph::build(vec![
            file_nodes(files[1].0, files[1].1),
            file_nodes(files[0].0, files[0].1),
        ]);
        let names = |g: &CallGraph| -> Vec<String> { g.nodes.iter().map(Node::display).collect() };
        assert_eq!(names(&fwd), names(&rev));
        assert_eq!(fwd.adj, rev.adj);
    }

    #[test]
    fn bfs_chains_render_shortest_paths() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let (a, c) = (ids(&g, "a")[0], ids(&g, "c")[0]);
        let parent = g.bfs(&[a]);
        assert_eq!(g.chain(&parent, c), "a → b → c");
    }
}
