//! Machine-readable lint output: `lint_report.json`, round-trippable
//! through the vendored serde deserializer exactly like the bench/sim/fleet
//! reports, so CI can upload it and later runs can reload it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Version stamp shared by `lint_report.json` and `callgraph.json` so
/// downstream diffing tools can refuse to compare across schema changes.
/// Bump on any field addition/rename. v1 was the PR 6 per-file report;
/// v2 added the interprocedural stage (`schema_version` itself, the
/// three reachability rules, and the call-graph summary artifact).
pub const SCHEMA_VERSION: usize = 2;

/// One finding, suppressed or not.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (see [`crate::rules`]).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `true` when an inline `kinet-lint: allow` covers this finding.
    pub suppressed: bool,
    /// The suppression's written reason (empty when unsuppressed).
    pub reason: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.suppressed { "allowed" } else { "FAIL" };
        write!(
            f,
            "[{mark}] {}:{} {}: {}",
            self.file, self.line, self.rule, self.message
        )?;
        if self.suppressed {
            write!(f, " ({})", self.reason)?;
        }
        Ok(())
    }
}

/// The full outcome of one lint run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LintReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, suppressed ones included, sorted by
    /// (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings with no covering suppression — the gate fails when > 0.
    pub unsuppressed: usize,
    /// Findings carried by a reasoned inline allow.
    pub suppressed: usize,
    /// The rule catalog this engine version enforces.
    pub rules: Vec<String>,
}

impl LintReport {
    /// Assembles a report from raw findings (sorts and counts).
    pub fn from_findings(files_scanned: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        let suppressed = findings.iter().filter(|f| f.suppressed).count();
        let unsuppressed = findings.len() - suppressed;
        LintReport {
            schema_version: SCHEMA_VERSION,
            files_scanned,
            findings,
            unsuppressed,
            suppressed,
            rules: crate::rules::rule_catalog(),
        }
    }

    /// `true` when the tree is clean: zero unsuppressed findings.
    pub fn gate_passes(&self) -> bool {
        self.unsuppressed == 0
    }

    /// The unsuppressed findings, for printing on failure.
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, suppressed: bool) -> Finding {
        Finding {
            rule: "wall-clock".into(),
            file: file.into(),
            line,
            message: "Instant::now".into(),
            suppressed,
            reason: if suppressed {
                "timing report".into()
            } else {
                String::new()
            },
        }
    }

    #[test]
    fn counts_and_ordering() {
        let r =
            LintReport::from_findings(3, vec![finding("b.rs", 2, false), finding("a.rs", 9, true)]);
        assert_eq!(r.findings[0].file, "a.rs", "sorted by file");
        assert_eq!((r.unsuppressed, r.suppressed), (1, 1));
        assert!(!r.gate_passes());
        assert_eq!(r.failures().count(), 1);
        assert!(LintReport::from_findings(0, vec![]).gate_passes());
    }

    #[test]
    fn json_roundtrip_through_the_shim_deserializer() {
        let r =
            LintReport::from_findings(5, vec![finding("a.rs", 1, true), finding("a.rs", 4, false)]);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.files_scanned, 5);
        assert_eq!(back.findings.len(), 2);
        assert_eq!(back.unsuppressed, 1);
        assert_eq!(back.findings[0].reason, "timing report");
        assert_eq!(back.rules, r.rules);
        let display = back.findings[1].to_string();
        assert!(display.contains("[FAIL]") && display.contains("a.rs:4"));
    }
}
