//! The lightweight item model feeding the interprocedural stage.
//!
//! [`parse_items`] walks one file's *code* token stream (comments already
//! filtered) and extracts every `fn` item — free functions, inherent and
//! trait methods, default trait-method bodies, and nested `fn`s — with its
//! enclosing `impl`/`trait` owner type, 1-based declaration line, and the
//! exact code-token range of its body. The ranges feed
//! [`crate::callgraph`] and [`crate::reach`], so a mis-scoped body is an
//! interprocedural false negative; [`fn_body`] therefore handles the hard
//! signature shapes (angle-bracket generics, const-generic default blocks,
//! `where` clauses with parenthesized bounds and array types) and the hard
//! body shapes (closures, match arms, nested items) exactly.
//!
//! This is deliberately a *name* model, not a type model: no paths are
//! resolved, no generics instantiated. The call graph built on top
//! over-approximates on every ambiguity and says so in its ledger.

use crate::lexer::{TokKind, Token};

/// One `fn` item found in a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name (`gemm`, `score_rows`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name (`ServingModel`), if any. For
    /// `impl Display for FaultKind` blocks this is the *implementing*
    /// type (`FaultKind`), matching how call sites qualify paths.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Code-token index range of the body, exclusive of both braces.
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Owner::name` for methods, bare `name` otherwise — the display
    /// form used in call-chain messages and root specs.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Rust keywords that can directly precede `(` or `[` in expression
/// position — never call or index receivers.
pub const EXPR_KEYWORDS: [&str; 16] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "mut", "in", "move", "ref",
    "as", "break", "continue", "where",
];

/// `true` when the ident text is a keyword from [`EXPR_KEYWORDS`].
pub fn is_expr_keyword(text: &str) -> bool {
    EXPR_KEYWORDS.contains(&text)
}

/// Extracts every `fn` item from a file's code tokens. The walk descends
/// into bodies, so nested `fn`s (and `impl` blocks inside bodies) are
/// found too; a nested `fn` inherits the innermost surrounding owner.
pub fn parse_items(code: &[&Token]) -> Vec<FnItem> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    // (depth *after* the opening brace, owner) — innermost last.
    let mut owners: Vec<(usize, Option<String>)> = Vec::new();
    // An impl/trait header whose `{` has not arrived yet.
    let mut pending: Option<(usize, Option<String>)> = None;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
            if let Some((brace_idx, owner)) = pending.take() {
                if brace_idx == i {
                    owners.push((depth, owner));
                } else {
                    pending = Some((brace_idx, owner)); // not this brace
                }
            }
        } else if t.is_punct('}') {
            if owners.last().is_some_and(|(d, _)| *d == depth) {
                owners.pop();
            }
            depth = depth.saturating_sub(1);
        } else if (t.is_ident("impl") || t.is_ident("trait")) && item_position(code, i) {
            if let Some((owner, brace_idx)) = block_owner(code, i) {
                pending = Some((brace_idx, owner));
            }
        } else if t.is_ident("fn") && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let name = &code[i + 1];
            items.push(FnItem {
                name: name.text.clone(),
                owner: owners.last().and_then(|(_, o)| o.clone()),
                line: t.line,
                body: fn_body(code, i + 2),
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    items
}

/// `true` when the `impl`/`trait` token at `i` opens an item block rather
/// than naming a type (`-> impl Iterator`, `x: impl Fn()`, `&impl Read`).
/// Type-position `impl` is always preceded by a type-context punct; item
/// position by a block boundary, `;`, an attribute's `]`, or modifiers.
fn item_position(code: &[&Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| code[p]) else {
        return true; // file start
    };
    if prev.kind == TokKind::Punct {
        return matches!(prev.text.as_str(), "{" | "}" | ";" | "]");
    }
    // `unsafe impl`, `pub`? `pub` is followed by `fn`/`struct`… or `impl`.
    prev.is_ident("unsafe") || prev.is_ident("pub")
}

/// Resolves the owner type of an `impl`/`trait` header starting at `i`,
/// plus the code-token index of its opening `{`. For `impl A for B` the
/// owner is `B`'s last path segment; for `impl A` it is `A`'s; for
/// `trait T` it is `T`. Generic arguments and `where` clauses are
/// skipped. `None` when no `{` follows (malformed or end of file).
fn block_owner(code: &[&Token], i: usize) -> Option<(Option<String>, usize)> {
    let mut angle = 0i32;
    let mut owner: Option<String> = None;
    let mut in_where = false;
    let mut j = i + 1;
    while j < code.len() {
        let t = code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" if angle > 0 && !arrow_tail(code, j) => angle -= 1,
                "{" if angle == 0 => return Some((owner, j)),
                ";" if angle == 0 => return None, // `impl Trait for T;`-ish
                _ => {}
            }
        } else if t.kind == TokKind::Ident && angle == 0 && !in_where {
            match t.text.as_str() {
                "where" => in_where = true,
                // `for` resets: the implementing type comes next.
                "for" => owner = None,
                "dyn" | "unsafe" | "const" => {}
                _ => owner = Some(t.text.clone()),
            }
        }
        j += 1;
    }
    None
}

/// `true` when the `>` at `j` is the tail of a `->` arrow.
fn arrow_tail(code: &[&Token], j: usize) -> bool {
    j.checked_sub(1).is_some_and(|p| code[p].is_punct('-'))
}

/// Token range (exclusive of braces) of the body after a `fn name`, with
/// `from` just past the name. `None` for bodyless trait declarations.
///
/// The signature skip tracks three nesting depths so a stray `{` or `;`
/// cannot truncate or inflate the body: parens/brackets (`[u8; 4]` return
/// types, `Fn() -> R` bounds in `where` clauses), and angle brackets
/// (generic parameter lists, including const-generic default *blocks*
/// like `<const N: usize = { 8 }>` — a `{` inside generics is signature,
/// not body). A `>` preceded by `-` is an arrow, never a closing angle.
/// The body itself is pure brace counting — closures, match arms, struct
/// literals, and nested items all balance, and the lexer has already
/// removed every brace-shaped impostor (strings, chars, comments).
pub fn fn_body(code: &[&Token], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    let mut group = 0i32; // () and []
    let mut angle = 0i32; // <> generics
    while i < code.len() {
        let t = code[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => group += 1,
                ")" | "]" => group -= 1,
                "<" if group == 0 => angle += 1,
                ">" if group == 0 && angle > 0 && !arrow_tail(code, i) => angle -= 1,
                "{" if group == 0 && angle == 0 => break,
                ";" if group == 0 && angle == 0 => return None,
                _ => {}
            }
        }
        i += 1;
    }
    if i >= code.len() {
        return None;
    }
    let start = i + 1;
    let mut depth = 1i32;
    i = start;
    while i < code.len() && depth > 0 {
        if code[i].is_punct('{') {
            depth += 1;
        } else if code[i].is_punct('}') {
            depth -= 1;
        }
        i += 1;
    }
    Some((start, i.saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| t.is_code()).collect();
        parse_items(&code)
    }

    #[test]
    fn free_fns_methods_and_trait_defaults() {
        let src = "fn free() { body(); }\n\
                   impl ServingModel { fn score(&self) -> f64 { 0.0 } }\n\
                   impl fmt::Display for FaultKind { fn fmt(&self) {} }\n\
                   trait Store { fn read(&self); fn len(&self) -> usize { 0 } }\n";
        let got = items(src);
        let q: Vec<String> = got.iter().map(FnItem::qualified).collect();
        assert_eq!(
            q,
            [
                "free",
                "ServingModel::score",
                "FaultKind::fmt",
                "Store::read",
                "Store::len"
            ]
        );
        assert!(got[3].body.is_none(), "bodyless trait decl");
        assert!(got[4].body.is_some(), "default trait method has a body");
    }

    #[test]
    fn impl_in_type_position_does_not_open_an_owner() {
        let src = "fn f(x: impl Fn() -> usize) -> impl Iterator<Item = u8> { x(); iter() }\n\
                   fn g() {}\n";
        let got = items(src);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|f| f.owner.is_none()), "{got:?}");
    }

    #[test]
    fn nested_fns_and_inner_impls_are_found() {
        let src = "impl Outer { fn method(&self) { fn helper() {} helper(); } }\n";
        let got = items(src);
        let q: Vec<String> = got.iter().map(FnItem::qualified).collect();
        assert_eq!(q, ["Outer::method", "Outer::helper"]);
    }

    #[test]
    fn generic_impl_headers_resolve_the_implementing_type() {
        let src = "impl<T: Clone> Wrapper<T> { fn get(&self) {} }\n\
                   impl<'a, T> From<&'a T> for Holder<T> where T: Default { fn from(_: &T) {} }\n";
        let got = items(src);
        assert_eq!(got[0].owner.as_deref(), Some("Wrapper"));
        assert_eq!(got[1].owner.as_deref(), Some("Holder"));
    }
}
