// Fixture: the pool module owns the thread knob — identical references
// are allowed here.
pub fn worker_count() -> usize {
    std::env::var("KINET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn ambient() -> usize {
    num_threads()
}

fn num_threads() -> usize {
    1
}
