// Fixture: bare `unsafe` — no SAFETY comment, no allowlist entry.
pub fn transmuted(v: u32) -> f32 {
    unsafe { std::mem::transmute(v) }
}
