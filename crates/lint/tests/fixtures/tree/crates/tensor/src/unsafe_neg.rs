// Fixture: `unsafe` with both a SAFETY comment and an allowlist entry
// (see ../../../lint/unsafe_allowlist.txt in this fixture tree) — clean.
pub fn zeroed() -> u32 {
    // SAFETY: u32 has no invalid bit patterns, so zeroed is always valid.
    unsafe { std::mem::zeroed() }
}
