// Fixture: hash-container declaration and iteration in a deterministic
// crate — every HashMap mention below must be flagged.
use std::collections::HashMap;

pub fn histogram(events: &[String]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for e in events {
        *counts.entry(e.clone()).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, v) in &counts {
        out.push((k.clone(), *v));
    }
    out
}
