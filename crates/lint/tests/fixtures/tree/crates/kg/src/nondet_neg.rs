// Fixture: the deterministic alternative — ordered containers iterate
// freely and must produce no findings.
use std::collections::BTreeMap;

pub fn histogram(events: &[String]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for e in events {
        *counts.entry(e.clone()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
