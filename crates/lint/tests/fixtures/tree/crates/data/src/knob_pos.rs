// Fixture: thread-knob references outside the pool/schedule modules.
pub fn worker_count() -> usize {
    std::env::var("KINET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn ambient() -> usize {
    num_threads()
}
