// Fixture: allocations inside a hotlisted function body. `cold_setup`
// allocates too but is not on the hotlist, so only `hot_loop` is flagged.
pub fn hot_loop(xs: &[f32]) -> f32 {
    let mut buf = Vec::new();
    buf.extend_from_slice(xs);
    let label = format!("n={}", buf.len());
    let doubled: Vec<f32> = buf.iter().map(|v| v * 2.0).collect();
    doubled.len() as f32 + label.len() as f32
}

pub fn cold_setup() -> Vec<f32> {
    vec![0.0; 16]
}
