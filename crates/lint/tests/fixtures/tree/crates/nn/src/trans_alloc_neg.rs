// Fixture: the negative — a hotlisted function whose whole call chain
// stays allocation-free. No findings.
pub fn hot_chain(xs: &[f32]) -> f32 {
    accumulate_fx(xs)
}

fn accumulate_fx(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}
