// Fixture: transitive allocation. `hot_outer` is hotlisted and locally
// allocation-free — the vec! hides one call below, so only the
// interprocedural analysis can flag it (with the full call chain).
pub fn hot_outer(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    scale_buffer_fx(acc)
}

fn scale_buffer_fx(v: f32) -> f32 {
    let buf = vec![v; 4];
    buf.len() as f32
}
