// Fixture: a hotlisted function that honors the allocation-free contract.
pub fn hot_clean(acc: &mut [f32], xs: &[f32]) {
    for (a, x) in acc.iter_mut().zip(xs) {
        *a += x;
    }
}
