// Fixture: the negative — a serving root whose cone handles every miss
// explicitly. No findings.
pub fn serve_guarded_fx(rows: &[f32]) -> f32 {
    checked_head_fx(rows)
}

fn checked_head_fx(rows: &[f32]) -> f32 {
    match rows.first() {
        Some(v) => *v,
        None => 0.0,
    }
}
