// Fixture: determinism taint via a two-hop wall-clock read. The
// fingerprint root is clean; its helper's helper reads the clock, which
// only reachability can see. (The clock read also trips the local
// wall-clock rule — two contracts, two findings.)
use std::time::Instant;

pub struct RoundDigest;

impl RoundDigest {
    pub fn deterministic_digest(&self) -> u64 {
        digest_mix_fx(7)
    }
}

fn digest_mix_fx(seed: u64) -> u64 {
    seed ^ clock_stamp_fx()
}

fn clock_stamp_fx() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
