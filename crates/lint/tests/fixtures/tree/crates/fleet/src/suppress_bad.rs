// Fixture: three broken directives — reason-less, unknown rule, and a
// stale allow that excuses nothing. Each is its own finding.
pub fn broken() -> u32 {
    // kinet-lint: allow(wall-clock)
    let a = 1;
    // kinet-lint: allow(imaginary-rule) — not a rule the engine knows
    let b = 2;
    // kinet-lint: allow(wall-clock) — stale: nothing here reads a clock
    a + b
}
