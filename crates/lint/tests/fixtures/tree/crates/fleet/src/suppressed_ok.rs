// Fixture: a reasoned inline suppression — the finding must surface as
// suppressed, carrying the reason, and not fail the gate.
use std::time::Instant;

pub fn timed() -> f64 {
    // kinet-lint: allow(wall-clock) — fixture: report-only timing
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
