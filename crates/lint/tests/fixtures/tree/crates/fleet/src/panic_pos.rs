// Fixture: un-allowlisted panic sites on the serving path — indexing in
// the root itself and an `unwrap` one call below. Both must fail the
// gate (panic-path is never inline-suppressible).
pub fn serve_rows_fx(rows: &[f32]) -> f32 {
    let first = rows[0];
    first + pick_best_fx(rows)
}

fn pick_best_fx(rows: &[f32]) -> f32 {
    *rows.last().unwrap()
}
