// Fixture: an allowlisted panic site — the indexing is a finding, but
// the committed panic_allowlist.txt entry suppresses it with a reason.
pub fn serve_allowed_fx(rows: &[f32]) -> f32 {
    rows[rows.len() - 1]
}
