// Fixture: the negative — a fingerprint root whose reachable cone is
// pure arithmetic. No findings.
pub struct CleanDigest;

impl CleanDigest {
    pub fn deterministic_digest(&self) -> u64 {
        mix_fx(3)
    }
}

fn mix_fx(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9)
}
