// Fixture: wall-clock reads outside an allowlisted timing module.
use std::time::Instant;

pub fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

pub fn stamp_ms() -> f64 {
    let t0 = Instant::now();
    elapsed_ms(t0)
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
