// Fixture: identical wall-clock reads, but `crates/bench/` is an
// allowlisted timing harness — no findings.
use std::time::Instant;

pub fn stamp_ms() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
