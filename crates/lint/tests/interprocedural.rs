//! End-to-end coverage of the interprocedural analyses over the fixture
//! tree: one positive and one negative fixture per analysis
//! (transitive-allocation, determinism-taint, panic-path), the
//! allowlist/stale-entry/root-drift diagnostics, and the call-graph
//! summary the gate uploads as `callgraph.json`.

use kinet_lint::rules::{
    RULE_DETERMINISM_TAINT, RULE_PANIC_PATH, RULE_SUPPRESSION, RULE_TRANS_ALLOC,
};
use kinet_lint::{run_workspace, Finding, WorkspaceLint};
use std::path::PathBuf;

fn fixture_lint() -> WorkspaceLint {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree");
    run_workspace(&root).expect("fixture tree lints")
}

fn by_rule<'a>(lint: &'a WorkspaceLint, rule: &str) -> Vec<&'a Finding> {
    lint.report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn transitive_allocation_positive_carries_the_full_chain() {
    let lint = fixture_lint();
    let hits = by_rule(&lint, RULE_TRANS_ALLOC);
    let pos: Vec<_> = hits
        .iter()
        .filter(|f| f.file == "crates/nn/src/trans_alloc_pos.rs")
        .collect();
    assert_eq!(pos.len(), 1, "one hidden vec! sink: {hits:?}");
    let f = pos[0];
    assert!(!f.suppressed);
    assert!(
        f.message.contains("hot_outer → scale_buffer_fx → `vec!`"),
        "chain must be rendered in full: {}",
        f.message
    );
    assert!(
        f.message
            .contains("hot `crates/nn/src/trans_alloc_pos.rs::hot_outer`"),
        "the hot root is named: {}",
        f.message
    );
}

#[test]
fn transitive_allocation_negative_stays_clean() {
    let lint = fixture_lint();
    assert!(
        by_rule(&lint, RULE_TRANS_ALLOC)
            .iter()
            .all(|f| f.file != "crates/nn/src/trans_alloc_neg.rs"),
        "the allocation-free chain must not be flagged"
    );
}

#[test]
fn determinism_taint_positive_and_negative() {
    let lint = fixture_lint();
    let hits = by_rule(&lint, RULE_DETERMINISM_TAINT);
    let pos: Vec<_> = hits
        .iter()
        .filter(|f| f.file == "crates/fleet/src/taint_pos.rs")
        .collect();
    assert_eq!(pos.len(), 1, "one two-hop clock read: {hits:?}");
    let f = pos[0];
    assert!(!f.suppressed);
    assert!(
        f.message
            .contains("deterministic root `RoundDigest::deterministic_digest`"),
        "root spec named: {}",
        f.message
    );
    assert!(
        f.message
            .contains("digest_mix_fx → clock_stamp_fx → `Instant::now()`"),
        "two-hop chain rendered: {}",
        f.message
    );
    assert!(
        hits.iter()
            .all(|f| f.file != "crates/fleet/src/taint_neg.rs"),
        "the pure digest must not be flagged"
    );
}

#[test]
fn panic_path_positive_negative_and_allowlisted() {
    let lint = fixture_lint();
    let hits = by_rule(&lint, RULE_PANIC_PATH);
    // Positive: the root's own indexing plus the unwrap one call below,
    // grouped per function.
    let pos: Vec<_> = hits
        .iter()
        .filter(|f| f.file == "crates/fleet/src/panic_pos.rs")
        .collect();
    assert_eq!(pos.len(), 2, "serve_rows_fx and pick_best_fx: {hits:?}");
    assert!(pos.iter().all(|f| !f.suppressed));
    assert!(
        pos.iter()
            .any(|f| f.message.contains("`pick_best_fx`") && f.message.contains("unwrap()")),
        "the one-hop unwrap is grouped under its function: {pos:?}"
    );
    // Negative: checked accessors stay clean.
    assert!(
        hits.iter()
            .all(|f| f.file != "crates/fleet/src/panic_neg.rs"),
        "match-guarded access must not be flagged"
    );
    // Allowlisted: reported but suppressed, with the written reason.
    let allowed: Vec<_> = hits
        .iter()
        .filter(|f| f.file == "crates/fleet/src/panic_allowed.rs")
        .collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].suppressed);
    assert!(
        allowed[0].reason.contains("caller contract"),
        "the allowlist reason travels with the finding: {:?}",
        allowed[0]
    );
}

#[test]
fn stale_allowlist_entries_and_ghost_roots_are_findings() {
    let lint = fixture_lint();
    let supp = by_rule(&lint, RULE_SUPPRESSION);
    assert!(
        supp.iter()
            .any(|f| f.file == "crates/lint/panic_allowlist.txt"
                && !f.suppressed
                && f.message.contains("never_reached")),
        "the stale allowlist entry must surface: {supp:?}"
    );
    // Root drift is charged to the analysis whose coverage rotted.
    let drift = by_rule(&lint, RULE_DETERMINISM_TAINT);
    assert!(
        drift.iter().any(|f| f.file == "crates/lint/reach.toml"
            && !f.suppressed
            && f.message.contains("ghost_root_fx")),
        "a root spec matching nothing is policy drift: {drift:?}"
    );
}

#[test]
fn callgraph_summary_reports_ledger_and_root_sizes() {
    let lint = fixture_lint();
    let g = &lint.graph;
    assert_eq!(g.schema_version, kinet_lint::SCHEMA_VERSION);
    assert!(g.nodes > 0 && g.edges > 0);
    assert!(
        !g.unresolved.is_empty(),
        "std calls in the fixtures must land in the ledger"
    );
    assert!(g.unresolved_sites >= g.unresolved.len());
    // Every policy root gets a row; the taint positive reaches its two
    // helpers, the ghost root reaches nothing.
    let taint_pos = g
        .roots
        .iter()
        .find(|r| r.root == "RoundDigest::deterministic_digest")
        .expect("taint root row");
    assert_eq!(taint_pos.analysis, "taint");
    assert_eq!(
        taint_pos.reachable, 3,
        "root + digest_mix_fx + clock_stamp_fx"
    );
    let ghost = g
        .roots
        .iter()
        .find(|r| r.root == "ghost_root_fx")
        .expect("ghost root row");
    assert_eq!(ghost.reachable, 0);
    let panic_pos = g
        .roots
        .iter()
        .find(|r| r.analysis == "panic" && r.root == "serve_rows_fx")
        .expect("panic root row");
    assert_eq!(panic_pos.reachable, 2, "root + pick_best_fx");
    // Hot roots appear too (analysis = alloc).
    assert!(g.roots.iter().any(|r| r.analysis == "alloc"
        && r.root == "crates/nn/src/trans_alloc_pos.rs::hot_outer"
        && r.reachable == 2));
}
