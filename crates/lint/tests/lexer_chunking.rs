//! Property test: feeding the lexer any chunking of any source produces
//! the exact token stream of a whole-file lex — a finding can never be
//! split, lost, or invented at a chunk boundary. The fragment pool leans
//! into the hard cases: raw-string fences, nested comments, chars vs
//! lifetimes, multi-byte UTF-8, and bare `r`/`b`/`#` tails.

use kinet_lint::lexer::{lex, lex_chunked};
use proptest::prelude::*;

fn arb_source() -> impl Strategy<Value = String> {
    let fragment = prop::sample::select(vec![
        "fn main() {",
        "}",
        "// line comment with HashMap\n",
        "/* block /* nested */ done */",
        "let s = \"str with // not a comment\";",
        "let r = r#\"raw \" body\"#;",
        "let r2 = r\"no fence\";",
        "let by = b\"bytes\";",
        "let c = 'x';",
        "let nl = '\\n';",
        "fn f<'a>(v: &'a str) {}",
        "1.5e3_f32",
        "0xff_u8",
        "// ünïcode — em-dash\n",
        "let u = \"∀x\";",
        "Instant::now()",
        "vec![1, 2]",
        "unsafe {}",
        "\n",
        " ",
        "#",
        "#[derive(Debug)]",
        "r",
        "b",
        "br",
        "\"open",
    ]);
    prop::collection::vec(fragment, 0..24).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunking_never_changes_the_token_stream(
        src in arb_source(),
        chunk_chars in 1usize..12,
    ) {
        prop_assert_eq!(lex_chunked(&src, chunk_chars), lex(&src));
    }
}
