//! Determinism contracts of the interprocedural stage, pinned by
//! property tests: the call graph is invariant to the order files are
//! handed to the builder and to how the lexer's input is chunked, and
//! the whole workspace report (findings and graph summary alike) is
//! byte-identical for any `KINET_THREADS`.

use kinet_lint::callgraph::CallGraph;
use kinet_lint::lexer::{lex, lex_chunked, Token};
use kinet_lint::rules::{scan_file, LintConfig};
use kinet_lint::symbols::parse_items;
use proptest::prelude::*;
use std::path::PathBuf;

/// A small synthetic workspace exercising every resolution path: free
/// calls, qualified and `Self::` calls, method ambiguity, std calls
/// that must land in the unresolved ledger, and a test-scoped file.
fn synthetic_files() -> Vec<(String, String)> {
    vec![
        (
            "crates/a/src/one.rs".into(),
            "pub fn alpha() {\n    beta();\n    helper(1.0);\n    let v = Vec::new();\n}\n\
             fn beta() {\n    let t = T;\n    t.gamma();\n}\n"
                .into(),
        ),
        (
            "crates/a/src/two.rs".into(),
            "pub struct T;\nimpl T {\n    pub fn gamma(&self) {\n        Self::delta();\n    }\n\
             \n    fn delta() {\n        std::time::Instant::now();\n    }\n}\n"
                .into(),
        ),
        (
            "crates/b/src/three.rs".into(),
            "pub fn helper(x: f64) -> f64 {\n    x.sqrt()\n}\n\
             pub struct U;\nimpl U {\n    pub fn gamma(&self) {}\n}\n"
                .into(),
        ),
        (
            "crates/b/tests/probe.rs".into(),
            "#[test]\nfn probe() {\n    helper(2.0);\n}\n".into(),
        ),
    ]
}

fn graph_of(files: Vec<(String, String)>) -> CallGraph {
    let cfg = LintConfig::repo_policy(Vec::new(), Vec::new());
    CallGraph::build(
        files
            .into_iter()
            .map(|(rel, src)| {
                let mut scan = scan_file(&rel, &src, &cfg);
                (rel, std::mem::take(&mut scan.nodes))
            })
            .collect(),
    )
}

/// Canonical, order-independent rendering of a graph: node displays,
/// display-level edges, the ledger, and the ambiguity count.
type GraphSignature = (
    Vec<String>,
    Vec<(String, String)>,
    Vec<(String, usize)>,
    usize,
);

fn signature(g: &CallGraph) -> GraphSignature {
    let nodes: Vec<String> = g
        .nodes
        .iter()
        .map(|n| format!("{}::{}", n.file, n.display()))
        .collect();
    let mut edges: Vec<(String, String)> = Vec::new();
    for (i, outs) in g.adj.iter().enumerate() {
        for &j in outs {
            edges.push((nodes[i].clone(), nodes[j].clone()));
        }
    }
    edges.sort();
    (
        nodes,
        edges,
        g.unresolved.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        g.ambiguous_call_sites,
    )
}

fn code_tokens(toks: &[Token]) -> Vec<&Token> {
    toks.iter().filter(|t| t.is_code()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_is_invariant_to_file_order(keys in prop::collection::vec(any::<u64>(), 4)) {
        let reference = signature(&graph_of(synthetic_files()));
        // Reorder the file list by the drawn sort keys — every
        // permutation of the 4 files is reachable.
        let mut order: Vec<(u64, (String, String))> =
            keys.iter().copied().zip(synthetic_files()).collect();
        order.sort_by_key(|a| a.0);
        let shuffled = signature(&graph_of(order.into_iter().map(|(_, f)| f).collect()));
        prop_assert_eq!(reference, shuffled);
    }

    #[test]
    fn items_are_invariant_to_lexer_chunking(chunk in 1usize..64) {
        for (_, src) in synthetic_files() {
            let whole = lex(&src);
            let chunked = lex_chunked(&src, chunk);
            let a = parse_items(&code_tokens(&whole));
            let b = parse_items(&code_tokens(&chunked));
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn workspace_lint_is_byte_identical_across_thread_counts() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree");
    let render = |threads: usize| {
        let lint =
            kinet_lint::run_workspace_with_threads(&root, threads).expect("fixture tree lints");
        (
            serde_json::to_string_pretty(&lint.report).expect("report serializes"),
            serde_json::to_string_pretty(&lint.graph).expect("graph serializes"),
        )
    };
    let serial = render(1);
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            render(threads),
            "report or graph bytes changed at {threads} scan threads"
        );
    }
}
